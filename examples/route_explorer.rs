//! Route explorer: watch Cycloid's three-phase routing and Chord's greedy
//! finger descent hop by hop — the mechanics behind every hop count in the
//! paper's figures.
//!
//! ```text
//! cargo run --release --example route_explorer
//! ```

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(0xE59);

    // ---------------- Cycloid ----------------
    let d = 8u8;
    let cy = Cycloid::build(2048, CycloidConfig { dimension: d, seed: 3 });
    let from = cy.random_node(&mut rng).unwrap();
    let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..256), d);
    let route = cy.route(from, key).unwrap();
    println!("Cycloid (d = 8, 2048 nodes): route {} -> key {key}", cy.id_of(from).unwrap());
    let mut prev = cy.id_of(from).unwrap();
    for (i, &hop) in route.path.iter().enumerate() {
        let id = cy.id_of(hop).unwrap();
        let phase = if id.cubical == key.cubical {
            "traverse (inside target cluster)"
        } else if id.cubical == prev.cubical {
            if id.cyclic > prev.cyclic {
                "ascend (towards cluster primary)"
            } else {
                "descend (CCC level step)"
            }
        } else {
            "descend (cubical/cyclic jump)"
        };
        println!("  hop {:>2}: {:<12} {phase}", i + 1, id.to_string());
        prev = id;
    }
    println!(
        "  => {} hops, terminal {} {}",
        route.hops(),
        cy.id_of(route.terminal).unwrap(),
        if route.exact { "(exact owner)" } else { "(inexact!)" }
    );

    // ---------------- Chord ----------------
    let ch = chord::Chord::build(2048, chord::ChordConfig::default());
    let from = ch.random_node(&mut rng).unwrap();
    let target: u64 = rng.gen();
    let route = ch.route(from, target).unwrap();
    println!(
        "\nChord (2048 nodes): route id {:#018x} -> key {target:#018x}",
        ch.id_of(from).unwrap()
    );
    let mut cur_id = ch.id_of(from).unwrap();
    for (i, &hop) in route.path.iter().enumerate() {
        let id = ch.id_of(hop).unwrap();
        let closed = dht_core::clockwise_dist(cur_id, target);
        let after = dht_core::clockwise_dist(id, target);
        println!("  hop {:>2}: {:#018x}  (distance {:>20} -> {:>20})", i + 1, id, closed, after);
        cur_id = id;
    }
    println!(
        "  => {} hops ({} expected for log2(2048)/2), terminal owns the key: {}",
        route.hops(),
        5.5,
        route.exact
    );

    // Summary the paper cares about:
    let mut cyc = dht_core::Summary::new();
    let mut cho = dht_core::Summary::new();
    for _ in 0..2000 {
        let f = cy.random_node(&mut rng).unwrap();
        let k = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..256), d);
        cyc.record(cy.route(f, k).unwrap().hops() as f64);
        let f = ch.random_node(&mut rng).unwrap();
        cho.record(ch.route(f, rng.gen::<u64>()).unwrap().hops() as f64);
    }
    println!(
        "\n2000-lookup averages: Cycloid {:.2} hops (paper's analysis: d = 8), \
         Chord {:.2} hops (analysis: log2(n)/2 = 5.5)",
        cyc.mean(),
        cho.mean()
    );
}
