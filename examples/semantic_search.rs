//! Semantic resource discovery — the paper's future-work direction,
//! implemented: machines advertise string descriptions ("OS=linux-6.1",
//! "gpu=a100-80gb") and requesters find them by *prefix*, resolved as
//! ordinary LORM range queries thanks to an order-preserving string code.
//!
//! ```text
//! cargo run --release --example semantic_search
//! ```

use lorm::semantic::{SemanticCodec, SemanticDirectory};
use lorm_repro::prelude::*;

fn main() {
    let space = AttributeSpace::from_names(["os", "gpu"], 1.0, 1_000_000.0).unwrap();
    let os = space.by_name("os").unwrap();
    let gpu = space.by_name("gpu").unwrap();
    let codec = SemanticCodec::new(&space);
    let mut table = SemanticDirectory::new();
    let mut grid = Lorm::new(896, &space, LormConfig { dimension: 7, ..Default::default() });

    let fleet: &[(usize, &str, &str)] = &[
        (10, "linux-5.15", "a100-40gb"),
        (11, "linux-6.1", "a100-80gb"),
        (12, "linux-6.8", "h100-80gb"),
        (13, "windows-11", "rtx4090"),
        (14, "linux-4.19", "v100-16gb"),
        (15, "freebsd-14", "none"),
        (16, "linux-6.1-rt", "h100-80gb"),
    ];
    println!("advertising {} machines (os + gpu descriptions)...", fleet.len());
    for &(owner, os_desc, gpu_desc) in fleet {
        grid.register(ResourceInfo { attr: os, value: codec.encode(os_desc), owner }).unwrap();
        grid.register(ResourceInfo { attr: gpu, value: codec.encode(gpu_desc), owner }).unwrap();
        table.record(os, owner, os_desc);
        table.record(gpu, owner, gpu_desc);
    }

    // Single-attribute prefix search: every linux box.
    let q = codec.prefix_query(&[(os, "linux")]);
    let out = grid.query_from(0, &q).unwrap();
    let linux = table.filter_prefix(os, "linux", &out.owners);
    println!(
        "\nos=linux*          -> {linux:?}  ({} lookup hops, {} directory probes)",
        out.tally.hops, out.tally.visited
    );
    assert_eq!(sorted(linux.clone()), vec![10, 11, 12, 14, 16]);

    // Multi-attribute semantic conjunction: linux 6.x with an h100.
    let q = codec.prefix_query(&[(os, "linux-6"), (gpu, "h100")]);
    let out = grid.query_from(3, &q).unwrap();
    let mut hits: Vec<usize> = table
        .filter_prefix(os, "linux-6", &out.owners)
        .into_iter()
        .filter(|&o| table.description(gpu, o).is_some_and(|d| d.starts_with("h100")))
        .collect();
    hits.sort_unstable();
    println!("os=linux-6* & gpu=h100* -> {hits:?}");
    assert_eq!(hits, vec![12, 16]);

    // The point of the design: a prefix query stays inside one cluster
    // (1 + d/4 probes on average), instead of broadcasting.
    println!(
        "\nprefix queries rode the ordinary LORM range path: {} probes total,\n\
         bounded by the cluster size d = 7 per attribute — no broadcast.",
        out.tally.visited
    );
    assert!(out.tally.visited <= 14);
}

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}
