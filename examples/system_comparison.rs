//! Side-by-side comparison of all four systems on one workload — a
//! miniature of the paper's §V evaluation, printed as one table.
//!
//! ```text
//! cargo run --release --example system_comparison
//! ```

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Scaled-down paper setting: full d = 7 Cycloid, 50 attributes,
    // 100 values each.
    let cfg = SimConfig::quick();
    println!(
        "building LORM, Mercury ({} hubs), SWORD, MAAN over {} nodes...",
        cfg.attrs, cfg.nodes
    );
    let bed = TestBed::new(cfg);
    let mut rng = SmallRng::seed_from_u64(0xC0);

    println!(
        "\n{:<8} {:>10} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "system", "dir avg", "dir p99", "outlinks", "hops/query", "probes/range", "pieces"
    );
    for s in System::ALL {
        let sys = bed.system(s);
        let loads = sys.directory_loads();
        let links = sys.outlinks_per_node();

        // 200 3-attribute point queries.
        let mut hops = 0usize;
        for _ in 0..200 {
            let q = bed.workload.random_query(3, QueryMix::NonRange, &mut rng);
            hops += sys.query_from(rng.gen_range(0..cfg.nodes), &q).unwrap().tally.hops;
        }
        // 100 single-attribute range queries.
        let mut probes = 0usize;
        for _ in 0..100 {
            let q = bed.workload.random_query(1, QueryMix::Range, &mut rng);
            probes += sys.query_from(rng.gen_range(0..cfg.nodes), &q).unwrap().tally.visited;
        }

        println!(
            "{:<8} {:>10.1} {:>10.0} {:>12.1} {:>12.2} {:>14.2} {:>12}",
            sys.name(),
            loads.mean(),
            loads.p99(),
            links.mean(),
            hops as f64 / 200.0,
            probes as f64 / 100.0,
            sys.total_pieces(),
        );
    }

    println!(
        "\nreading guide (paper's claims): MAAN stores 2x pieces and needs 2x hops;\n\
         Mercury pays ~m x outlinks; SWORD piles an attribute on one node (p99);\n\
         LORM keeps constant outlinks, cluster-bounded range probes (~1+d/4)."
    );
}
