//! LORM under churn: machines join and leave as a Poisson process while a
//! monitor keeps querying — the §V.C experiment as a running narrative.
//!
//! ```text
//! cargo run --release --example churn_monitor
//! ```

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(0xC4);
    let cfg = WorkloadConfig {
        num_attrs: 30,
        values_per_attr: 80,
        num_nodes: 700, // leave free Cycloid slots for joiners
        ..WorkloadConfig::default()
    };
    let workload = Workload::generate(cfg, &mut rng).unwrap();
    let mut grid =
        Lorm::new(700, &workload.space, LormConfig { dimension: 7, ..Default::default() });
    grid.place_all(&workload.reports);

    // R = 0.4: one join and one departure every 2.5 s on average.
    let schedule = ChurnSchedule::generate(0.4, 300.0, &mut rng);
    println!("churn schedule: {} events over 300 s (R = {})", schedule.len(), schedule.rate());

    let mut events = schedule.events().iter().peekable();
    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut total_hops = 0usize;
    let mut max_phys = grid.num_physical();
    for second in 1..=300usize {
        let now = second as f64;
        while let Some(e) = events.peek() {
            if e.time > now {
                break;
            }
            let e = events.next().unwrap();
            match e.kind {
                grid_resource::ChurnKind::Join => {
                    if grid.join_physical(&mut rng).is_ok() {
                        max_phys += 1;
                    }
                }
                grid_resource::ChurnKind::Leave => {
                    // find a live victim
                    for _ in 0..32 {
                        let p = rng.gen_range(0..max_phys);
                        if grid.is_live(p) {
                            grid.leave_physical(p).unwrap();
                            break;
                        }
                    }
                }
                grid_resource::ChurnKind::Fail => {
                    // abrupt failure: never drawn by `generate` (this
                    // example's graceful-only schedule), only by
                    // `generate_with_failures` at a ratio below 1.0
                    for _ in 0..32 {
                        let p = rng.gen_range(0..max_phys);
                        if grid.is_live(p) {
                            grid.fail_physical(p).unwrap();
                            break;
                        }
                    }
                }
            }
        }
        // periodic maintenance every 30 s: repair + re-report
        if second % 30 == 0 {
            grid.stabilize();
            grid.place_all(&workload.reports);
        }
        // the monitor issues two range queries per second
        for _ in 0..2 {
            let origin = loop {
                let p = rng.gen_range(0..max_phys);
                if grid.is_live(p) {
                    break p;
                }
            };
            let q = workload.random_query(3, QueryMix::Range, &mut rng);
            match grid.query_from(origin, &q) {
                Ok(out) => {
                    ok += 1;
                    total_hops += out.tally.hops;
                }
                Err(_) => failed += 1,
            }
        }
        if second % 60 == 0 {
            println!(
                "t={second:>3}s  population {:>3}  queries ok {ok} failed {failed}  avg hops {:.1}",
                grid.num_physical(),
                total_hops as f64 / ok.max(1) as f64
            );
        }
    }
    println!(
        "\nfinal: {} ok, {} failed ({:.2}% success) — the paper reports no failures \
         under graceful churn, and neither do we.",
        ok,
        failed,
        100.0 * ok as f64 / (ok + failed).max(1) as f64
    );
    assert_eq!(failed, 0, "graceful churn with periodic maintenance must not fail queries");
}
