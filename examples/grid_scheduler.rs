//! A grid batch scheduler on top of LORM — the workload the paper's
//! introduction motivates: jobs arrive with multi-attribute range
//! requirements ("a machine with ≥ 1.8 GHz CPU and ≥ 2 GB free memory"),
//! the scheduler discovers candidate machines through the DHT, picks one,
//! and the machine's advertised capacity shrinks accordingly.
//!
//! ```text
//! cargo run --release --example grid_scheduler
//! ```

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A machine's current capacity.
#[derive(Debug, Clone, Copy)]
struct Machine {
    cpu_mhz: f64,
    mem_mb: f64,
}

/// One job's requirements.
#[derive(Debug, Clone, Copy)]
struct Job {
    min_cpu: f64,
    min_mem: f64,
    /// How much of each it consumes while running.
    use_cpu: f64,
    use_mem: f64,
}

fn advertise(grid: &mut Lorm, space: &AttributeSpace, id: usize, m: &Machine) {
    let cpu = space.by_name("cpu_mhz").unwrap();
    let mem = space.by_name("mem_mb").unwrap();
    grid.register(ResourceInfo { attr: cpu, value: m.cpu_mhz.round(), owner: id }).unwrap();
    grid.register(ResourceInfo { attr: mem, value: m.mem_mb.round(), owner: id }).unwrap();
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x5CED);
    let n = 896; // full d = 7 Cycloid
    let space = AttributeSpace::from_names(["cpu_mhz", "mem_mb"], 1.0, 4096.0).unwrap();
    let cpu = space.by_name("cpu_mhz").unwrap();
    let mem = space.by_name("mem_mb").unwrap();
    let mut grid = Lorm::new(n, &space, LormConfig { dimension: 7, ..Default::default() });

    // Heterogeneous cluster: capacities drawn from a few machine classes.
    let mut machines: Vec<Machine> = (0..n)
        .map(|_| match rng.gen_range(0..3) {
            0 => Machine { cpu_mhz: 1200.0, mem_mb: 1024.0 },
            1 => Machine { cpu_mhz: 2400.0, mem_mb: 2048.0 },
            _ => Machine { cpu_mhz: 3600.0, mem_mb: 4096.0 },
        })
        .collect();

    // Everyone reports. (Real grids re-report periodically; we re-place
    // after every scheduling decision below, which is the same thing with
    // an aggressive period.)
    for (id, m) in machines.iter().enumerate() {
        advertise(&mut grid, &space, id, m);
    }

    // A stream of jobs with range requirements.
    let jobs: Vec<Job> = (0..200)
        .map(|_| {
            let heavy = rng.gen_bool(0.3);
            Job {
                min_cpu: if heavy { 3000.0 } else { 1000.0 },
                min_mem: if heavy { 3000.0 } else { 800.0 },
                use_cpu: if heavy { 1200.0 } else { 400.0 },
                use_mem: if heavy { 1024.0 } else { 256.0 },
            }
        })
        .collect();

    let mut placed = 0usize;
    let mut probes = 0usize;
    let mut hops = 0usize;
    for (j, job) in jobs.iter().enumerate() {
        // Discovery: one multi-attribute range query through the DHT.
        let q = Query::new(vec![
            SubQuery { attr: cpu, target: ValueTarget::Range { low: job.min_cpu, high: 4096.0 } },
            SubQuery { attr: mem, target: ValueTarget::Range { low: job.min_mem, high: 4096.0 } },
        ])
        .unwrap();
        let submitter = rng.gen_range(0..n);
        let out = grid.query_from(submitter, &q).expect("live submitter");
        probes += out.tally.visited;
        hops += out.tally.hops;
        // Scheduling policy: pick the candidate with the most free memory.
        let Some(&winner) = out
            .owners
            .iter()
            .max_by(|&&a, &&b| machines[a].mem_mb.partial_cmp(&machines[b].mem_mb).unwrap())
        else {
            continue; // no machine fits; job queues
        };
        machines[winner].cpu_mhz -= job.use_cpu;
        machines[winner].mem_mb -= job.use_mem;
        placed += 1;
        // The winner re-reports its shrunk capacity. Refresh placement so
        // the next query sees current state.
        if j % 10 == 9 {
            let reports: Vec<ResourceInfo> = machines
                .iter()
                .enumerate()
                .flat_map(|(id, m)| {
                    [
                        ResourceInfo { attr: cpu, value: m.cpu_mhz.max(1.0).round(), owner: id },
                        ResourceInfo { attr: mem, value: m.mem_mb.max(1.0).round(), owner: id },
                    ]
                })
                .collect();
            grid.place_all(&reports);
        }
    }

    println!("jobs placed:        {placed}/{}", jobs.len());
    println!("avg lookup hops:    {:.1} per job", hops as f64 / jobs.len() as f64);
    println!("avg directory probes: {:.1} per job", probes as f64 / jobs.len() as f64);
    let loads = grid.directory_loads();
    println!(
        "directory load:     avg {:.1} pieces/node, max {:.0} (two attributes -> two clusters)",
        loads.mean(),
        loads.max()
    );
    assert!(placed > 150, "most jobs should find machines");
}
