//! Quickstart: stand up a LORM grid, advertise resources, run point,
//! range and multi-attribute queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lorm_repro::prelude::*;

fn main() {
    // A grid of 896 machines (a full d = 7 Cycloid) with three globally
    // known attribute types sharing the value domain [1, 1000].
    let space = AttributeSpace::from_names(["cpu_mhz", "mem_mb", "disk_gb"], 1.0, 1000.0)
        .expect("valid domain");
    let mut grid = Lorm::new(896, &space, LormConfig { dimension: 7, ..Default::default() });

    let cpu = space.by_name("cpu_mhz").unwrap();
    let mem = space.by_name("mem_mb").unwrap();
    let disk = space.by_name("disk_gb").unwrap();

    // A few machines advertise what they have. In a real deployment every
    // node reports periodically via Insert(rescID, rescInfo); here we call
    // `register`, which routes the report from its owner to the directory
    // node responsible for (attribute, value).
    let adverts = [
        (10usize, cpu, 800.0),
        (10, mem, 512.0),
        (11, cpu, 350.0),
        (11, mem, 768.0),
        (12, cpu, 900.0),
        (12, mem, 256.0),
        (12, disk, 80.0),
        (13, cpu, 650.0),
        (13, mem, 640.0),
        (13, disk, 120.0),
    ];
    println!("advertising {} resources...", adverts.len());
    for (owner, attr, value) in adverts {
        let tally = grid.register(ResourceInfo { attr, value, owner }).expect("owner is live");
        println!(
            "  node {owner:>2} advertised {}={value:<6} ({} hops to its directory)",
            space.name(attr),
            tally.hops
        );
    }

    // Point query: who has exactly 800 MHz?
    let q = Query::new(vec![SubQuery { attr: cpu, target: ValueTarget::Point(800.0) }]).unwrap();
    let out = grid.query_from(0, &q).unwrap();
    println!("\ncpu == 800        -> owners {:?} ({} hops)", out.owners, out.tally.hops);

    // Range query: at least 600 MHz (one-sided ranges use the domain edge).
    let q = Query::new(vec![SubQuery {
        attr: cpu,
        target: ValueTarget::Range { low: 600.0, high: 1000.0 },
    }])
    .unwrap();
    let out = grid.query_from(0, &q).unwrap();
    println!(
        "cpu in [600,1000] -> owners {:?} ({} directory nodes probed)",
        out.owners, out.tally.visited
    );

    // Multi-attribute range query: the paper's headline feature. Each
    // sub-query resolves in parallel; the requester joins on ip_addr.
    let q = Query::new(vec![
        SubQuery { attr: cpu, target: ValueTarget::Range { low: 600.0, high: 1000.0 } },
        SubQuery { attr: mem, target: ValueTarget::Range { low: 500.0, high: 1000.0 } },
    ])
    .unwrap();
    let out = grid.query_from(42, &q).unwrap();
    println!(
        "cpu>=600 & mem>=500 -> owners {:?} (lookups {}, hops {})",
        out.owners, out.tally.lookups, out.tally.hops
    );
    assert_eq!(out.owners, vec![10, 13], "nodes 10 and 13 satisfy both constraints");

    // The structural numbers the paper is about:
    let links = grid.outlinks_per_node();
    println!(
        "\noverlay: {} nodes, constant degree (avg {:.1}, max {:.0} outlinks/node)",
        grid.num_physical(),
        links.mean(),
        links.max()
    );
}
