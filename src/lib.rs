//! # lorm-repro — facade crate
//!
//! A from-scratch reproduction of *"Performance Analysis of DHT Algorithms
//! for Range-Query and Multi-Attribute Resource Discovery in Grids"*
//! (Shen & Xu, ICPP 2009). This crate re-exports the whole workspace so
//! the top-level examples and integration tests exercise the public API
//! exactly as a downstream user would:
//!
//! * [`dht_core`] — key spaces, hashing (consistent + locality-preserving),
//!   samplers, metrics, the `Overlay` trait;
//! * [`chord`] — the Chord overlay simulator (substrate of the baselines);
//! * [`cycloid`] — the Cycloid constant-degree hierarchical overlay
//!   (substrate of LORM);
//! * [`grid_resource`] — the grid resource model, workloads, churn, and
//!   the `ResourceDiscovery` trait;
//! * [`lorm`] — the paper's contribution: LORM resource discovery;
//! * [`baselines`] — Mercury, SWORD and MAAN;
//! * [`analysis`] — closed forms of Theorems 4.1–4.10;
//! * [`sim`] — the experiment engine regenerating every figure.
//!
//! ## Quickstart
//!
//! ```
//! use lorm_repro::prelude::*;
//!
//! // A small grid: 5·2^5 = 160 machines, 10 attribute types.
//! let space = AttributeSpace::synthetic(10, 1.0, 100.0).unwrap();
//! let mut grid = Lorm::new(160, &space, LormConfig { dimension: 5, ..Default::default() });
//!
//! // Machine 3 advertises 64 units of attribute 0 ("cpu").
//! grid.register(ResourceInfo { attr: AttrId(0), value: 64.0, owner: 3 }).unwrap();
//!
//! // Machine 7 asks for attribute 0 in [50, 80].
//! let query = Query::new(vec![SubQuery {
//!     attr: AttrId(0),
//!     target: ValueTarget::Range { low: 50.0, high: 80.0 },
//! }]).unwrap();
//! let found = grid.query_from(7, &query).unwrap();
//! assert_eq!(found.owners, vec![3]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use analysis;
pub use baselines;
pub use chord;
pub use cycloid;
pub use dht_core;
pub use grid_resource;
pub use lorm;
pub use sim;

/// The most common imports for applications using LORM directly.
pub mod prelude {
    pub use analysis::{Params, System};
    pub use baselines::{Maan, MaanConfig, Mercury, MercuryConfig, Sword, SwordConfig};
    pub use cycloid::{Cycloid, CycloidConfig, CycloidId};
    pub use dht_core::{LoadDist, NodeIdx, Overlay, Summary};
    pub use grid_resource::{
        AttrId, AttributeSpace, ChurnSchedule, Query, QueryMix, QueryOutcome, ResourceDiscovery,
        ResourceInfo, SubQuery, ValueDist, ValueTarget, Workload, WorkloadConfig,
    };
    pub use lorm::{Lorm, LormConfig, Placement};
    pub use sim::{build_system, SimConfig, TestBed};
}
