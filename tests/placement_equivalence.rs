//! Placement equivalence and determinism invariants.
//!
//! * **Routed ≡ ground truth**: delivering every report through routed
//!   `register` calls must produce byte-identical directory state to the
//!   ground-truth `place_all` path, in every system — this is exactly the
//!   statement "routing is exact" lifted to the discovery layer.
//! * **Determinism**: the same seed reproduces the same experiment
//!   results, bit for bit.

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cfg() -> SimConfig {
    SimConfig { nodes: 896, dimension: 7, attrs: 20, values: 50, ..SimConfig::default() }
}

fn loads_snapshot(sys: &(dyn ResourceDiscovery + Send + Sync)) -> Vec<u64> {
    sys.directory_loads().loads().iter().map(|&x| x as u64).collect()
}

#[test]
fn routed_registration_equals_ground_truth_placement() {
    let cfg = cfg();
    let mut rng = SmallRng::seed_from_u64(0xE0);
    let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
    for s in System::ALL {
        let mut routed = build_system(s, &workload, &cfg);
        routed.place_all(&[]);
        for &r in &workload.reports {
            routed.register(r).unwrap();
        }
        let mut ground = build_system(s, &workload, &cfg);
        ground.place_all(&workload.reports);
        assert_eq!(
            loads_snapshot(routed.as_ref()),
            loads_snapshot(ground.as_ref()),
            "{}: routed inserts landed on different nodes than ownership",
            routed.name()
        );
        assert_eq!(routed.total_pieces(), ground.total_pieces());
    }
}

#[test]
fn routed_and_placed_systems_answer_identically() {
    let cfg = cfg();
    let mut rng = SmallRng::seed_from_u64(0xE1);
    let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
    let mut routed = build_system(System::Lorm, &workload, &cfg);
    routed.place_all(&[]);
    for &r in &workload.reports {
        routed.register(r).unwrap();
    }
    let placed = build_system(System::Lorm, &workload, &cfg);
    for _ in 0..80 {
        let q = workload.random_query(2, QueryMix::Range, &mut rng);
        let origin = rng.gen_range(0..cfg.nodes);
        let mut a = routed.query_from(origin, &q).unwrap().owners;
        let mut b = placed.query_from(origin, &q).unwrap().owners;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

#[test]
fn same_seed_reproduces_identical_workloads_and_answers() {
    let cfg = cfg();
    let run = || {
        let mut rng = SmallRng::seed_from_u64(0xE2);
        let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
        let sys = build_system(System::Maan, &workload, &cfg);
        let mut qrng = SmallRng::seed_from_u64(0xE3);
        let mut fingerprint: Vec<(usize, usize, usize)> = Vec::new();
        for _ in 0..40 {
            let q = workload.random_query(3, QueryMix::Range, &mut qrng);
            let out = sys.query_from(qrng.gen_range(0..cfg.nodes), &q).unwrap();
            fingerprint.push((out.tally.hops, out.tally.visited, out.owners.len()));
        }
        fingerprint
    };
    assert_eq!(run(), run(), "same seed must reproduce the experiment exactly");
}

#[test]
fn different_seeds_produce_different_networks() {
    let base = cfg();
    let a = SimConfig { seed: 1, ..base };
    let b = SimConfig { seed: 2, ..base };
    let mut rng = SmallRng::seed_from_u64(0xE4);
    let wa = Workload::generate(a.workload_config(), &mut rng).unwrap();
    let sys_a = build_system(System::Lorm, &wa, &a);
    let sys_b = build_system(System::Lorm, &wa, &b);
    assert_ne!(
        loads_snapshot(sys_a.as_ref()),
        loads_snapshot(sys_b.as_ref()),
        "different seeds should shuffle placement"
    );
}
