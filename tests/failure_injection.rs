//! Failure injection at the discovery layer: abrupt node failures between
//! maintenance rounds. Queries must degrade gracefully — never hang,
//! never fabricate owners — and recover fully after maintenance.

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cfg() -> SimConfig {
    SimConfig { nodes: 896, dimension: 7, attrs: 20, values: 50, ..SimConfig::default() }
}

fn brute(w: &Workload, q: &Query) -> Vec<usize> {
    grid_resource::discovery::join_owners(
        q.subs
            .iter()
            .map(|s| {
                w.reports
                    .iter()
                    .filter(|r| r.attr == s.attr && s.target.matches(r.value))
                    .map(|r| r.owner)
                    .collect()
            })
            .collect(),
    )
}

fn inject_failures(
    sys: &mut Box<dyn ResourceDiscovery + Send + Sync>,
    count: usize,
    max_phys: usize,
    rng: &mut SmallRng,
) {
    let mut failed = 0;
    while failed < count {
        let p = rng.gen_range(0..max_phys);
        if sys.is_live(p) && sys.fail_physical(p).is_ok() {
            failed += 1;
        }
    }
}

#[test]
fn queries_never_error_and_never_fabricate_after_failures() {
    let cfg = cfg();
    let mut rng = SmallRng::seed_from_u64(0xFA);
    let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
    for s in System::ALL {
        let mut sys = build_system(s, &workload, &cfg);
        inject_failures(&mut sys, 45, cfg.nodes, &mut rng); // 5% abrupt loss
        let mut resolved = 0usize;
        for _ in 0..120 {
            let q = workload.random_query(2, QueryMix::Range, &mut rng);
            let origin = loop {
                let p = rng.gen_range(0..cfg.nodes);
                if sys.is_live(p) {
                    break p;
                }
            };
            if let Ok(out) = sys.query_from(origin, &q) {
                resolved += 1;
                // answers may be incomplete (lost directories) but must
                // be a SUBSET of the truth — never fabricated
                let truth = brute(&workload, &q);
                for o in &out.owners {
                    assert!(truth.contains(o), "{}: fabricated owner {o} for {q:?}", sys.name());
                }
            }
        }
        assert!(
            resolved >= 110,
            "{}: only {resolved}/120 queries resolved under 5% failures",
            sys.name()
        );
    }
}

#[test]
fn maintenance_restores_full_completeness() {
    let cfg = cfg();
    let mut rng = SmallRng::seed_from_u64(0xFB);
    let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
    for s in System::ALL {
        let mut sys = build_system(s, &workload, &cfg);
        inject_failures(&mut sys, 60, cfg.nodes, &mut rng);
        // maintenance: repair links, then every survivor re-reports
        sys.stabilize();
        sys.place_all(&workload.reports);
        for _ in 0..60 {
            let q = workload.random_query(2, QueryMix::Range, &mut rng);
            let origin = loop {
                let p = rng.gen_range(0..cfg.nodes);
                if sys.is_live(p) {
                    break p;
                }
            };
            let mut got = sys.query_from(origin, &q).unwrap().owners;
            got.sort_unstable();
            assert_eq!(got, brute(&workload, &q), "{} after maintenance", sys.name());
        }
    }
}

#[test]
fn repeated_failure_recovery_cycles() {
    let cfg = cfg();
    let mut rng = SmallRng::seed_from_u64(0xFC);
    let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
    let mut sys = build_system(System::Lorm, &workload, &cfg);
    let mut max_phys = cfg.nodes;
    for round in 0..5 {
        inject_failures(&mut sys, 20, max_phys, &mut rng);
        // refill with joins
        for _ in 0..20 {
            if sys.join_physical(&mut rng).is_ok() {
                max_phys += 1;
            }
        }
        sys.stabilize();
        sys.place_all(&workload.reports);
        let q = workload.random_query(3, QueryMix::Range, &mut rng);
        let origin = loop {
            let p = rng.gen_range(0..max_phys);
            if sys.is_live(p) {
                break p;
            }
        };
        let mut got = sys.query_from(origin, &q).unwrap().owners;
        got.sort_unstable();
        assert_eq!(got, brute(&workload, &q), "round {round}");
        assert_eq!(sys.num_physical(), cfg.nodes, "population conserved, round {round}");
    }
}
