//! Property tests on the selectivity-driven query planner:
//!
//! * every plan (parallel, sequential, adaptive) returns the same owner
//!   set on every system — the plans trade traffic, never answers;
//! * adaptive ordering never ships more result pieces than the *worst*
//!   sub-query ordering would, even on skewed (Bounded Pareto) values;
//! * the plan choice composes with the sharded executor: report JSON is
//!   byte-identical at shards 1 vs 3 for every plan;
//! * the equi-width histograms behind the adaptive plan track exact
//!   match counts within the interpolation tolerance band.

use lorm_repro::grid_resource::{QueryPlan, SelectivityEstimator};
use lorm_repro::prelude::*;
use lorm_repro::sim::experiments::{run_batch_planned_sharded, Metric};
use lorm_repro::sim::Report;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn tiny_cfg(seed: u64) -> SimConfig {
    SimConfig {
        nodes: 160,
        dimension: 5,
        attrs: 8,
        values: 20,
        seed,
        value_dist: ValueDist::Uniform,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn all_plans_agree_on_owner_sets_on_every_system(seed in 0u64..1_000, arity in 1usize..=4) {
        let bed = TestBed::new(tiny_cfg(0x9000 + seed));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51);
        for _ in 0..10 {
            let q = bed.workload.random_query(arity, QueryMix::Range, &mut rng);
            let origin = rng.gen_range(0..bed.cfg.nodes);
            for sys in &bed.systems {
                let mut expect: Option<Vec<usize>> = None;
                for plan in QueryPlan::ALL {
                    let out = sys.query_planned(origin, &q, plan).unwrap();
                    let mut owners = out.owners.clone();
                    owners.sort_unstable();
                    owners.dedup();
                    match &expect {
                        None => expect = Some(owners),
                        Some(e) => prop_assert_eq!(
                            &owners, e,
                            "{} under the {} plan changed the answer", sys.name(), plan.name()
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn adaptive_never_ships_more_than_worst_sequential_ordering() {
    // Skewed values (the paper's stated Bounded Pareto generator) make
    // sub-query selectivities genuinely unequal, so ordering matters.
    let cfg = SimConfig {
        nodes: 160,
        dimension: 5,
        attrs: 10,
        values: 30,
        seed: 0x9A77,
        value_dist: ValueDist::BoundedPareto { alpha: 1.2 },
    };
    let bed = TestBed::new(cfg);
    let mut rng = SmallRng::seed_from_u64(0x517);
    const PERMS: [[usize; 3]; 6] =
        [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
    for _ in 0..12 {
        let q = bed.workload.random_query(3, QueryMix::Range, &mut rng);
        let origin = rng.gen_range(0..cfg.nodes);
        for sys in &bed.systems {
            // worst document-order sequential over every sub-query
            // permutation (the adaptive order is one of the six, so the
            // bound is also a sanity check that adaptive == sequential
            // on the reordered query)
            let worst = PERMS
                .iter()
                .map(|p| {
                    let permuted = Query::new(p.iter().map(|&i| q.subs[i]).collect()).unwrap();
                    let out = sys.query_planned(origin, &permuted, QueryPlan::Sequential).unwrap();
                    out.tally.matches
                })
                .max()
                .unwrap();
            let ada = sys.query_planned(origin, &q, QueryPlan::Adaptive).unwrap().tally.matches;
            assert!(
                ada <= worst,
                "{}: adaptive shipped {ada} pieces, worst sequential ordering {worst}",
                sys.name()
            );
        }
    }
}

#[test]
fn plan_choice_keeps_report_json_identical_across_shards() {
    let bed = TestBed::new(tiny_cfg(0x9B33));
    let mut rng = SmallRng::seed_from_u64(0x518);
    // > MICRO_CHUNK queries so shards=3 actually splits the batch
    let batch: Vec<(usize, Query)> = (0..96)
        .map(|_| {
            let origin = rng.gen_range(0..bed.cfg.nodes);
            (origin, bed.workload.random_query(3, QueryMix::Range, &mut rng))
        })
        .collect();
    for plan in QueryPlan::ALL {
        let report_at = |shards: usize| {
            let mut rep = Report::new();
            for sys in &bed.systems {
                let s =
                    run_batch_planned_sharded(sys.as_ref(), &batch, Metric::Matches, plan, shards);
                rep.summary(sys.name(), s);
            }
            rep.to_json()
        };
        assert_eq!(report_at(1), report_at(3), "plan {} drifted across shard counts", plan.name());
    }
}

#[test]
fn selectivity_estimates_track_exact_match_counts() {
    // The §V synthetic workload at quick scale. The estimator is exact
    // on full-domain ranges and interpolates inside buckets, so the
    // error of a range estimate is confined to the two partial buckets
    // at the range ends: |est - exact| <= 2·(max bucket count) plus the
    // grid-snapping slack. With near-uniform per-bucket counts of
    // total/buckets, a band of 4·total/buckets + 4 holds with margin.
    let cfg = SimConfig {
        nodes: 896,
        dimension: 7,
        attrs: 20,
        values: 100,
        seed: 0x9C11,
        value_dist: ValueDist::Uniform,
    };
    let (workload, _) = TestBed::workload_of(&cfg);
    let sys = build_system(System::Lorm, &workload, &cfg);
    let sel: &SelectivityEstimator = sys.selectivity().expect("place_all trains the estimator");
    assert!(sel.is_trained());
    let mut rng = SmallRng::seed_from_u64(0x519);
    for _ in 0..200 {
        let q = workload.random_query(1, QueryMix::Range, &mut rng);
        let sub = &q.subs[0];
        let exact = workload
            .reports
            .iter()
            .filter(|r| r.attr == sub.attr && sub.target.matches(r.value))
            .count() as f64;
        let est = sel.estimate(sub);
        let total = sel.total(sub.attr) as f64;
        assert!(est >= 0.0 && est <= total, "estimate {est} outside [0, {total}]");
        let band = 4.0 * total / sel.buckets() as f64 + 4.0;
        assert!(
            (est - exact).abs() <= band,
            "estimate {est} vs exact {exact} exceeds tolerance {band} for {sub:?}"
        );
    }
}
