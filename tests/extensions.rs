//! End-to-end coverage of the beyond-the-paper extensions working
//! together: semantic prefix discovery resolved under both query plans,
//! and the composite-flat ablation system answering the same workload.

use baselines::{CompositeConfig, CompositeFlat};
use lorm::semantic::{SemanticCodec, SemanticDirectory};
use lorm::QueryPlan;
use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn semantic_prefix_queries_under_both_plans() {
    let space = AttributeSpace::from_names(["os", "arch"], 1.0, 1e6).unwrap();
    let os = space.by_name("os").unwrap();
    let arch = space.by_name("arch").unwrap();
    let codec = SemanticCodec::new(&space);
    let mut table = SemanticDirectory::new();
    let mut grid = Lorm::new(384, &space, LormConfig { dimension: 6, ..Default::default() });

    let fleet = [
        (1usize, "linux-6.1", "x86-64"),
        (2, "linux-6.8", "arm64"),
        (3, "linux-5.15", "x86-64"),
        (4, "windows-11", "x86-64"),
        (5, "freebsd-14", "arm64"),
    ];
    for (owner, osd, ad) in fleet {
        grid.register(ResourceInfo { attr: os, value: codec.encode(osd), owner }).unwrap();
        grid.register(ResourceInfo { attr: arch, value: codec.encode(ad), owner }).unwrap();
        table.record(os, owner, osd);
        table.record(arch, owner, ad);
    }

    let q = codec.prefix_query(&[(os, "linux"), (arch, "x86")]);
    for plan in [QueryPlan::Parallel, QueryPlan::Sequential] {
        let out = grid.query_planned(9, &q, plan).unwrap();
        let mut got: Vec<usize> = out
            .owners
            .iter()
            .copied()
            .filter(|&o| {
                table.description(os, o).is_some_and(|d| d.starts_with("linux"))
                    && table.description(arch, o).is_some_and(|d| d.starts_with("x86"))
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3], "{plan:?}");
    }
}

#[test]
fn composite_flat_answers_match_lorm_on_shared_workload() {
    let cfg = SimConfig { nodes: 384, dimension: 6, attrs: 12, values: 40, ..SimConfig::default() };
    let mut rng = SmallRng::seed_from_u64(0xE57);
    let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
    let lorm = build_system(System::Lorm, &workload, &cfg);
    let mut flat = CompositeFlat::new(cfg.nodes, &workload.space, CompositeConfig::default());
    flat.place_all(&workload.reports);
    for _ in 0..80 {
        let q = workload.random_query(2, QueryMix::Range, &mut rng);
        let origin = rng.gen_range(0..cfg.nodes);
        let mut a = lorm.query_from(origin, &q).unwrap().owners;
        let mut b = flat.query_from(origin, &q).unwrap().owners;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "hierarchy and flat composite must agree on answers");
    }
}

#[test]
fn latency_model_replay_is_consistent_with_hop_counts() {
    // Constant-delay replay: latency must be exactly hops × delay for a
    // point lookup (no walk, one response hop).
    let cfg = SimConfig { nodes: 384, dimension: 6, attrs: 8, values: 20, ..SimConfig::default() };
    let mut rng = SmallRng::seed_from_u64(0xE58);
    let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
    let sys = build_system(System::Sword, &workload, &cfg);
    let model = dht_core::LatencyModel::Constant { ms: 7.0 };
    let mut lat_rng = SmallRng::seed_from_u64(1);
    for _ in 0..40 {
        let q = workload.random_query(1, QueryMix::NonRange, &mut rng);
        let out = sys.query_from(rng.gen_range(0..cfg.nodes), &q).unwrap();
        let replayed = model.sample_path(out.tally.hops + 1, &mut lat_rng);
        assert_eq!(replayed, 7.0 * (out.tally.hops + 1) as f64);
    }
}
