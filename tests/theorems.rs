//! Empirical validation of every theorem in §IV against the simulators —
//! the integration-level counterpart of the paper's §V "analysis matches
//! experiment" claims, at a scaled-down but fully-populated setting.

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Full d = 7 Cycloid, 30 attributes, 100 values.
fn bed() -> TestBed {
    let cfg =
        SimConfig { nodes: 896, dimension: 7, attrs: 30, values: 100, ..SimConfig::default() };
    TestBed::new(cfg)
}

#[test]
fn t4_1_structure_overhead_factor_m() {
    // LORM improves multi-DHT structure maintenance by >= m times.
    let bed = bed();
    let lorm = bed.system(System::Lorm).outlinks_per_node().mean();
    let mercury = bed.system(System::Mercury).outlinks_per_node().mean();
    let m = bed.cfg.attrs as f64;
    assert!(
        mercury / lorm >= m * 0.8,
        "Mercury/LORM outlink ratio {} should approach m = {m}",
        mercury / lorm
    );
    // and the w.h.p. bound itself: LORM <= Mercury / m (with slack for the
    // constant-degree difference d vs log n)
    assert!(lorm <= mercury / m * 2.0);
}

#[test]
fn t4_2_maan_doubles_total_information() {
    let bed = bed();
    let maan = bed.system(System::Maan).total_pieces();
    for s in [System::Lorm, System::Mercury, System::Sword] {
        assert_eq!(maan, 2 * bed.system(s).total_pieces(), "vs {}", s.name());
    }
}

#[test]
fn t4_3_lorm_beats_maan_directory_percentiles() {
    let bed = bed();
    let p = bed.cfg.params();
    let lorm = bed.system(System::Lorm).directory_loads();
    let maan = bed.system(System::Maan).directory_loads();
    let factor = analysis::t43_maan_over_lorm(&p);
    // measured p99 ratio should be in the ballpark of d(1 + m/n)
    let ratio = maan.p99() / lorm.p99();
    assert!(
        ratio > factor * 0.4 && ratio < factor * 2.5,
        "MAAN/LORM p99 ratio {ratio} vs theorem factor {factor}"
    );
}

#[test]
fn t4_4_lorm_beats_sword_by_about_d() {
    let bed = bed();
    let lorm = bed.system(System::Lorm).directory_loads();
    let sword = bed.system(System::Sword).directory_loads();
    let d = bed.cfg.dimension as f64;
    let ratio = sword.p99() / lorm.p99();
    assert!(
        ratio > d * 0.4 && ratio < d * 2.5,
        "SWORD/LORM p99 ratio {ratio} vs theorem factor d = {d}"
    );
    // averages are equal (both store each piece once)
    assert!((sword.mean() - lorm.mean()).abs() < 1.0);
}

#[test]
fn t4_5_mercury_is_more_balanced_than_lorm() {
    let bed = bed();
    let lorm = bed.system(System::Lorm).directory_loads();
    let mercury = bed.system(System::Mercury).directory_loads();
    // Mercury's spread (p99 - p1) is narrower.
    assert!(
        mercury.p99() - mercury.p1() <= lorm.p99() - lorm.p1(),
        "Mercury spread {}..{} vs LORM {}..{}",
        mercury.p1(),
        mercury.p99(),
        lorm.p1(),
        lorm.p99()
    );
}

#[test]
fn t4_6_balance_ordering_across_all_four() {
    // Mercury and LORM more balanced than MAAN and SWORD (by cv).
    let bed = bed();
    let cv = |s: System| bed.system(s).directory_loads().cv();
    let (lorm, mercury, sword, maan) =
        (cv(System::Lorm), cv(System::Mercury), cv(System::Sword), cv(System::Maan));
    assert!(mercury < sword && mercury < maan, "mercury {mercury} vs {sword}/{maan}");
    assert!(lorm < sword, "lorm {lorm} vs sword {sword}");
}

#[test]
fn t4_7_t4_8_nonrange_hop_ratios() {
    let bed = bed();
    let p = bed.cfg.params();
    let mut rng = SmallRng::seed_from_u64(0x47);
    let mut totals = std::collections::HashMap::new();
    for _ in 0..400 {
        let q = bed.workload.random_query(2, QueryMix::NonRange, &mut rng);
        let origin = rng.gen_range(0..bed.cfg.nodes);
        for s in System::ALL {
            *totals.entry(s.name()).or_insert(0usize) +=
                bed.system(s).query_from(origin, &q).unwrap().tally.hops;
        }
    }
    // T4.8: MAAN needs ~2x the hops of Mercury/SWORD.
    let r = totals["MAAN"] as f64 / totals["Mercury"] as f64;
    assert!((1.7..2.3).contains(&r), "MAAN/Mercury hop ratio {r}");
    // T4.7: MAAN/LORM ratio ~ log2(n)/d (with the simulator's Cycloid
    // constant slightly above the idealized d).
    let want = analysis::t47_maan_over_lorm_hops(&p);
    let got = totals["MAAN"] as f64 / totals["LORM"] as f64;
    assert!(got > want * 0.6 && got < want * 1.6, "MAAN/LORM hop ratio {got} vs theorem {want}");
}

#[test]
fn t4_9_range_visited_counts() {
    let bed = bed();
    let p = bed.cfg.params();
    let mut rng = SmallRng::seed_from_u64(0x49);
    let mut totals = std::collections::HashMap::new();
    let queries = 300;
    for _ in 0..queries {
        let q = bed.workload.random_query(1, QueryMix::Range, &mut rng);
        let origin = rng.gen_range(0..bed.cfg.nodes);
        for s in System::ALL {
            *totals.entry(s.name()).or_insert(0usize) +=
                bed.system(s).query_from(origin, &q).unwrap().tally.visited;
        }
    }
    let avg = |name: &str| totals[name] as f64 / queries as f64;
    // SWORD: exactly m visited (1 per attribute).
    assert_eq!(totals["SWORD"], queries);
    // LORM: ~ 1 + d/4.
    let lorm_expect = analysis::range_visited(&p, 1, System::Lorm);
    assert!(
        (avg("LORM") - lorm_expect).abs() < 1.2,
        "LORM visited {} vs {lorm_expect}",
        avg("LORM")
    );
    // Mercury: ~ 1 + n/4 within 40%.
    let merc_expect = analysis::range_visited(&p, 1, System::Mercury);
    assert!(
        avg("Mercury") > merc_expect * 0.6 && avg("Mercury") < merc_expect * 1.4,
        "Mercury visited {} vs {merc_expect}",
        avg("Mercury")
    );
    // MAAN ~ Mercury + 1.
    assert!((avg("MAAN") - avg("Mercury")).abs() < merc_expect * 0.25);
}

#[test]
fn t4_10_worst_case_full_domain_range() {
    let bed = bed();
    let (dmin, dmax) = bed.workload.space.domain();
    let q = Query::new(vec![SubQuery {
        attr: AttrId(3),
        target: ValueTarget::Range { low: dmin, high: dmax },
    }])
    .unwrap();
    let contacted = |s: System| {
        let out = bed.system(s).query_from(9, &q).unwrap();
        out.tally.hops + out.tally.visited
    };
    let (lorm, mercury, maan) =
        (contacted(System::Lorm), contacted(System::Mercury), contacted(System::Maan));
    // LORM stays within its cluster: <= routing + d probes + d walk hops.
    assert!(lorm < 40, "LORM worst case contacted {lorm}");
    // System-wide methods touch ~the whole ring: saving >= n (T4.10).
    assert!(mercury >= bed.cfg.nodes, "Mercury contacted {mercury}");
    assert!(maan >= bed.cfg.nodes, "MAAN contacted {maan}");
    assert!(mercury - lorm >= bed.cfg.nodes - 50);
}
