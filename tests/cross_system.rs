//! Cross-crate integration: the four discovery systems must return the
//! *same answers* to the same queries on the same workload — they differ
//! in cost, never in result. Each is also checked against a brute-force
//! scan of the raw reports.

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn brute_force(w: &Workload, q: &Query) -> Vec<usize> {
    let per_sub: Vec<Vec<usize>> = q
        .subs
        .iter()
        .map(|s| {
            w.reports
                .iter()
                .filter(|r| r.attr == s.attr && s.target.matches(r.value))
                .map(|r| r.owner)
                .collect()
        })
        .collect();
    grid_resource::discovery::join_owners(per_sub)
}

fn bed() -> TestBed {
    let cfg = SimConfig { nodes: 896, dimension: 7, attrs: 40, values: 80, ..SimConfig::default() };
    TestBed::new(cfg)
}

#[test]
fn all_systems_agree_on_point_queries() {
    let bed = bed();
    let mut rng = SmallRng::seed_from_u64(0x11);
    for _ in 0..150 {
        let arity = rng.gen_range(1..=5);
        let q = bed.workload.random_query(arity, QueryMix::NonRange, &mut rng);
        let origin = rng.gen_range(0..bed.cfg.nodes);
        let expected = brute_force(&bed.workload, &q);
        for s in System::ALL {
            let mut got = bed.system(s).query_from(origin, &q).unwrap().owners;
            got.sort_unstable();
            assert_eq!(got, expected, "{} disagrees on {q:?}", s.name());
        }
    }
}

#[test]
fn all_systems_agree_on_range_queries() {
    let bed = bed();
    let mut rng = SmallRng::seed_from_u64(0x12);
    for _ in 0..100 {
        let arity = rng.gen_range(1..=4);
        let q = bed.workload.random_query(arity, QueryMix::Range, &mut rng);
        let origin = rng.gen_range(0..bed.cfg.nodes);
        let expected = brute_force(&bed.workload, &q);
        for s in System::ALL {
            let mut got = bed.system(s).query_from(origin, &q).unwrap().owners;
            got.sort_unstable();
            assert_eq!(got, expected, "{} disagrees on {q:?}", s.name());
        }
    }
}

#[test]
fn all_systems_agree_on_full_domain_ranges() {
    // The adversarial Theorem-4.10 query: the whole value domain.
    let bed = bed();
    let (dmin, dmax) = bed.workload.space.domain();
    for attr in bed.workload.space.ids().take(10) {
        let q = Query::new(vec![SubQuery {
            attr,
            target: ValueTarget::Range { low: dmin, high: dmax },
        }])
        .unwrap();
        let expected = brute_force(&bed.workload, &q);
        for s in System::ALL {
            let mut got = bed.system(s).query_from(5, &q).unwrap().owners;
            got.sort_unstable();
            assert_eq!(got, expected, "{} incomplete on full-domain {attr}", s.name());
        }
    }
}

#[test]
fn empty_results_are_consistent() {
    // Multi-attribute conjunctions that no single owner satisfies must be
    // empty everywhere (not an error).
    let bed = bed();
    let mut rng = SmallRng::seed_from_u64(0x13);
    let mut found_empty = 0;
    for _ in 0..60 {
        let q = bed.workload.random_query(6, QueryMix::NonRange, &mut rng);
        let expected = brute_force(&bed.workload, &q);
        if !expected.is_empty() {
            continue;
        }
        found_empty += 1;
        for s in System::ALL {
            let out = bed.system(s).query_from(0, &q).unwrap();
            assert!(out.owners.is_empty(), "{} fabricated owners", s.name());
        }
    }
    assert!(found_empty > 10, "6-attribute conjunctions should mostly be empty");
}

#[test]
fn costs_differ_but_match_the_papers_ordering() {
    let bed = bed();
    let mut rng = SmallRng::seed_from_u64(0x14);
    let mut hops = std::collections::HashMap::new();
    let mut visited = std::collections::HashMap::new();
    for _ in 0..100 {
        let qp = bed.workload.random_query(3, QueryMix::NonRange, &mut rng);
        let qr = bed.workload.random_query(3, QueryMix::Range, &mut rng);
        let origin = rng.gen_range(0..bed.cfg.nodes);
        for s in System::ALL {
            let sys = bed.system(s);
            *hops.entry(s.name()).or_insert(0usize) +=
                sys.query_from(origin, &qp).unwrap().tally.hops;
            *visited.entry(s.name()).or_insert(0usize) +=
                sys.query_from(origin, &qr).unwrap().tally.visited;
        }
    }
    // Theorems 4.7/4.8: MAAN > LORM > Mercury ≈ SWORD on hops.
    assert!(hops["MAAN"] > hops["LORM"]);
    assert!(hops["LORM"] > hops["Mercury"]);
    // Theorem 4.9: Mercury/MAAN >> LORM > SWORD on range probes.
    assert!(visited["Mercury"] > 10 * visited["LORM"]);
    assert!(visited["MAAN"] > 10 * visited["LORM"]);
    assert!(visited["LORM"] > visited["SWORD"]);
}
