//! Trace validation: every hop in a routed path must traverse an actual
//! link of the previous node. This pins down the "routing uses only
//! node-local state" claim — a regression here would mean the simulator
//! teleported a message.

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn chord_paths_follow_links() {
    let net = chord::Chord::build(512, chord::ChordConfig::default());
    let mut rng = SmallRng::seed_from_u64(0xED6E);
    for _ in 0..300 {
        let from = net.random_node(&mut rng).unwrap();
        let key: u64 = rng.gen();
        let route = net.route(from, key).unwrap();
        let mut cur = from;
        for &hop in &route.path {
            let node = net.node(cur).unwrap();
            let is_link = node.fingers().contains(&hop)
                || node.successor_list().contains(&hop)
                || node.predecessor() == Some(hop);
            assert!(is_link, "hop {cur} -> {hop} is not a link of {cur}");
            cur = hop;
        }
        assert_eq!(cur, route.terminal);
    }
}

#[test]
fn cycloid_paths_follow_links() {
    let net = Cycloid::build(2048, CycloidConfig::default());
    let mut rng = SmallRng::seed_from_u64(0xED6F);
    for _ in 0..300 {
        let from = net.random_node(&mut rng).unwrap();
        let key = CycloidId::new(rng.gen_range(0..8), rng.gen_range(0..256), 8);
        let route = net.route(from, key).unwrap();
        let mut cur = from;
        for &hop in &route.path {
            let node = net.node(cur).unwrap();
            let (op, os) = node.outside_leaf();
            let is_link = node.inside_pred() == Some(hop)
                || node.inside_succ() == Some(hop)
                || op == Some(hop)
                || os == Some(hop)
                || node.cubical_neighbor() == Some(hop)
                || node.cyclic_neighbors().contains(&Some(hop))
                || node.primary() == Some(hop);
            assert!(
                is_link,
                "hop {} -> {} is not a link",
                net.id_of(cur).unwrap(),
                net.id_of(hop).unwrap()
            );
            cur = hop;
        }
        assert_eq!(cur, route.terminal);
    }
}

#[test]
fn sparse_cycloid_paths_follow_links_too() {
    let net = Cycloid::build(300, CycloidConfig { dimension: 8, seed: 0x51 });
    let mut rng = SmallRng::seed_from_u64(0xED70);
    for _ in 0..300 {
        let from = net.random_node(&mut rng).unwrap();
        let key = CycloidId::new(rng.gen_range(0..8), rng.gen_range(0..256), 8);
        let route = net.route(from, key).unwrap();
        let mut cur = from;
        for &hop in &route.path {
            let node = net.node(cur).unwrap();
            let (op, os) = node.outside_leaf();
            let is_link = node.inside_pred() == Some(hop)
                || node.inside_succ() == Some(hop)
                || op == Some(hop)
                || os == Some(hop)
                || node.cubical_neighbor() == Some(hop)
                || node.cyclic_neighbors().contains(&Some(hop))
                || node.primary() == Some(hop);
            assert!(is_link, "sparse: non-link hop");
            cur = hop;
        }
    }
}
