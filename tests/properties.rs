//! Property-based tests (proptest) on the core invariants:
//!
//! * ring-interval algebra (the foundation of Chord routing),
//! * locality-preserving-hash monotonicity (Proposition 3.1's premise),
//! * routed lookups always landing on the consistent-hashing owner,
//! * LORM range-query completeness on arbitrary workloads,
//! * percentile/summary statistics consistency.

use lorm_repro::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ring_interval_oc_complementary(a: u64, b: u64, x: u64) {
        // For a != b, exactly one of (a,b] and (b,a] contains x.
        prop_assume!(a != b);
        let in_ab = dht_core::in_interval_oc(a, b, x);
        let in_ba = dht_core::in_interval_oc(b, a, x);
        prop_assert!(in_ab != in_ba, "x={x} a={a} b={b}");
    }

    #[test]
    fn ring_clockwise_distance_additive(a: u64, b: u64, c: u64) {
        use dht_core::clockwise_dist;
        let ab = clockwise_dist(a, b);
        let bc = clockwise_dist(b, c);
        let ac = clockwise_dist(a, c);
        prop_assert_eq!(ab.wrapping_add(bc), ac);
    }

    #[test]
    fn ring_dist_symmetric_and_bounded(a: u64, b: u64) {
        let d = dht_core::ring_dist(a, b);
        prop_assert_eq!(d, dht_core::ring_dist(b, a));
        prop_assert!(d <= u64::MAX / 2 + 1);
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn lph_preserves_order(lo in 0.0f64..1e6, span in 1.0f64..1e6,
                           x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let h = dht_core::LocalityHash::new(lo, lo + span, 1 << 30).unwrap();
        let (vx, vy) = (lo + x * span, lo + y * span);
        if vx <= vy {
            prop_assert!(h.hash(vx) <= h.hash(vy));
        } else {
            prop_assert!(h.hash(vx) >= h.hash(vy));
        }
    }

    #[test]
    fn consistent_hash_is_stable_and_seeded(s in "[a-z]{1,16}", seed1: u64, seed2: u64) {
        let h1 = dht_core::ConsistentHash::new(seed1);
        prop_assert_eq!(h1.hash_str(&s), h1.hash_str(&s));
        if seed1 != seed2 {
            // different seeds virtually never collide on the same input
            let h2 = dht_core::ConsistentHash::new(seed2);
            prop_assert_ne!(h1.hash_str(&s), h2.hash_str(&s));
        }
    }

    #[test]
    fn percentiles_are_order_statistics(mut xs in prop::collection::vec(-1e9f64..1e9, 1..200),
                                        p in 0.0f64..100.0) {
        let perc = dht_core::Percentiles::from_samples(xs.clone());
        let v = perc.percentile(p);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v >= xs[0] && v <= xs[xs.len() - 1]);
        prop_assert!(xs.contains(&v), "percentile must be an observed sample");
    }

    #[test]
    fn summary_mean_within_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = dht_core::Summary::new();
        for &x in &xs {
            s.record(x);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
        prop_assert_eq!(s.count() as usize, xs.len());
    }

    #[test]
    fn chord_route_lands_on_owner(n in 2usize..200, key: u64, seed: u64) {
        let net = chord::Chord::build(n, chord::ChordConfig { seed, ..Default::default() });
        let mut rng = SmallRng::seed_from_u64(seed ^ 1);
        let from = net.random_node(&mut rng).unwrap();
        let r = net.route(from, key).unwrap();
        prop_assert!(r.exact);
        prop_assert_eq!(r.terminal, net.owner_of(key).unwrap());
        // Chord's logarithmic bound with slack
        prop_assert!(r.hops() <= 2 * (n as f64).log2().ceil() as usize + 2);
    }

    #[test]
    fn cycloid_route_lands_on_owner(d in 3u8..9, frac in 0.05f64..1.0,
                                    cyc: u8, cub: u32, seed: u64) {
        let cap = d as usize * (1usize << d);
        let n = ((cap as f64 * frac) as usize).max(2);
        let net = cycloid::Cycloid::build(n, cycloid::CycloidConfig { dimension: d, seed });
        let key = CycloidId::new(cyc % d, cub % (1u32 << d), d);
        let mut rng = SmallRng::seed_from_u64(seed ^ 2);
        let from = net.random_node(&mut rng).unwrap();
        let r = net.route(from, key).unwrap();
        prop_assert!(r.exact, "route to {key} ended off-owner (n={n}, d={d})");
    }

    #[test]
    fn join_owners_is_intersection(sets in prop::collection::vec(
        prop::collection::vec(0usize..50, 0..30), 1..5)) {
        let joined = grid_resource::discovery::join_owners(sets.clone());
        for owner in 0..50usize {
            let in_all = sets.iter().all(|s| s.contains(&owner));
            prop_assert_eq!(joined.contains(&owner), in_all, "owner {}", owner);
        }
        // sorted + deduped
        let mut sorted = joined.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(joined, sorted);
    }
}

proptest! {
    // LORM completeness is the expensive property: fewer, bigger cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lorm_range_queries_complete_on_arbitrary_workloads(
        seed: u64,
        attrs in 1usize..12,
        values in 2usize..60,
        frac in 0.1f64..1.0,
        lo_frac in 0.0f64..1.0,
        span_frac in 0.0f64..1.0,
    ) {
        let d = 6u8;
        let cap = d as usize * (1usize << d); // 384
        let n = ((cap as f64 * frac) as usize).max(4);
        let cfg = WorkloadConfig {
            num_attrs: attrs,
            values_per_attr: values,
            num_nodes: n,
            value_dist: ValueDist::Uniform,
            ..WorkloadConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = Workload::generate(cfg, &mut rng).unwrap();
        let mut sys = Lorm::new(n, &w.space, LormConfig { dimension: d, seed, ..Default::default() });
        sys.place_all(&w.reports);

        let (dmin, dmax) = w.space.domain();
        let lo = dmin + lo_frac * (dmax - dmin);
        let hi = (lo + span_frac * (dmax - lo)).min(dmax);
        let attr = AttrId((seed % attrs as u64) as u32);
        let q = Query::new(vec![SubQuery {
            attr,
            target: ValueTarget::Range { low: lo, high: hi },
        }]).unwrap();
        let out = sys.query_from(0, &q).unwrap();
        let mut got = out.owners;
        got.sort_unstable();
        let mut expected: Vec<usize> = w.reports.iter()
            .filter(|r| r.attr == attr && r.value >= lo && r.value <= hi)
            .map(|r| r.owner)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(got, expected, "range [{}, {}] n={} attrs={}", lo, hi, n, attrs);
    }
}

proptest! {
    // Cross-system completeness on arbitrary small workloads: every
    // system must return exactly the brute-force answer. Mercury builds m
    // overlays per case, so cases stay small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_system_is_complete_on_arbitrary_workloads(
        seed: u64,
        attrs in 2usize..6,
        values in 3usize..25,
        arity in 1usize..3,
        lo_frac in 0.0f64..1.0,
        span_frac in 0.0f64..1.0,
    ) {
        let n = 128usize;
        let cfg = SimConfig {
            nodes: n,
            dimension: 6, // capacity 384 >= n
            attrs,
            values,
            seed,
            ..SimConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
        let (dmin, dmax) = w.space.domain();
        let lo = dmin + lo_frac * (dmax - dmin);
        let hi = (lo + span_frac * (dmax - lo)).min(dmax);
        let subs: Vec<SubQuery> = (0..arity.min(attrs))
            .map(|i| SubQuery {
                attr: AttrId(i as u32),
                target: ValueTarget::Range { low: lo, high: hi },
            })
            .collect();
        let q = Query::new(subs).unwrap();
        let expected = {
            let per: Vec<Vec<usize>> = q
                .subs
                .iter()
                .map(|s| {
                    w.reports
                        .iter()
                        .filter(|r| r.attr == s.attr && s.target.matches(r.value))
                        .map(|r| r.owner)
                        .collect()
                })
                .collect();
            grid_resource::discovery::join_owners(per)
        };
        for s in System::ALL {
            let sys = build_system(s, &w, &cfg);
            let mut got = sys.query_from(0, &q).unwrap().owners;
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{} on [{}, {}]", sys.name(), lo, hi);
        }
    }
}
