//! End-to-end churn: systems keep answering correctly while nodes join
//! and leave, provided maintenance runs — the §V.C result ("no failures
//! in all test cases") as an executable invariant.

use lorm_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn brute_force(w: &Workload, q: &Query) -> Vec<usize> {
    let per_sub: Vec<Vec<usize>> = q
        .subs
        .iter()
        .map(|s| {
            w.reports
                .iter()
                .filter(|r| r.attr == s.attr && s.target.matches(r.value))
                .map(|r| r.owner)
                .collect()
        })
        .collect();
    grid_resource::discovery::join_owners(per_sub)
}

fn churn_cycle(system: System) {
    let cfg = SimConfig {
        nodes: 700, // below Cycloid capacity so joins have free slots
        dimension: 7,
        attrs: 15,
        values: 40,
        ..SimConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(0xC0C0A + system.name().len() as u64);
    let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
    let mut sys = build_system(system, &workload, &cfg);

    let mut max_phys = cfg.nodes;
    for round in 0..6 {
        // a burst of churn: 10 joins, 10 graceful departures
        for _ in 0..10 {
            if sys.join_physical(&mut rng).is_ok() {
                max_phys += 1;
            }
        }
        let mut left = 0;
        while left < 10 {
            let p = rng.gen_range(0..max_phys);
            if sys.is_live(p) && sys.leave_physical(p).is_ok() {
                left += 1;
            }
        }
        // periodic maintenance: repair links + refresh reports
        sys.stabilize();
        sys.place_all(&workload.reports);
        // queries must be complete again
        for _ in 0..20 {
            let q = workload.random_query(2, QueryMix::Range, &mut rng);
            let origin = loop {
                let p = rng.gen_range(0..max_phys);
                if sys.is_live(p) {
                    break p;
                }
            };
            let out = sys
                .query_from(origin, &q)
                .unwrap_or_else(|e| panic!("{} round {round}: query failed: {e}", sys.name()));
            let mut got = out.owners;
            got.sort_unstable();
            assert_eq!(got, brute_force(&workload, &q), "{} round {round}", sys.name());
        }
    }
    assert_eq!(sys.num_physical(), cfg.nodes, "population is conserved");
}

#[test]
fn lorm_survives_churn() {
    churn_cycle(System::Lorm);
}

#[test]
fn sword_survives_churn() {
    churn_cycle(System::Sword);
}

#[test]
fn maan_survives_churn() {
    churn_cycle(System::Maan);
}

#[test]
fn mercury_survives_churn() {
    churn_cycle(System::Mercury);
}

#[test]
fn queries_between_maintenance_rounds_stay_exact_under_graceful_churn() {
    // Graceful joins/leaves repair their neighborhood immediately, so even
    // *without* a global stabilize, point lookups should keep terminating
    // (possibly at a node that hasn't received the re-reported data yet —
    // hence we only require no routing errors here, not completeness).
    let cfg = SimConfig { nodes: 700, dimension: 7, attrs: 15, values: 40, ..SimConfig::default() };
    let mut rng = SmallRng::seed_from_u64(0xBEE);
    let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
    let mut sys = build_system(System::Lorm, &workload, &cfg);
    let mut max_phys = cfg.nodes;
    for _ in 0..40 {
        if rng.gen_bool(0.5) {
            if sys.join_physical(&mut rng).is_ok() {
                max_phys += 1;
            }
        } else {
            let p = rng.gen_range(0..max_phys);
            if sys.is_live(p) {
                let _ = sys.leave_physical(p);
            }
        }
        let origin = loop {
            let p = rng.gen_range(0..max_phys);
            if sys.is_live(p) {
                break p;
            }
        };
        let q = workload.random_query(1, QueryMix::NonRange, &mut rng);
        sys.query_from(origin, &q).expect("graceful churn must not break routing");
    }
}
