//! A Chord ring plus per-node directories — the building block shared by
//! all three baseline systems.

use chord::{Chord, ChordConfig};
use dht_core::{
    probe_step, BuildMode, DhtError, FaultAccount, FaultPlan, NodeIdx, Overlay, RepairStats,
    RouteCache, RouteStats, WalkStep,
};
use grid_resource::{AttrId, Directory, PieceKey, ReplicaStore, ResourceInfo, ValueTarget};

/// Per-piece routing keys callback: systems place a report under
/// system-specific keys (SWORD hashes the attribute, MAAN both the
/// attribute and the value, Mercury the value per hub), so the host's
/// replication engine asks the owner system for the key(s) of each piece
/// it copies — promotion later reroutes by the same key.
pub type KeysOf<'a> = &'a mut dyn FnMut(&ResourceInfo, &mut Vec<u64>);

/// One Chord overlay with a resource-information directory on every node.
///
/// `Sword` and `Maan` own one host; `Mercury` owns one per attribute hub.
///
/// The host also carries the optional replication layer (degree `repl`):
/// per-node [`ReplicaStore`]s placed along successor lists, repaired on
/// demand by [`ChordHost::repair_replicas_with`]. At the default degree
/// of 1 no replica state exists and every replication method is a no-op,
/// so unreplicated runs are byte-identical to builds without this layer.
#[derive(Debug, Clone)]
pub struct ChordHost {
    net: Chord,
    dirs: Vec<Directory>,
    repl: usize,
    replicas: Vec<ReplicaStore>,
    repair: RepairStats,
}

impl ChordHost {
    /// Build a stabilized host of `n` nodes.
    pub fn build(n: usize, seed: u64) -> Self {
        Self::build_with_mode(n, seed, BuildMode::Bulk)
    }

    /// Build a stabilized host with an explicit overlay build mode (both
    /// modes yield byte-identical hosts; see [`BuildMode`]).
    pub fn build_with_mode(n: usize, seed: u64, mode: BuildMode) -> Self {
        let net = Chord::build_with_mode(n, ChordConfig { seed, ..ChordConfig::default() }, mode);
        let dirs = vec![Directory::new(); net.arena_len()];
        Self { net, dirs, repl: 1, replicas: Vec::new(), repair: RepairStats::new() }
    }

    /// The underlying overlay.
    pub fn net(&self) -> &Chord {
        &self.net
    }

    /// Mutable access for churn operations.
    pub fn net_mut(&mut self) -> &mut Chord {
        &mut self.net
    }

    /// Clear every directory (and, when replicating, every replica store —
    /// a full re-placement invalidates old replica attribution; the next
    /// repair round re-seeds replicas from the new primaries).
    pub fn clear(&mut self) {
        self.dirs = vec![Directory::new(); self.net.arena_len()];
        if self.repl > 1 {
            self.replicas = vec![ReplicaStore::new(); self.net.arena_len()];
        }
    }

    /// Keep directory storage in sync with the arena after joins.
    pub fn sync_arena(&mut self) {
        if self.dirs.len() < self.net.arena_len() {
            self.dirs.resize(self.net.arena_len(), Directory::new());
        }
        if self.repl > 1 && self.replicas.len() < self.net.arena_len() {
            self.replicas.resize(self.net.arena_len(), ReplicaStore::new());
        }
    }

    /// Enable replication at degree `k`, seeding replica stores from the
    /// current primaries (seeding is initial placement, not repair — it is
    /// not counted in [`ChordHost::repair_stats`]). `k <= 1` drops all
    /// replica state and disables the layer.
    pub fn set_replication_with(&mut self, k: usize, keys_of: KeysOf<'_>) {
        self.repl = k.max(1);
        self.repair = RepairStats::new();
        if self.repl <= 1 {
            self.replicas = Vec::new();
            return;
        }
        self.replicas = vec![ReplicaStore::new(); self.net.arena_len()];
        self.replicate_primaries(keys_of, false);
    }

    /// The configured replication degree (1 = unreplicated).
    pub fn replication(&self) -> usize {
        self.repl
    }

    /// Cumulative replica-repair bandwidth counters.
    pub fn repair_stats(&self) -> RepairStats {
        self.repair
    }

    /// Copy every live primary piece to its current successor-list
    /// targets, skipping copies that already exist. With `account` the
    /// new copies are charged to [`ChordHost::repair_stats`] (repair);
    /// without it they are free (initial seeding).
    fn replicate_primaries(&mut self, keys_of: KeysOf<'_>, account: bool) {
        let mut targets: Vec<NodeIdx> = Vec::new();
        let mut keys: Vec<u64> = Vec::new();
        for &p in self.net.live_nodes() {
            targets.clear();
            if self.net.replica_targets_into(p, self.repl, &mut targets).is_err()
                || targets.is_empty()
            {
                continue;
            }
            let Some(dir) = self.dirs.get(p.0) else { continue };
            for info in dir.iter() {
                keys.clear();
                keys_of(info, &mut keys);
                for &key in &keys {
                    for &t in &targets {
                        if self.replicas[t.0].insert(p, key, *info) && account {
                            self.repair.record_copy();
                        }
                    }
                }
            }
        }
    }

    /// One replica-repair round; call right after the overlay's own
    /// repair (`rebuild_all_state`), while successor lists are ground
    /// truth. Two phases, in order:
    ///
    /// 1. **Promote**: every replica whose primary died is re-stored at
    ///    the key's *current* owner (one transfer, counted as a
    ///    promotion) — unless the owner already holds the piece (graceful
    ///    handoff beat us to it; the stale entry is dropped free).
    /// 2. **Re-replicate**: every live primary piece — including the
    ///    pieces phase 1 just promoted — is copied to its current
    ///    targets where missing (counted as copies).
    ///
    /// No-op below degree 2.
    pub fn repair_replicas_with(&mut self, keys_of: KeysOf<'_>) {
        if self.repl <= 1 {
            return;
        }
        self.sync_arena();
        self.repair.record_round();
        let net = &self.net;
        for holder in 0..self.replicas.len() {
            if !net.node(NodeIdx(holder)).map(|n| n.is_alive()).unwrap_or(false) {
                continue;
            }
            let dead = self.replicas[holder]
                .drain_dead(|p| net.node(p).map(|n| n.is_alive()).unwrap_or(false));
            for e in dead {
                match net.owner_of(e.key) {
                    Ok(owner) if !self.dirs[owner.0].contains(&e.info) => {
                        self.dirs[owner.0].push(e.info);
                        self.repair.record_promotion();
                    }
                    _ => self.repair.record_dropped(),
                }
            }
        }
        self.replicate_primaries(keys_of, true);
    }

    /// Drop every replica held *by* `idx` — the store dies with the node
    /// on failure or departure. Replicas held elsewhere on `idx`'s behalf
    /// are cleaned up (promoted or dropped) by the next repair round.
    pub fn clear_replicas_of(&mut self, idx: NodeIdx) {
        if let Some(store) = self.replicas.get_mut(idx.0) {
            store.clear();
        }
    }

    /// Append the piece identity of everything reachable on live nodes —
    /// primary directories and replica stores both. Callers canonicalize
    /// (sort + dedup).
    pub fn surviving_pieces_into(&self, out: &mut Vec<PieceKey>) {
        for &n in self.net.live_nodes() {
            if let Some(dir) = self.dirs.get(n.0) {
                out.extend(dir.iter().map(PieceKey::of));
            }
            if let Some(store) = self.replicas.get(n.0) {
                store.keys_into(out);
            }
        }
    }

    /// Replica store of one node (inspection/tests).
    pub fn replicas_of(&self, node: NodeIdx) -> Option<&ReplicaStore> {
        self.replicas.get(node.0)
    }

    /// Store at the ground-truth owner of `key` (periodic report refresh).
    pub fn store_at_owner(&mut self, key: u64, info: ResourceInfo) -> Result<NodeIdx, DhtError> {
        let root = self.net.owner_of(key)?;
        self.sync_arena();
        self.dirs[root.0].push(info);
        Ok(root)
    }

    /// Store a whole placement batch at the ground-truth owners of its
    /// keys in one pass — the bed-construction twin of calling
    /// [`Self::store_at_owner`] per item.
    ///
    /// Items whose key cannot be resolved (empty overlay) are skipped,
    /// matching the per-item path's error handling at the call sites. The
    /// batch is grouped by destination node with one stable sort, and each
    /// node's group lands through [`Directory::bulk_load`] — so per-node
    /// arrival order (and therefore every report byte) is identical to the
    /// sequential path, without its per-attribute `Vec::insert` shifts.
    pub fn store_all_at_owners(&mut self, items: impl IntoIterator<Item = (u64, ResourceInfo)>) {
        let mut routed: Vec<(NodeIdx, ResourceInfo)> = items
            .into_iter()
            .filter_map(|(key, info)| self.net.owner_of(key).ok().map(|root| (root, info)))
            .collect();
        routed.sort_by_key(|&(root, _)| root);
        self.sync_arena();
        let mut rest = routed.as_slice();
        while let Some(&(root, _)) = rest.first() {
            let run = rest.iter().take_while(|&&(r, _)| r == root).count();
            self.dirs[root.0].bulk_load(rest[..run].iter().map(|&(_, info)| info).collect());
            rest = &rest[run..];
        }
    }

    /// Store by routing from `from` (the per-report insert path). Returns
    /// the route's `(hops, terminal, exact)` summary — the insert path
    /// never needs the traced hop list.
    pub fn store_routed(
        &mut self,
        from: NodeIdx,
        key: u64,
        info: ResourceInfo,
    ) -> Result<RouteStats, DhtError> {
        let route = self.net.route_stats(from, key)?;
        self.sync_arena();
        self.dirs[route.terminal.0].push(info);
        Ok(route)
    }

    /// Directory of one node (for inspection).
    pub fn directory(&self, node: NodeIdx) -> &Directory {
        &self.dirs[node.0]
    }

    /// Drain the directory of `node` (departure handoff).
    pub fn drain_directory(&mut self, node: NodeIdx) -> Vec<ResourceInfo> {
        self.dirs[node.0].drain()
    }

    /// Number of pieces stored on `node`.
    pub fn load_of(&self, node: NodeIdx) -> usize {
        self.dirs[node.0].len()
    }

    /// Owners in `node`'s directory matching an attribute constraint.
    pub fn matches_in(&self, node: NodeIdx, attr: AttrId, t: &ValueTarget) -> Vec<usize> {
        self.dirs[node.0].matching_owners(attr, t)
    }

    /// Append matching owners into `out` (scratch-buffer variant for the
    /// query hot loops).
    pub fn matches_in_into(
        &self,
        node: NodeIdx,
        attr: AttrId,
        t: &ValueTarget,
        out: &mut Vec<usize>,
    ) {
        self.dirs[node.0].matching_owners_into(attr, t, out);
    }

    /// Total pieces stored on all nodes.
    pub fn total_pieces(&self) -> usize {
        self.dirs.iter().map(Directory::len).sum()
    }

    /// Clockwise range walk: starting at the root of `lo_key`, probe
    /// successive nodes until the first node at-or-past `hi_key` on the
    /// directed arc from `lo_key` — the system-wide range probe of Mercury
    /// and MAAN.
    ///
    /// The directed-arc criterion (rather than "stop at the root of
    /// `hi_key`") matters when the arc wraps past the largest identifier:
    /// `root(lo)` and `root(hi)` can then coincide while every node in
    /// between still holds matching values. The walk stops early if
    /// pointers are broken (churn) or after a full circle.
    pub fn walk_range(&self, start: NodeIdx, lo_key: u64, hi_key: u64) -> Vec<NodeIdx> {
        let mut probed = Vec::new();
        self.walk_range_into(start, lo_key, hi_key, &mut probed);
        probed
    }

    /// Append the probed nodes of a range walk into `out` (scratch-buffer
    /// variant for the query hot loops, which run one walk per sub-query).
    pub fn walk_range_into(
        &self,
        start: NodeIdx,
        lo_key: u64,
        hi_key: u64,
        out: &mut Vec<NodeIdx>,
    ) {
        use dht_core::clockwise_dist;
        out.push(start);
        let mut cur = start;
        let span = clockwise_dist(lo_key, hi_key);
        let budget = self.net.len();
        for _ in 0..budget {
            let cur_id = match self.net.id_of(cur) {
                Ok(id) => id,
                Err(_) => break,
            };
            // `cur` covers keys up to its own id; once it sits at or past
            // hi (walking clockwise from lo), the arc is covered.
            if clockwise_dist(lo_key, cur_id) >= span {
                break;
            }
            match self.net.next_clockwise(cur) {
                Ok(next) if next != start => {
                    out.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
    }

    /// The cached twin of [`Self::walk_range_into`] — identical emission
    /// by construction. A fresh-epoch segment cached for at least this
    /// span replays through the walk's own stop rule (`dist < span`);
    /// otherwise the walk runs for real and its emission is recorded.
    ///
    /// A walk that stopped for a span-*independent* reason (broken
    /// pointers, full circle, probe budget) emitted everything reachable
    /// from `start`, so it is cached with an unbounded span and replays
    /// exactly for wider queries too; only a walk stopped by the arc rule
    /// is bounded to the span it was run for.
    ///
    /// `salt` namespaces overlays sharing one cache (Mercury passes the
    /// hub index; single-ring systems pass 0).
    #[allow(clippy::too_many_arguments)] // mirrors the plain walk plus the cache pair
    pub fn walk_range_cached_into(
        &self,
        start: NodeIdx,
        lo_key: u64,
        hi_key: u64,
        salt: u64,
        cache: &mut RouteCache,
        out: &mut Vec<NodeIdx>,
    ) {
        use dht_core::clockwise_dist;
        let span = clockwise_dist(lo_key, hi_key);
        let epoch = self.net.epoch();
        out.push(start);
        if let Some(steps) = cache.walk_lookup(salt, start, lo_key, span, epoch) {
            for s in steps {
                if s.dist >= span {
                    break;
                }
                out.push(s.node);
            }
            return;
        }
        // Two-touch admission: a first-sighted key runs the walk plain
        // (recording a never-repeating walk is pure overhead); only a
        // repeat offender pays the per-step copy and gets cached.
        let mut rec = if cache.admit_walk(salt, start, lo_key, epoch) {
            Some(cache.begin_walk())
        } else {
            None
        };
        let mut cur = start;
        let budget = self.net.len();
        let mut rule_stop = false;
        for _ in 0..budget {
            let cur_id = match self.net.id_of(cur) {
                Ok(id) => id,
                Err(_) => break,
            };
            let dist = clockwise_dist(lo_key, cur_id);
            if dist >= span {
                rule_stop = true;
                break;
            }
            match self.net.next_clockwise(cur) {
                Ok(next) if next != start => {
                    // Each step stores the distance of the node that
                    // admitted it — the quantity the stop rule tests.
                    if let Some(rec) = rec.as_mut() {
                        rec.push(WalkStep { node: next, dist });
                    }
                    out.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
        if let Some(rec) = rec {
            let stored_span = if rule_stop { span } else { u64::MAX };
            cache.commit_walk(salt, start, lo_key, stored_span, epoch, rec);
        }
    }

    /// Fault-aware variant of [`Self::walk_range_into`]: every advance to
    /// the next clockwise node is a probe message subject to the plan's
    /// drop coin (one retry) and the dead-member check. Returns `true`
    /// when a fault truncated the walk before the arc was covered. An
    /// inert plan delegates to the plain walk.
    #[allow(clippy::too_many_arguments)]
    pub fn walk_range_faulty_into(
        &self,
        start: NodeIdx,
        lo_key: u64,
        hi_key: u64,
        plan: &FaultPlan,
        walk_msg: u64,
        acct: &mut FaultAccount,
        out: &mut Vec<NodeIdx>,
    ) -> bool {
        if plan.is_inert() {
            self.walk_range_into(start, lo_key, hi_key, out);
            return false;
        }
        use dht_core::clockwise_dist;
        out.push(start);
        let mut cur = start;
        let span = clockwise_dist(lo_key, hi_key);
        let budget = self.net.len();
        let mut step = 0usize;
        for _ in 0..budget {
            let cur_id = match self.net.id_of(cur) {
                Ok(id) => id,
                Err(_) => break,
            };
            if clockwise_dist(lo_key, cur_id) >= span {
                break;
            }
            match self.net.next_clockwise(cur) {
                Ok(next) if next != start => {
                    step += 1;
                    if !probe_step(plan, walk_msg, step, next, acct) {
                        return true;
                    }
                    out.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
        false
    }

    /// Per-live-node directory sizes, indexed in `live_nodes()` order.
    pub fn loads(&self) -> Vec<usize> {
        self.net.live_nodes().iter().map(|&n| self.dirs[n.0].len()).collect()
    }

    /// Per-live-node distinct outlink counts.
    pub fn outlinks(&self) -> Vec<usize> {
        self.net.live_nodes().iter().map(|&n| self.net.outlinks(n).unwrap_or(0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(owner: usize) -> ResourceInfo {
        ResourceInfo { attr: AttrId(0), value: 1.0, owner }
    }

    #[test]
    fn store_at_owner_places_on_root() {
        let mut h = ChordHost::build(64, 1);
        let root = h.store_at_owner(12345, info(7)).unwrap();
        assert_eq!(h.load_of(root), 1);
        assert_eq!(h.total_pieces(), 1);
        assert_eq!(root, h.net().owner_of(12345).unwrap());
    }

    #[test]
    fn store_routed_reaches_same_root() {
        let mut h = ChordHost::build(64, 2);
        let from = h.net().nodes_by_id()[0];
        let r = h.store_routed(from, 999, info(3)).unwrap();
        assert_eq!(r.terminal, h.net().owner_of(999).unwrap());
        assert_eq!(h.total_pieces(), 1);
    }

    #[test]
    fn matches_filter_by_attr_and_value() {
        let mut h = ChordHost::build(16, 3);
        let root =
            h.store_at_owner(5, ResourceInfo { attr: AttrId(1), value: 10.0, owner: 4 }).unwrap();
        h.store_at_owner(5, ResourceInfo { attr: AttrId(2), value: 10.0, owner: 9 }).unwrap();
        let m = h.matches_in(root, AttrId(1), &ValueTarget::Point(10.0));
        assert_eq!(m, vec![4]);
        let none = h.matches_in(root, AttrId(1), &ValueTarget::Point(11.0));
        assert!(none.is_empty());
    }

    #[test]
    fn walk_covers_arc_to_root() {
        let h = ChordHost::build(128, 4);
        let start_key = 0u64;
        let hi_key = u64::MAX / 4; // a quarter of the ring
        let start = h.net().owner_of(start_key).unwrap();
        let walk = h.walk_range(start, start_key, hi_key);
        // expect roughly n/4 = 32 nodes, generously banded
        assert!((20..=45).contains(&walk.len()), "walk length {}", walk.len());
        assert_eq!(*walk.last().unwrap(), h.net().owner_of(hi_key).unwrap());
        // nodes are consecutive on the ring
        for w in walk.windows(2) {
            assert_eq!(h.net().next_clockwise(w[0]).unwrap(), w[1]);
        }
    }

    #[test]
    fn walk_to_own_key_is_single_probe() {
        let h = ChordHost::build(32, 5);
        let root = h.net().owner_of(777).unwrap();
        let walk = h.walk_range(root, 776, 777);
        assert_eq!(walk, vec![root]);
    }

    #[test]
    fn full_ring_walk_probes_every_node() {
        // Regression: a range spanning the whole key space has
        // root(lo) == root(hi), but must still probe all n nodes.
        let h = ChordHost::build(64, 8);
        let start = h.net().owner_of(0).unwrap();
        let walk = h.walk_range(start, 0, u64::MAX);
        assert_eq!(walk.len(), 64);
    }

    #[test]
    fn cached_walk_matches_plain_walk() {
        let h = ChordHost::build(128, 4);
        let start = h.net().owner_of(0).unwrap();
        let mut cache = RouteCache::new();
        // Two-touch admission: the first sighting runs plain (and is
        // still byte-identical), the second records...
        let mut primed = Vec::new();
        h.walk_range_cached_into(start, 0, u64::MAX / 2, 0, &mut cache, &mut primed);
        let mut first = Vec::new();
        h.walk_range_cached_into(start, 0, u64::MAX / 2, 0, &mut cache, &mut first);
        assert_eq!(primed, first);
        assert_eq!(first, h.walk_range(start, 0, u64::MAX / 2));
        // ...and narrower spans replay from it, byte-identical.
        for hi in [u64::MAX / 8, u64::MAX / 4, u64::MAX / 2] {
            let mut cached = Vec::new();
            h.walk_range_cached_into(start, 0, hi, 0, &mut cache, &mut cached);
            assert_eq!(cached, h.walk_range(start, 0, hi));
        }
        assert_eq!(cache.walk_hits(), 3, "every narrower span replays from cache");
    }

    #[test]
    fn exhaustion_terminated_walk_serves_any_span() {
        // A full-circle walk stopped for a span-independent reason emits
        // everything reachable: it must serve narrower queries too.
        let h = ChordHost::build(64, 8);
        let start = h.net().owner_of(0).unwrap();
        let mut cache = RouteCache::new();
        let mut full = Vec::new();
        // Twice: the first sighting only stamps the admission candidate.
        h.walk_range_cached_into(start, 0, u64::MAX, 0, &mut cache, &mut full);
        full.clear();
        h.walk_range_cached_into(start, 0, u64::MAX, 0, &mut cache, &mut full);
        assert_eq!(full.len(), 64);
        let mut quarter = Vec::new();
        h.walk_range_cached_into(start, 0, u64::MAX / 4, 0, &mut cache, &mut quarter);
        assert_eq!(quarter, h.walk_range(start, 0, u64::MAX / 4));
        assert_eq!(cache.walk_hits(), 1);
    }

    #[test]
    fn churn_invalidates_cached_walks() {
        let mut h = ChordHost::build(64, 9);
        let start = h.net().owner_of(0).unwrap();
        let mut cache = RouteCache::new();
        let mut before = Vec::new();
        h.walk_range_cached_into(start, 0, u64::MAX / 4, 0, &mut cache, &mut before);
        // Kill a node on the walked arc and repair: the epoch moved, so
        // the stale segment must re-walk, matching the fresh plain walk.
        let victim = before[1];
        h.net_mut().fail(victim).unwrap();
        h.net_mut().rebuild_all_state();
        let hits_before = cache.walk_hits();
        let mut after = Vec::new();
        h.walk_range_cached_into(start, 0, u64::MAX / 4, 0, &mut cache, &mut after);
        assert_eq!(cache.walk_hits(), hits_before, "stale epoch cannot hit");
        assert_eq!(after, h.walk_range(start, 0, u64::MAX / 4));
        assert!(!after.contains(&victim));
    }

    #[test]
    fn inert_faulty_walk_matches_plain_walk() {
        let h = ChordHost::build(128, 4);
        let start = h.net().owner_of(0).unwrap();
        let plan = FaultPlan::none();
        let mut acct = FaultAccount::default();
        let mut faulty = Vec::new();
        let truncated =
            h.walk_range_faulty_into(start, 0, u64::MAX / 4, &plan, 9, &mut acct, &mut faulty);
        assert!(!truncated);
        assert_eq!(faulty, h.walk_range(start, 0, u64::MAX / 4));
        assert_eq!(acct, FaultAccount::default());
    }

    #[test]
    fn total_loss_truncates_walk_at_start() {
        let h = ChordHost::build(128, 4);
        let start = h.net().owner_of(0).unwrap();
        let plan = FaultPlan::new(1, 1.0, 0.0).unwrap();
        let mut acct = FaultAccount::default();
        let mut walk = Vec::new();
        let truncated =
            h.walk_range_faulty_into(start, 0, u64::MAX / 4, &plan, 9, &mut acct, &mut walk);
        assert!(truncated);
        assert_eq!(walk, vec![start], "first probe drops twice: only the start is covered");
        assert_eq!(acct.dropped_msgs, 2);
        assert_eq!(acct.retries, 1);
    }

    #[test]
    fn bulk_store_matches_sequential_store() {
        // Scrambled keys and duplicate destinations: the bulk path must
        // reproduce the sequential path's per-node directories exactly.
        let pieces: Vec<(u64, ResourceInfo)> = (0..200u64)
            .map(|i| {
                let key = i.wrapping_mul(0x9e3779b97f4a7c15);
                (
                    key,
                    ResourceInfo {
                        attr: AttrId((i % 7) as u32),
                        value: i as f64,
                        owner: i as usize,
                    },
                )
            })
            .collect();
        let mut seq = ChordHost::build(64, 11);
        let mut bulk = ChordHost::build(64, 11);
        for &(key, info) in &pieces {
            seq.store_at_owner(key, info).unwrap();
        }
        bulk.store_all_at_owners(pieces.iter().copied());
        assert_eq!(seq.total_pieces(), bulk.total_pieces());
        for &node in seq.net().live_nodes() {
            let a: Vec<usize> = seq.directory(node).iter().map(|r| r.owner).collect();
            let b: Vec<usize> = bulk.directory(node).iter().map(|r| r.owner).collect();
            assert_eq!(a, b, "directory of {node} diverged");
        }
    }

    #[test]
    fn drain_removes_pieces() {
        let mut h = ChordHost::build(8, 6);
        let root = h.store_at_owner(1, info(0)).unwrap();
        let drained = h.drain_directory(root);
        assert_eq!(drained.len(), 1);
        assert_eq!(h.total_pieces(), 0);
    }

    #[test]
    fn clear_resets_all() {
        let mut h = ChordHost::build(8, 7);
        h.store_at_owner(1, info(0)).unwrap();
        h.store_at_owner(2, info(1)).unwrap();
        h.clear();
        assert_eq!(h.total_pieces(), 0);
    }
}
