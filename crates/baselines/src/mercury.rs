//! Mercury — **multi-DHT** resource discovery.
//!
//! Following the paper's characterization of Mercury (Bharambe et al.,
//! SIGCOMM 2004) with Chord hubs: one DHT *hub per attribute*, every
//! physical node a member of every hub. Within hub `a`, a report
//! `⟨a, v, ip⟩` is placed by the locality-preserving hash of `v`, so the
//! hub is a value-ordered ring and a range query is a lookup plus a
//! successor walk across the hub — system-wide, since the hub contains
//! all `n` nodes (`1 + n/4` visited on average, Theorem 4.9).
//!
//! The price is structure maintenance: each physical node keeps
//! `m × O(log n)` routing links (Theorem 4.1 — the `m`-fold overhead
//! Figure 3(a) plots). The reward is the most balanced directory
//! distribution of all four systems (Theorem 4.5).

use crate::host::ChordHost;
use dht_core::{
    route_stats_cached, route_with_retry, sub_msg_id, walk_msg_id, BuildMode, DhtError,
    FaultAccount, FaultPlan, LoadDist, LocalityHash, LookupTally, NodeIdx, Overlay, RouteCache,
};
use grid_resource::{
    discovery::join_owners, AttrId, AttributeSpace, FaultyOutcome, PieceKey, Query, QueryOutcome,
    ResourceDiscovery, ResourceInfo, SelectivityEstimator, ValueTarget,
};
use rand::rngs::SmallRng;

/// Construction parameters for [`Mercury`].
#[derive(Debug, Clone, Copy)]
pub struct MercuryConfig {
    /// Experiment seed (each hub derives its own stream from it).
    pub seed: u64,
}

impl Default for MercuryConfig {
    fn default() -> Self {
        Self { seed: 0x4E6C }
    }
}

/// The Mercury baseline system: one Chord hub per attribute.
#[derive(Clone)]
pub struct Mercury {
    hubs: Vec<ChordHost>,
    lph: LocalityHash,
    /// Physical node -> arena index, identical in every hub by
    /// construction (hubs are built and churned in lock-step).
    phys_node: Vec<Option<NodeIdx>>,
    mode: BuildMode,
    /// Per-attribute value histograms for the adaptive query plan.
    sel: SelectivityEstimator,
}

impl Mercury {
    /// Build a Mercury system of `n` physical nodes with one hub per
    /// attribute in `space`.
    ///
    /// Memory scales with `m × n`; the paper's 200×2048 setup is a few
    /// hundred MB. For outlink measurements at larger `n`, build hubs one
    /// at a time instead (see `sim`'s Figure 3(a) harness).
    pub fn new(n: usize, space: &AttributeSpace, cfg: MercuryConfig) -> Self {
        Self::new_with_mode(n, space, cfg, BuildMode::Bulk)
    }

    /// Build with an explicit construction mode (overlay assembly and
    /// report placement; both modes are byte-identical, see [`BuildMode`]).
    pub fn new_with_mode(
        n: usize,
        space: &AttributeSpace,
        cfg: MercuryConfig,
        mode: BuildMode,
    ) -> Self {
        let hubs = (0..space.len())
            .map(|h| {
                ChordHost::build_with_mode(
                    n,
                    cfg.seed ^ (h as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    mode,
                )
            })
            .collect();
        let lph = space.lph(0);
        Self {
            hubs,
            lph,
            phys_node: (0..n).map(|i| Some(NodeIdx(i))).collect(),
            mode,
            sel: SelectivityEstimator::new(space),
        }
    }

    /// Number of hubs (`m`).
    pub fn num_hubs(&self) -> usize {
        self.hubs.len()
    }

    /// The value key within a hub.
    pub fn value_key(&self, value: f64) -> u64 {
        self.lph.hash(value)
    }

    /// Borrow one hub (read-only).
    pub fn hub(&self, attr: AttrId) -> &ChordHost {
        &self.hubs[attr.0 as usize]
    }

    fn node_of(&self, phys: usize) -> Result<NodeIdx, DhtError> {
        self.phys_node.get(phys).copied().flatten().ok_or(DhtError::NodeNotFound { index: phys })
    }
}

impl ResourceDiscovery for Mercury {
    fn clone_box(&self) -> Box<dyn ResourceDiscovery + Send + Sync> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Mercury"
    }

    fn num_physical(&self) -> usize {
        self.phys_node.iter().filter(|n| n.is_some()).count()
    }

    fn is_live(&self, phys: usize) -> bool {
        self.phys_node.get(phys).copied().flatten().is_some()
    }

    fn place_all(&mut self, reports: &[ResourceInfo]) {
        for hub in &mut self.hubs {
            hub.clear();
        }
        self.sel.rebuild(reports);
        match self.mode {
            BuildMode::Bulk => {
                // Group reports per hub with one stable sort, then batch
                // each hub's slice through the bulk store path. Stability
                // preserves the per-hub arrival order of the sequential
                // loop, so the resulting directories are byte-identical.
                let mut by_hub: Vec<ResourceInfo> = reports.to_vec();
                by_hub.sort_by_key(|r| r.attr.0);
                let mut rest = by_hub.as_slice();
                while let Some(&head) = rest.first() {
                    let run = rest.iter().take_while(|r| r.attr == head.attr).count();
                    let items: Vec<(u64, ResourceInfo)> =
                        rest[..run].iter().map(|&r| (self.lph.hash(r.value), r)).collect();
                    self.hubs[head.attr.0 as usize].store_all_at_owners(items);
                    rest = &rest[run..];
                }
            }
            BuildMode::Incremental => {
                for &r in reports {
                    let key = self.lph.hash(r.value);
                    let _ = self.hubs[r.attr.0 as usize].store_at_owner(key, r);
                }
            }
        }
    }

    fn register(&mut self, info: ResourceInfo) -> Result<LookupTally, DhtError> {
        let from = self.node_of(info.owner)?;
        let key = self.lph.hash(info.value);
        let route = self.hubs[info.attr.0 as usize].store_routed(from, key, info)?;
        self.sel.record(&info);
        Ok(LookupTally { hops: route.hops, lookups: 1, visited: 1, matches: 0 })
    }

    fn selectivity(&self) -> Option<&SelectivityEstimator> {
        Some(&self.sel)
    }

    fn query_from(&self, phys: usize, q: &Query) -> Result<QueryOutcome, DhtError> {
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub = Vec::with_capacity(q.subs.len());
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        // One probe-list scratch serves every sub-query of this query.
        let mut walk: Vec<NodeIdx> = Vec::new();
        for sub in &q.subs {
            let hub = &self.hubs[sub.attr.0 as usize];
            let (lo, hi) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => (low, Some(high)),
            };
            let route = hub.net().route_stats(from, self.value_key(lo))?;
            tally.lookups += 1;
            tally.hops += route.hops;
            walk.clear();
            match hi {
                None => walk.push(route.terminal),
                Some(h) => hub.walk_range_into(
                    route.terminal,
                    self.value_key(lo),
                    self.value_key(h),
                    &mut walk,
                ),
            }
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                hub.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn query_from_cached(
        &self,
        phys: usize,
        q: &Query,
        cache: &mut RouteCache,
    ) -> Result<QueryOutcome, DhtError> {
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub = Vec::with_capacity(q.subs.len());
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        let mut walk: Vec<NodeIdx> = Vec::new();
        for sub in &q.subs {
            let hub = &self.hubs[sub.attr.0 as usize];
            // Hubs are independent rings sharing one cache: the hub index
            // salts every entry so equal (from, key) pairs never alias.
            let salt = u64::from(sub.attr.0);
            let (lo, hi) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => (low, Some(high)),
            };
            let route = route_stats_cached(hub.net(), from, self.value_key(lo), salt, cache)?;
            tally.lookups += 1;
            tally.hops += route.hops;
            walk.clear();
            match hi {
                None => walk.push(route.terminal),
                Some(h) => hub.walk_range_cached_into(
                    route.terminal,
                    self.value_key(lo),
                    self.value_key(h),
                    salt,
                    cache,
                    &mut walk,
                ),
            }
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                hub.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn query_from_faulty(
        &self,
        phys: usize,
        q: &Query,
        plan: &FaultPlan,
        msg_seed: u64,
    ) -> Result<FaultyOutcome, DhtError> {
        if plan.is_inert() {
            return Ok(FaultyOutcome::complete(self.query_from(phys, q)?, q.arity()));
        }
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut acct = FaultAccount::default();
        let mut per_sub = Vec::new();
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        let mut walk: Vec<NodeIdx> = Vec::new();
        let mut subs_resolved = 0usize;
        let mut subs_answered = 0usize;
        for (i, sub) in q.subs.iter().enumerate() {
            if tally.hops >= plan.hop_budget() {
                continue;
            }
            let sub_msg = sub_msg_id(msg_seed, i);
            let hub = &self.hubs[sub.attr.0 as usize];
            let (lo, hi) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => (low, Some(high)),
            };
            tally.lookups += 1;
            let route = match route_with_retry(
                hub.net(),
                from,
                self.value_key(lo),
                plan,
                sub_msg,
                &mut acct,
            ) {
                Ok(r) => r,
                Err(DhtError::MessageDropped { hops } | DhtError::DeadHop { hops }) => {
                    tally.hops += hops;
                    continue;
                }
                Err(e) => return Err(e),
            };
            tally.hops += route.hops;
            subs_answered += 1;
            walk.clear();
            let truncated = match hi {
                None => {
                    walk.push(route.terminal);
                    false
                }
                Some(h) => hub.walk_range_faulty_into(
                    route.terminal,
                    self.value_key(lo),
                    self.value_key(h),
                    plan,
                    walk_msg_id(sub_msg),
                    &mut acct,
                    &mut walk,
                ),
            };
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                hub.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            if !truncated {
                subs_resolved += 1;
            }
            per_sub.push(owners);
        }
        let outcome = QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all };
        Ok(FaultyOutcome {
            outcome,
            subs_resolved,
            subs_answered,
            subs_total: q.arity(),
            retries: acct.retries,
            dropped_msgs: acct.dropped_msgs,
        })
    }

    fn directory_loads(&self) -> LoadDist {
        // Per *physical* node: sum of its directories across all hubs.
        let mut per_phys: Vec<f64> = Vec::new();
        for (phys, node) in self.phys_node.iter().enumerate() {
            let Some(idx) = node else { continue };
            let total: usize = self.hubs.iter().map(|h| h.load_of(*idx)).sum();
            per_phys.push(total as f64);
            let _ = phys;
        }
        LoadDist::new(per_phys)
    }

    fn total_pieces(&self) -> usize {
        self.hubs.iter().map(ChordHost::total_pieces).sum()
    }

    fn outlinks_per_node(&self) -> LoadDist {
        // Per physical node: routing state summed over all m hubs.
        let mut per_phys: Vec<f64> = Vec::new();
        for node in self.phys_node.iter() {
            let Some(idx) = node else { continue };
            let total: usize = self.hubs.iter().map(|h| h.net().outlinks(*idx).unwrap_or(0)).sum();
            per_phys.push(total as f64);
        }
        LoadDist::new(per_phys)
    }

    fn join_physical(&mut self, _rng: &mut SmallRng) -> Result<usize, DhtError> {
        let boot = self.phys_node.iter().copied().flatten().next().ok_or(DhtError::EmptyOverlay)?;
        let mut new_idx: Option<NodeIdx> = None;
        let mut joined_hubs = 0usize;
        let mut failure: Option<DhtError> = None;
        for hub in &mut self.hubs {
            match hub.net_mut().join(boot) {
                Ok(idx) => {
                    hub.sync_arena();
                    match new_idx {
                        None => new_idx = Some(idx),
                        Some(prev) => debug_assert_eq!(prev, idx, "hubs must stay in lock-step"),
                    }
                    joined_hubs += 1;
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            // Roll the partial join back so hub arenas stay in lock-step:
            // tombstone the new node where it joined, and reserve a dead
            // slot where it did not, so arena lengths stay equal.
            if let Some(idx) = new_idx {
                for (h, hub) in self.hubs.iter_mut().enumerate() {
                    if h < joined_hubs {
                        let _ = hub.net_mut().fail(idx);
                    } else {
                        let reserved = hub.net_mut().reserve_tombstone();
                        debug_assert_eq!(reserved, idx);
                    }
                    hub.sync_arena();
                }
            }
            return Err(e);
        }
        let idx = new_idx.ok_or(DhtError::EmptyOverlay)?;
        let phys = self.phys_node.len();
        self.phys_node.push(Some(idx));
        Ok(phys)
    }

    fn leave_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        for hub in &mut self.hubs {
            let handoff = hub.drain_directory(node);
            hub.clear_replicas_of(node);
            hub.net_mut().leave(node)?;
            for info in handoff {
                let key = self.lph.hash(info.value);
                let _ = hub.store_at_owner(key, info);
            }
        }
        self.phys_node[phys] = None;
        Ok(())
    }

    fn fail_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        for hub in &mut self.hubs {
            let _lost = hub.drain_directory(node);
            hub.clear_replicas_of(node);
            hub.net_mut().fail(node)?;
        }
        self.phys_node[phys] = None;
        Ok(())
    }

    fn stabilize(&mut self) {
        // Perfect-repair maintenance tick; protocol-level repair is
        // exercised in the chord crate's tests. With m hubs the protocol
        // path would route m·n·64 lookups per tick — the simulator's
        // ground-truth rebuild keeps churn experiments tractable. Replica
        // repair then runs hub by hub: promotions reroute within the hub
        // by the piece's value key.
        let lph = &self.lph;
        for hub in &mut self.hubs {
            hub.net_mut().rebuild_all_state();
            hub.repair_replicas_with(&mut |info, keys| {
                keys.push(lph.hash(info.value));
            });
        }
    }

    fn set_replication(&mut self, k: usize) {
        let lph = &self.lph;
        for hub in &mut self.hubs {
            hub.set_replication_with(k, &mut |info, keys| {
                keys.push(lph.hash(info.value));
            });
        }
    }

    fn replication(&self) -> usize {
        self.hubs.first().map_or(1, ChordHost::replication)
    }

    fn repair_stats(&self) -> dht_core::RepairStats {
        let mut total = dht_core::RepairStats::new();
        for hub in &self.hubs {
            total.merge(&hub.repair_stats());
        }
        total
    }

    fn surviving_pieces_into(&self, out: &mut Vec<PieceKey>) {
        // A piece survives if any hub still reaches it; duplicates across
        // hubs collapse when the caller canonicalizes.
        for hub in &self.hubs {
            hub.surviving_pieces_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_resource::{QueryMix, Workload, WorkloadConfig};
    use rand::SeedableRng;

    fn setup() -> (Workload, Mercury) {
        let mut rng = SmallRng::seed_from_u64(0x4E);
        let cfg = WorkloadConfig {
            num_attrs: 12,
            values_per_attr: 80,
            num_nodes: 128,
            ..Default::default()
        };
        let w = Workload::generate(cfg, &mut rng).unwrap();
        let mut m = Mercury::new(128, &w.space, MercuryConfig::default());
        m.place_all(&w.reports);
        (w, m)
    }

    fn brute(w: &Workload, attr: AttrId, t: &ValueTarget) -> Vec<usize> {
        let mut v: Vec<usize> = w
            .reports
            .iter()
            .filter(|r| r.attr == attr && t.matches(r.value))
            .map(|r| r.owner)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn one_hub_per_attribute() {
        let (w, m) = setup();
        assert_eq!(m.num_hubs(), w.space.len());
        // every hub holds exactly the reports of its attribute
        for attr in w.space.ids() {
            assert_eq!(m.hub(attr).total_pieces(), 80);
        }
    }

    #[test]
    fn queries_are_complete() {
        let (w, m) = setup();
        let mut rng = SmallRng::seed_from_u64(3);
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            for _ in 0..60 {
                let q = w.random_query(3, mix, &mut rng);
                let out = m.query_from(5, &q).unwrap();
                let expected =
                    join_owners(q.subs.iter().map(|sq| brute(&w, sq.attr, &sq.target)).collect());
                let mut got = out.owners.clone();
                got.sort_unstable();
                assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn point_query_is_single_lookup_per_attr() {
        let (w, m) = setup();
        let mut rng = SmallRng::seed_from_u64(4);
        let q = w.random_query(5, QueryMix::NonRange, &mut rng);
        let out = m.query_from(1, &q).unwrap();
        assert_eq!(out.tally.lookups, 5);
        assert_eq!(out.tally.visited, 5);
    }

    #[test]
    fn range_walk_is_system_wide() {
        let (_, m) = setup();
        let q = Query::new(vec![grid_resource::SubQuery {
            attr: AttrId(0),
            target: ValueTarget::Range { low: 1.0, high: 40.0 },
        }])
        .unwrap();
        let out = m.query_from(0, &q).unwrap();
        // ~half the domain -> ~half of the 128-node hub
        assert!(out.tally.visited > 32, "visited {}", out.tally.visited);
    }

    #[test]
    fn outlinks_scale_with_hub_count() {
        let (_, m) = setup();
        let links = m.outlinks_per_node();
        // each hub contributes ~log2(128)=7 distinct links
        assert!(links.mean() > 12.0 * 5.0, "mean outlinks {}", links.mean());
    }

    #[test]
    fn directory_loads_are_balanced() {
        let (w, m) = setup();
        let loads = m.directory_loads();
        assert_eq!(loads.total() as usize, w.reports.len());
        // Theorem 4.5/4.6: Mercury spreads info most evenly — almost every
        // node stores something.
        let loaded = loads.loads().iter().filter(|&&l| l > 0.0).count();
        assert!(loaded > 100, "only {loaded} of 128 nodes loaded");
    }

    #[test]
    fn inert_fault_plan_query_is_identical_to_plain() {
        let (w, m) = setup();
        let plan = FaultPlan::new(3, 0.0, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        for i in 0..30u64 {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let plain = m.query_from(1, &q).unwrap();
            let faulty = m.query_from_faulty(1, &q, &plan, i).unwrap();
            assert_eq!(faulty.outcome, plain);
            assert!(faulty.is_complete());
        }
    }

    #[test]
    fn faulty_queries_are_deterministic_and_degrade_under_loss() {
        let (w, m) = setup();
        let plan = FaultPlan::new(7, 0.2, 0.05).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut degraded = 0usize;
        for i in 0..60u64 {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let a = m.query_from_faulty(2, &q, &plan, i).unwrap();
            let b = m.query_from_faulty(2, &q, &plan, i).unwrap();
            assert_eq!(a, b);
            if !a.is_complete() {
                degraded += 1;
            }
        }
        assert!(degraded > 0, "20% loss should degrade some queries");
    }

    #[test]
    fn cached_query_is_identical_to_plain() {
        let (w, mut m) = setup();
        let mut cache = dht_core::RouteCache::new();
        let mut rng = SmallRng::seed_from_u64(0xCA);
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            let queries: Vec<_> = (0..50).map(|_| w.random_query(3, mix, &mut rng)).collect();
            // Two passes over the same stream: the second must answer its
            // lookups from memory and still match the plain path exactly.
            for pass in 0..2 {
                for (i, q) in queries.iter().enumerate() {
                    let plain = m.query_from(i % 128, q).unwrap();
                    let cached = m.query_from_cached(i % 128, q, &mut cache).unwrap();
                    assert_eq!(cached, plain, "{mix:?} query {i} pass {pass}");
                }
            }
        }
        assert!(cache.hits() > 0, "replayed hub lookups must hit");
        // Churn every hub in lock-step: stale entries must miss and the
        // cached path must keep matching the repaired hubs.
        m.leave_physical(3).unwrap();
        m.stabilize();
        m.place_all(&w.reports);
        for i in 0..20usize {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let plain = m.query_from(i % 120 + 4, &q).unwrap();
            let cached = m.query_from_cached(i % 120 + 4, &q, &mut cache).unwrap();
            assert_eq!(cached, plain, "post-churn query {i}");
        }
    }

    #[test]
    fn churn_keeps_hubs_in_lockstep() {
        let (w, mut m) = setup();
        let mut rng = SmallRng::seed_from_u64(5);
        let p = m.join_physical(&mut rng).unwrap();
        assert!(m.is_live(p));
        assert_eq!(m.num_physical(), 129);
        m.leave_physical(3).unwrap();
        assert!(!m.is_live(3));
        m.stabilize();
        m.place_all(&w.reports);
        // queries still complete
        let q = w.random_query(2, QueryMix::Range, &mut rng);
        let out = m.query_from(p, &q).unwrap();
        let expected =
            join_owners(q.subs.iter().map(|sq| brute(&w, sq.attr, &sq.target)).collect());
        let mut got = out.owners.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
    }
}
