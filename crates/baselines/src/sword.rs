//! SWORD — single-DHT **centralized** resource discovery.
//!
//! Following the paper's characterization of SWORD (Oppenheimer et al.,
//! UCB TR 2004) with Chord substituted for Bamboo: the DHT key of a report
//! is `H(attribute)`, so *all* information of one attribute pools on a
//! single directory node. A query — point or range — is one lookup per
//! attribute and stops at the root: no probing, the best possible search
//! cost (`m` visited nodes, Theorem 4.9) at the price of the worst load
//! concentration (Theorem 4.4: `d×` worse than LORM on the percentiles).

use crate::host::ChordHost;
use dht_core::{
    route_stats_cached, route_with_retry, sub_msg_id, BuildMode, ConsistentHash, DhtError,
    FaultAccount, FaultPlan, LoadDist, LookupTally, NodeIdx, Overlay, RouteCache,
};
use grid_resource::{
    discovery::join_owners, AttrId, AttributeSpace, FaultyOutcome, PieceKey, Query, QueryOutcome,
    ResourceDiscovery, ResourceInfo, SelectivityEstimator,
};
use rand::rngs::SmallRng;

/// Construction parameters for [`Sword`].
#[derive(Debug, Clone, Copy)]
pub struct SwordConfig {
    /// Experiment seed.
    pub seed: u64,
}

impl Default for SwordConfig {
    fn default() -> Self {
        Self { seed: 0x5708D }
    }
}

/// The SWORD baseline system.
#[derive(Clone)]
pub struct Sword {
    host: ChordHost,
    /// `H(attribute name)`, cached per attribute.
    attr_keys: Vec<u64>,
    phys_node: Vec<Option<NodeIdx>>,
    mode: BuildMode,
    /// Per-attribute value histograms for the adaptive query plan.
    sel: SelectivityEstimator,
}

impl Sword {
    /// Build a SWORD system of `n` physical nodes.
    pub fn new(n: usize, space: &AttributeSpace, cfg: SwordConfig) -> Self {
        Self::new_with_mode(n, space, cfg, BuildMode::Bulk)
    }

    /// Build with an explicit construction mode (overlay assembly and
    /// report placement; both modes are byte-identical, see [`BuildMode`]).
    pub fn new_with_mode(
        n: usize,
        space: &AttributeSpace,
        cfg: SwordConfig,
        mode: BuildMode,
    ) -> Self {
        let host = ChordHost::build_with_mode(n, cfg.seed, mode);
        let hash = ConsistentHash::new(cfg.seed);
        let attr_keys = space.ids().map(|a| hash.hash_str(space.name(a))).collect();
        Self {
            host,
            attr_keys,
            phys_node: (0..n).map(|i| Some(NodeIdx(i))).collect(),
            mode,
            sel: SelectivityEstimator::new(space),
        }
    }

    /// The DHT key of an attribute.
    pub fn key_of(&self, attr: AttrId) -> u64 {
        self.attr_keys[attr.0 as usize]
    }

    /// The underlying host (read-only, for tests and inspection).
    pub fn host(&self) -> &ChordHost {
        &self.host
    }

    fn node_of(&self, phys: usize) -> Result<NodeIdx, DhtError> {
        self.phys_node.get(phys).copied().flatten().ok_or(DhtError::NodeNotFound { index: phys })
    }
}

impl ResourceDiscovery for Sword {
    fn clone_box(&self) -> Box<dyn ResourceDiscovery + Send + Sync> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "SWORD"
    }

    fn num_physical(&self) -> usize {
        self.phys_node.iter().filter(|n| n.is_some()).count()
    }

    fn is_live(&self, phys: usize) -> bool {
        self.phys_node.get(phys).copied().flatten().is_some()
    }

    fn place_all(&mut self, reports: &[ResourceInfo]) {
        self.host.clear();
        self.sel.rebuild(reports);
        match self.mode {
            BuildMode::Bulk => {
                let items: Vec<(u64, ResourceInfo)> =
                    reports.iter().map(|&r| (self.key_of(r.attr), r)).collect();
                self.host.store_all_at_owners(items);
            }
            BuildMode::Incremental => {
                for &r in reports {
                    let _ = self.host.store_at_owner(self.key_of(r.attr), r);
                }
            }
        }
    }

    fn register(&mut self, info: ResourceInfo) -> Result<LookupTally, DhtError> {
        let from = self.node_of(info.owner)?;
        let key = self.key_of(info.attr);
        let route = self.host.store_routed(from, key, info)?;
        self.sel.record(&info);
        Ok(LookupTally { hops: route.hops, lookups: 1, visited: 1, matches: 0 })
    }

    fn selectivity(&self) -> Option<&SelectivityEstimator> {
        Some(&self.sel)
    }

    fn query_from(&self, phys: usize, q: &Query) -> Result<QueryOutcome, DhtError> {
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub = Vec::with_capacity(q.subs.len());
        let mut probed_all = Vec::with_capacity(q.subs.len());
        for sub in &q.subs {
            let route = self.host.net().route_stats(from, self.key_of(sub.attr))?;
            tally.lookups += 1;
            tally.hops += route.hops;
            tally.visited += 1; // the root holds everything; no probing
            let owners = self.host.matches_in(route.terminal, sub.attr, &sub.target);
            tally.matches += owners.len();
            probed_all.push(route.terminal);
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn query_from_cached(
        &self,
        phys: usize,
        q: &Query,
        cache: &mut RouteCache,
    ) -> Result<QueryOutcome, DhtError> {
        // SWORD stops at the attribute root: the whole query cost is its
        // lookups, so caching routes alone covers the entire path.
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub = Vec::with_capacity(q.subs.len());
        let mut probed_all = Vec::with_capacity(q.subs.len());
        for sub in &q.subs {
            let route = route_stats_cached(self.host.net(), from, self.key_of(sub.attr), 0, cache)?;
            tally.lookups += 1;
            tally.hops += route.hops;
            tally.visited += 1; // the root holds everything; no probing
            let owners = self.host.matches_in(route.terminal, sub.attr, &sub.target);
            tally.matches += owners.len();
            probed_all.push(route.terminal);
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn query_from_faulty(
        &self,
        phys: usize,
        q: &Query,
        plan: &FaultPlan,
        msg_seed: u64,
    ) -> Result<FaultyOutcome, DhtError> {
        if plan.is_inert() {
            return Ok(FaultyOutcome::complete(self.query_from(phys, q)?, q.arity()));
        }
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut acct = FaultAccount::default();
        let mut per_sub = Vec::new();
        let mut probed_all = Vec::new();
        let mut subs_resolved = 0usize;
        for (i, sub) in q.subs.iter().enumerate() {
            if tally.hops >= plan.hop_budget() {
                continue;
            }
            tally.lookups += 1;
            let sub_msg = sub_msg_id(msg_seed, i);
            let route = match route_with_retry(
                self.host.net(),
                from,
                self.key_of(sub.attr),
                plan,
                sub_msg,
                &mut acct,
            ) {
                Ok(r) => r,
                Err(DhtError::MessageDropped { hops } | DhtError::DeadHop { hops }) => {
                    tally.hops += hops;
                    continue;
                }
                Err(e) => return Err(e),
            };
            tally.hops += route.hops;
            tally.visited += 1;
            let owners = self.host.matches_in(route.terminal, sub.attr, &sub.target);
            tally.matches += owners.len();
            probed_all.push(route.terminal);
            per_sub.push(owners);
            // SWORD stops at the root: a sub-query that reached it is
            // fully resolved, there is no walk to truncate.
            subs_resolved += 1;
        }
        let outcome = QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all };
        Ok(FaultyOutcome {
            outcome,
            subs_resolved,
            subs_answered: subs_resolved,
            subs_total: q.arity(),
            retries: acct.retries,
            dropped_msgs: acct.dropped_msgs,
        })
    }

    fn directory_loads(&self) -> LoadDist {
        LoadDist::from_counts(&self.host.loads())
    }

    fn total_pieces(&self) -> usize {
        self.host.total_pieces()
    }

    fn outlinks_per_node(&self) -> LoadDist {
        LoadDist::from_counts(&self.host.outlinks())
    }

    fn join_physical(&mut self, _rng: &mut SmallRng) -> Result<usize, DhtError> {
        let boot = self.phys_node.iter().copied().flatten().next().ok_or(DhtError::EmptyOverlay)?;
        let idx = self.host.net_mut().join(boot)?;
        self.host.sync_arena();
        let phys = self.phys_node.len();
        self.phys_node.push(Some(idx));
        Ok(phys)
    }

    fn leave_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        let handoff = self.host.drain_directory(node);
        self.host.clear_replicas_of(node);
        self.host.net_mut().leave(node)?;
        self.phys_node[phys] = None;
        for info in handoff {
            let _ = self.host.store_at_owner(self.key_of(info.attr), info);
        }
        Ok(())
    }

    fn fail_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        let _lost = self.host.drain_directory(node);
        self.host.clear_replicas_of(node);
        self.host.net_mut().fail(node)?;
        self.phys_node[phys] = None;
        Ok(())
    }

    fn stabilize(&mut self) {
        // The simulator's maintenance tick: perfect repair from ground
        // truth (the protocol-level stabilize/fix_fingers path is
        // exercised by the chord crate's own tests), then replica repair
        // over the freshly repaired successor lists.
        self.host.net_mut().rebuild_all_state();
        let attr_keys = &self.attr_keys;
        self.host.repair_replicas_with(&mut |info, keys| {
            keys.push(attr_keys[info.attr.0 as usize]);
        });
    }

    fn set_replication(&mut self, k: usize) {
        let attr_keys = &self.attr_keys;
        self.host.set_replication_with(k, &mut |info, keys| {
            keys.push(attr_keys[info.attr.0 as usize]);
        });
    }

    fn replication(&self) -> usize {
        self.host.replication()
    }

    fn repair_stats(&self) -> dht_core::RepairStats {
        self.host.repair_stats()
    }

    fn surviving_pieces_into(&self, out: &mut Vec<PieceKey>) {
        self.host.surviving_pieces_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_resource::{canonicalize_pieces, count_surviving, QueryMix, Workload, WorkloadConfig};
    use rand::{Rng, SeedableRng};

    fn setup() -> (Workload, Sword) {
        let mut rng = SmallRng::seed_from_u64(0x51);
        let cfg = WorkloadConfig {
            num_attrs: 25,
            values_per_attr: 80,
            num_nodes: 256,
            ..Default::default()
        };
        let w = Workload::generate(cfg, &mut rng).unwrap();
        let mut s = Sword::new(256, &w.space, SwordConfig::default());
        s.place_all(&w.reports);
        (w, s)
    }

    fn brute(w: &Workload, attr: AttrId, t: &grid_resource::ValueTarget) -> Vec<usize> {
        let mut v: Vec<usize> = w
            .reports
            .iter()
            .filter(|r| r.attr == attr && t.matches(r.value))
            .map(|r| r.owner)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn all_info_of_attr_on_one_node() {
        let (w, s) = setup();
        for attr in w.space.ids() {
            let root = s.host.net().owner_of(s.key_of(attr)).unwrap();
            let here = s.host.matches_in(
                root,
                attr,
                &grid_resource::ValueTarget::Range { low: 0.0, high: 1e9 },
            );
            assert_eq!(here.len(), 80, "attribute {attr} not pooled on its root");
        }
    }

    #[test]
    fn range_query_visits_exactly_one_node_per_attr() {
        let (w, s) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        for arity in [1usize, 5, 10] {
            let q = w.random_query(arity, QueryMix::Range, &mut rng);
            let out = s.query_from(0, &q).unwrap();
            assert_eq!(out.tally.visited, arity, "SWORD never probes beyond the root");
        }
    }

    #[test]
    fn queries_are_complete() {
        let (w, s) = setup();
        let mut rng = SmallRng::seed_from_u64(2);
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            for _ in 0..100 {
                let q = w.random_query(2, mix, &mut rng);
                let out = s.query_from(7, &q).unwrap();
                let expected =
                    join_owners(q.subs.iter().map(|sq| brute(&w, sq.attr, &sq.target)).collect());
                let mut got = out.owners.clone();
                got.sort_unstable();
                assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn load_is_heavily_concentrated() {
        let (w, s) = setup();
        let loads = s.directory_loads();
        // only ~25 of 256 nodes hold anything
        assert_eq!(loads.total() as usize, w.reports.len());
        assert_eq!(loads.p1(), 0.0);
        assert!(loads.p99() >= 80.0, "p99 {} should reach a full attribute", loads.p99());
    }

    #[test]
    fn total_pieces_is_one_per_report() {
        let (w, s) = setup();
        assert_eq!(s.total_pieces(), w.reports.len());
    }

    #[test]
    fn cached_query_is_identical_to_plain() {
        let (w, mut s) = setup();
        let mut cache = RouteCache::new();
        let mut rng = SmallRng::seed_from_u64(0xCA);
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            for i in 0..50usize {
                let q = w.random_query(3, mix, &mut rng);
                let plain = s.query_from(i % 256, &q).unwrap();
                let cached = s.query_from_cached(i % 256, &q, &mut cache).unwrap();
                assert_eq!(cached, plain, "{mix:?} query {i}");
            }
        }
        assert!(cache.hits() > 0, "repeated attribute lookups must hit");
        s.leave_physical(3).unwrap();
        s.stabilize();
        s.place_all(&w.reports);
        for i in 0..20usize {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let plain = s.query_from(i % 250 + 4, &q).unwrap();
            let cached = s.query_from_cached(i % 250 + 4, &q, &mut cache).unwrap();
            assert_eq!(cached, plain, "post-churn query {i}");
        }
    }

    #[test]
    fn inert_fault_plan_query_is_identical_to_plain() {
        let (w, s) = setup();
        let plan = FaultPlan::new(3, 0.0, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..40u64 {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let plain = s.query_from(1, &q).unwrap();
            let faulty = s.query_from_faulty(1, &q, &plan, i).unwrap();
            assert_eq!(faulty.outcome, plain);
            assert!(faulty.is_complete());
        }
    }

    fn surviving(s: &Sword) -> Vec<PieceKey> {
        let mut out = Vec::new();
        s.surviving_pieces_into(&mut out);
        canonicalize_pieces(&mut out);
        out
    }

    #[test]
    fn k1_replication_stays_a_no_op() {
        let (_, mut s) = setup();
        let before = surviving(&s);
        s.set_replication(1);
        s.stabilize();
        assert_eq!(s.replication(), 1);
        assert_eq!(s.repair_stats().rounds(), 0, "no repair rounds at degree 1");
        assert_eq!(s.repair_stats().transfers(), 0);
        assert_eq!(surviving(&s), before);
    }

    #[test]
    fn replication_adds_copies_not_identities() {
        let (w, mut s) = setup();
        s.set_replication(3);
        assert_eq!(s.replication(), 3);
        // Replicas are extra copies of the same piece identities, not new
        // primaries: the piece census and primary count both stay put.
        let mut expected: Vec<PieceKey> = w.reports.iter().map(PieceKey::of).collect();
        canonicalize_pieces(&mut expected);
        assert_eq!(surviving(&s), expected);
        assert_eq!(s.total_pieces(), w.reports.len());
        // Seeding is free; repair has not run yet.
        assert_eq!(s.repair_stats().transfers(), 0);
    }

    #[test]
    fn single_failures_between_repairs_lose_nothing_at_k2() {
        // The durability contract: with degree 2, fewer than 2 adjacent
        // failures per repair window can never lose a replicated piece.
        let (_, mut s) = setup();
        s.set_replication(2);
        let initial = surviving(&s);
        assert!(!initial.is_empty());
        let mut rng = SmallRng::seed_from_u64(0xDEAD);
        for round in 0..12 {
            let phys = loop {
                let p = rng.gen_range(0..256);
                if s.is_live(p) {
                    break p;
                }
            };
            s.fail_physical(phys).unwrap();
            s.stabilize();
            let now = surviving(&s);
            assert_eq!(
                count_surviving(&initial, &now),
                initial.len(),
                "pieces lost in round {round}"
            );
        }
        assert!(s.repair_stats().transfers() > 0, "repair must have moved copies");
    }

    #[test]
    fn repair_survives_successor_list_exhaustion() {
        // Regression: Chord's successor list holds 4 entries. Fail the
        // current replica target of one attribute root six times — one
        // failure per repair window — so the list the replicas were first
        // placed on is exhausted and then some. Repair-on-stabilize must
        // re-replicate onto the next live successor each round, and the
        // replication degree must be fully restored at the end.
        let (w, mut s) = setup();
        s.set_replication(2);
        let initial = surviving(&s);
        let root = s.host().net().owner_of(s.key_of(AttrId(0))).unwrap();
        for round in 0..6 {
            let mut targets = Vec::new();
            s.host().net().replica_targets_into(root, 2, &mut targets).unwrap();
            let victim = targets[0];
            assert_ne!(victim, root);
            s.fail_physical(victim.0).unwrap();
            s.stabilize();
            let now = surviving(&s);
            assert_eq!(
                count_surviving(&initial, &now),
                initial.len(),
                "pieces lost in round {round}"
            );
        }
        // Degree restored: the root's *current* replica target holds a
        // copy of every piece whose attribute routes to this root.
        let mut targets = Vec::new();
        s.host().net().replica_targets_into(root, 2, &mut targets).unwrap();
        let store = s.host().replicas_of(targets[0]).unwrap();
        let mut checked = 0usize;
        for r in &w.reports {
            let key = s.key_of(r.attr);
            if s.host().net().owner_of(key).unwrap() == root {
                assert!(store.contains(root, key, r), "replica missing for {r:?}");
                checked += 1;
            }
        }
        assert!(checked > 0, "at least one attribute pool must route to the chosen root");
    }

    #[test]
    fn faulty_queries_are_deterministic_and_degrade_under_loss() {
        let (w, s) = setup();
        let plan = FaultPlan::new(7, 0.25, 0.05).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut degraded = 0usize;
        for i in 0..80u64 {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let a = s.query_from_faulty(2, &q, &plan, i).unwrap();
            let b = s.query_from_faulty(2, &q, &plan, i).unwrap();
            assert_eq!(a, b);
            // SWORD has no walk: a sub either resolves or fails outright.
            assert_eq!(a.subs_resolved, a.subs_answered);
            if !a.is_complete() {
                degraded += 1;
            }
        }
        assert!(degraded > 0, "25% loss should degrade some queries");
    }
}
