//! CompositeFlat — "LORM without the hierarchy" (our ablation system).
//!
//! Not one of the paper's comparators: this system asks whether LORM's
//! two-level Cycloid index is load-bearing, by emulating it on a *flat*
//! Chord with composite keys. The top `P` bits of a key are `H(attribute)`
//! (the "cluster" part) and the remaining bits are `ℋ(value)`, so every
//! attribute owns a contiguous `2^(64-P)` segment of the ring and a range
//! query is — as in LORM — one lookup plus a clockwise walk inside the
//! attribute's segment.
//!
//! What survives the flattening and what doesn't:
//!
//! * range-walk containment survives *statistically*: the walk covers the
//!   fraction of the attribute's segment the range spans, visiting
//!   `≈ 1 + (n/2^P)·span` nodes — with `2^P ≈ n/d` this matches LORM's
//!   `1 + d·span`;
//! * the **hard cap does not survive**: LORM's walk can never leave the
//!   d-node cluster, while a segment walk over a sparsely/unevenly
//!   populated arc can cross segment boundaries and probe nodes that hold
//!   other attributes' information;
//! * constant-degree maintenance does not survive: this is Chord, so each
//!   node keeps `O(log n)` links (between LORM's O(1) and Mercury's
//!   `m·log n`).

use crate::host::ChordHost;
use dht_core::{
    route_stats_cached, ConsistentHash, DhtError, LoadDist, LocalityHash, LookupTally, NodeIdx,
    Overlay, RouteCache,
};
use grid_resource::{
    discovery::join_owners, AttrId, AttributeSpace, PieceKey, Query, QueryOutcome,
    ResourceDiscovery, ResourceInfo, SelectivityEstimator, ValueTarget,
};
use rand::rngs::SmallRng;

/// Construction parameters for [`CompositeFlat`].
#[derive(Debug, Clone, Copy)]
pub struct CompositeConfig {
    /// Experiment seed.
    pub seed: u64,
    /// Attribute-prefix bits `P`: each attribute owns a `2^(64-P)` ring
    /// segment. With `2^P` comparable to `n/d`, segment population matches
    /// LORM's cluster size `d`.
    pub prefix_bits: u8,
}

impl Default for CompositeConfig {
    fn default() -> Self {
        Self { seed: 0xC03B, prefix_bits: 8 }
    }
}

/// The flat composite-key ablation system.
#[derive(Clone)]
pub struct CompositeFlat {
    host: ChordHost,
    /// Per-attribute segment base (`H(attr)` truncated to the prefix).
    segment_base: Vec<u64>,
    lph: LocalityHash,
    prefix_bits: u8,
    phys_node: Vec<Option<NodeIdx>>,
    /// Per-attribute value histograms for the adaptive query plan.
    sel: SelectivityEstimator,
}

impl CompositeFlat {
    /// Build a system of `n` physical nodes.
    pub fn new(n: usize, space: &AttributeSpace, cfg: CompositeConfig) -> Self {
        assert!((1..64).contains(&cfg.prefix_bits), "prefix bits must be in 1..64");
        let host = ChordHost::build(n, cfg.seed);
        let hash = ConsistentHash::new(cfg.seed);
        let shift = 64 - cfg.prefix_bits as u32;
        let segment_base =
            space.ids().map(|a| (hash.hash_str(space.name(a)) >> shift) << shift).collect();
        // values map onto the in-segment suffix
        let lph = space.lph(1u64 << shift);
        Self {
            host,
            segment_base,
            lph,
            prefix_bits: cfg.prefix_bits,
            phys_node: (0..n).map(|i| Some(NodeIdx(i))).collect(),
            sel: SelectivityEstimator::new(space),
        }
    }

    /// The composite key of an (attribute, value) pair.
    pub fn key_of(&self, attr: AttrId, value: f64) -> u64 {
        self.segment_base[attr.0 as usize] | self.lph.hash(value)
    }

    /// Attribute-prefix bits in use.
    pub fn prefix_bits(&self) -> u8 {
        self.prefix_bits
    }

    fn node_of(&self, phys: usize) -> Result<NodeIdx, DhtError> {
        self.phys_node.get(phys).copied().flatten().ok_or(DhtError::NodeNotFound { index: phys })
    }
}

impl ResourceDiscovery for CompositeFlat {
    fn clone_box(&self) -> Box<dyn ResourceDiscovery + Send + Sync> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Composite"
    }

    fn num_physical(&self) -> usize {
        self.phys_node.iter().filter(|n| n.is_some()).count()
    }

    fn is_live(&self, phys: usize) -> bool {
        self.phys_node.get(phys).copied().flatten().is_some()
    }

    fn place_all(&mut self, reports: &[ResourceInfo]) {
        self.host.clear();
        self.sel.rebuild(reports);
        for &r in reports {
            let _ = self.host.store_at_owner(self.key_of(r.attr, r.value), r);
        }
    }

    fn register(&mut self, info: ResourceInfo) -> Result<LookupTally, DhtError> {
        let from = self.node_of(info.owner)?;
        let key = self.key_of(info.attr, info.value);
        let route = self.host.store_routed(from, key, info)?;
        self.sel.record(&info);
        Ok(LookupTally { hops: route.hops, lookups: 1, visited: 1, matches: 0 })
    }

    fn selectivity(&self) -> Option<&SelectivityEstimator> {
        Some(&self.sel)
    }

    fn query_from(&self, phys: usize, q: &Query) -> Result<QueryOutcome, DhtError> {
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub = Vec::with_capacity(q.subs.len());
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        // One probe-list scratch serves every sub-query of this query.
        let mut walk: Vec<NodeIdx> = Vec::new();
        for sub in &q.subs {
            let (lo, hi) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => (low, Some(high)),
            };
            let lo_key = self.key_of(sub.attr, lo);
            let route = self.host.net().route_stats(from, lo_key)?;
            tally.lookups += 1;
            tally.hops += route.hops;
            walk.clear();
            match hi {
                None => walk.push(route.terminal),
                Some(h) => self.host.walk_range_into(
                    route.terminal,
                    lo_key,
                    self.key_of(sub.attr, h),
                    &mut walk,
                ),
            }
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                self.host.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn query_from_cached(
        &self,
        phys: usize,
        q: &Query,
        cache: &mut RouteCache,
    ) -> Result<QueryOutcome, DhtError> {
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub = Vec::with_capacity(q.subs.len());
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        let mut walk: Vec<NodeIdx> = Vec::new();
        for sub in &q.subs {
            let (lo, hi) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => (low, Some(high)),
            };
            let lo_key = self.key_of(sub.attr, lo);
            let route = route_stats_cached(self.host.net(), from, lo_key, 0, cache)?;
            tally.lookups += 1;
            tally.hops += route.hops;
            walk.clear();
            match hi {
                None => walk.push(route.terminal),
                Some(h) => self.host.walk_range_cached_into(
                    route.terminal,
                    lo_key,
                    self.key_of(sub.attr, h),
                    0,
                    cache,
                    &mut walk,
                ),
            }
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                self.host.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn directory_loads(&self) -> LoadDist {
        LoadDist::from_counts(&self.host.loads())
    }

    fn total_pieces(&self) -> usize {
        self.host.total_pieces()
    }

    fn outlinks_per_node(&self) -> LoadDist {
        LoadDist::from_counts(&self.host.outlinks())
    }

    fn join_physical(&mut self, _rng: &mut SmallRng) -> Result<usize, DhtError> {
        let boot = self.phys_node.iter().copied().flatten().next().ok_or(DhtError::EmptyOverlay)?;
        let idx = self.host.net_mut().join(boot)?;
        self.host.sync_arena();
        let phys = self.phys_node.len();
        self.phys_node.push(Some(idx));
        Ok(phys)
    }

    fn leave_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        let handoff = self.host.drain_directory(node);
        self.host.clear_replicas_of(node);
        self.host.net_mut().leave(node)?;
        self.phys_node[phys] = None;
        for info in handoff {
            let _ = self.host.store_at_owner(self.key_of(info.attr, info.value), info);
        }
        Ok(())
    }

    fn fail_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        let _lost = self.host.drain_directory(node);
        self.host.clear_replicas_of(node);
        self.host.net_mut().fail(node)?;
        self.phys_node[phys] = None;
        Ok(())
    }

    fn stabilize(&mut self) {
        self.host.net_mut().rebuild_all_state();
        let segment_base = &self.segment_base;
        let lph = &self.lph;
        self.host.repair_replicas_with(&mut |info, keys| {
            keys.push(segment_base[info.attr.0 as usize] | lph.hash(info.value));
        });
    }

    fn set_replication(&mut self, k: usize) {
        let segment_base = &self.segment_base;
        let lph = &self.lph;
        self.host.set_replication_with(k, &mut |info, keys| {
            keys.push(segment_base[info.attr.0 as usize] | lph.hash(info.value));
        });
    }

    fn replication(&self) -> usize {
        self.host.replication()
    }

    fn repair_stats(&self) -> dht_core::RepairStats {
        self.host.repair_stats()
    }

    fn surviving_pieces_into(&self, out: &mut Vec<PieceKey>) {
        self.host.surviving_pieces_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_resource::{QueryMix, Workload, WorkloadConfig};
    use rand::{Rng, SeedableRng};

    fn setup() -> (Workload, CompositeFlat) {
        let mut rng = SmallRng::seed_from_u64(0xC0);
        let cfg = WorkloadConfig {
            num_attrs: 25,
            values_per_attr: 80,
            num_nodes: 512,
            ..Default::default()
        };
        let w = Workload::generate(cfg, &mut rng).unwrap();
        let mut c = CompositeFlat::new(512, &w.space, CompositeConfig::default());
        c.place_all(&w.reports);
        (w, c)
    }

    fn brute(w: &Workload, attr: AttrId, t: &ValueTarget) -> Vec<usize> {
        let mut v: Vec<usize> = w
            .reports
            .iter()
            .filter(|r| r.attr == attr && t.matches(r.value))
            .map(|r| r.owner)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn composite_keys_preserve_value_order_within_attribute() {
        let (w, c) = setup();
        for attr in w.space.ids().take(5) {
            assert!(c.key_of(attr, 1.0) < c.key_of(attr, 40.0));
            assert!(c.key_of(attr, 40.0) < c.key_of(attr, 80.0));
            // and the whole segment shares the attribute prefix
            let shift = 64 - c.prefix_bits() as u32;
            assert_eq!(c.key_of(attr, 1.0) >> shift, c.key_of(attr, 80.0) >> shift);
        }
    }

    #[test]
    fn queries_are_complete() {
        let (w, c) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            for _ in 0..80 {
                let q = w.random_query(2, mix, &mut rng);
                let out = c.query_from(rng.gen_range(0..512), &q).unwrap();
                let expected =
                    join_owners(q.subs.iter().map(|sq| brute(&w, sq.attr, &sq.target)).collect());
                let mut got = out.owners.clone();
                got.sort_unstable();
                assert_eq!(got, expected, "{mix:?}");
            }
        }
    }

    #[test]
    fn cached_query_is_identical_to_plain() {
        let (w, c) = setup();
        let mut cache = RouteCache::new();
        let mut rng = SmallRng::seed_from_u64(0xCA);
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            let queries: Vec<_> = (0..50).map(|_| w.random_query(3, mix, &mut rng)).collect();
            for pass in 0..2 {
                for (i, q) in queries.iter().enumerate() {
                    let plain = c.query_from(i % 512, q).unwrap();
                    let cached = c.query_from_cached(i % 512, q, &mut cache).unwrap();
                    assert_eq!(cached, plain, "{mix:?} query {i} pass {pass}");
                }
            }
        }
        assert!(cache.hits() > 0, "replayed segment lookups must hit");
    }

    #[test]
    fn range_walk_stays_segment_scale_not_system_scale() {
        // The decisive comparison: segment walks visit ~n/2^P-scale node
        // counts (like LORM's cluster), not Mercury's n/4.
        let (w, c) = setup();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut total = 0usize;
        let queries = 300;
        for _ in 0..queries {
            let q = w.random_query(1, QueryMix::Range, &mut rng);
            total += c.query_from(rng.gen_range(0..512), &q).unwrap().tally.visited;
        }
        let avg = total as f64 / queries as f64;
        // n/2^P = 512/256 = 2 nodes per segment: expect ~1 + 2·E[span] ≈ 2
        assert!(avg < 6.0, "segment walks must stay small: avg {avg}");
        assert!(avg < 512.0 / 8.0, "and far below system-wide probing");
    }

    #[test]
    fn no_hard_cap_walks_can_cross_segments() {
        // Unlike LORM's d-bounded cluster walk, the segment walk scales
        // with segment population: with few prefix bits the segments are
        // fat and a full-domain range probes tens of nodes — no hard cap.
        let mut rng = SmallRng::seed_from_u64(0xC1);
        let wl_cfg = WorkloadConfig {
            num_attrs: 25,
            values_per_attr: 80,
            num_nodes: 512,
            ..Default::default()
        };
        let w = Workload::generate(wl_cfg, &mut rng).unwrap();
        let mut c = CompositeFlat::new(512, &w.space, CompositeConfig { prefix_bits: 4, seed: 7 });
        c.place_all(&w.reports);
        let (dmin, dmax) = w.space.domain();
        let mut max_visited = 0usize;
        for attr in w.space.ids() {
            let q = Query::new(vec![grid_resource::SubQuery {
                attr,
                target: ValueTarget::Range { low: dmin, high: dmax },
            }])
            .unwrap();
            let out = c.query_from(0, &q).unwrap();
            max_visited = max_visited.max(out.tally.visited);
        }
        // still complete, but some walk exceeded LORM's d = 8 hard cap
        assert!(max_visited > 8, "some segment walk should exceed a LORM cluster");
    }

    #[test]
    fn maintenance_state_is_logarithmic_not_constant() {
        let (_, c) = setup();
        let links = c.outlinks_per_node();
        // log2(512) = 9: clearly above LORM's ~6 constant links
        assert!(links.mean() > 8.0, "Chord-scale state expected: {}", links.mean());
    }
}
