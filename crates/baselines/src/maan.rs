//! MAAN — single-DHT **decentralized** resource discovery.
//!
//! Following the paper's characterization of MAAN (Cai et al., *Journal of
//! Grid Computing* 2004): one flat Chord, but every report is registered
//! **twice** —
//!
//! * an *attribute registration* under `H(attribute)` (all attribute
//!   registrations of one attribute pool on one node), and
//! * a *value registration* under the global locality-preserving hash of
//!   the value (value registrations of all attributes interleave around
//!   the whole ring).
//!
//! Hence MAAN stores twice the information (Theorem 4.2), a directory node
//! carries `k + m·k/n` pieces (Theorem 4.3), every sub-query needs **two**
//! lookups (Theorems 4.7/4.8), and a range sub-query walks the value ring
//! system-wide: `2 + n/4` visited nodes on average (Theorem 4.9).

use crate::host::ChordHost;
use dht_core::{
    hashing::splitmix64, route_stats_cached, route_with_retry, sub_msg_id, walk_msg_id, BuildMode,
    ConsistentHash, DhtError, FaultAccount, FaultPlan, LoadDist, LocalityHash, LookupTally,
    NodeIdx, Overlay, RouteCache,
};
use grid_resource::{
    discovery::join_owners, AttrId, AttributeSpace, FaultyOutcome, PieceKey, Query, QueryOutcome,
    ResourceDiscovery, ResourceInfo, SelectivityEstimator, ValueTarget,
};
use rand::rngs::SmallRng;

/// Construction parameters for [`Maan`].
#[derive(Debug, Clone, Copy)]
pub struct MaanConfig {
    /// Experiment seed.
    pub seed: u64,
}

impl Default for MaanConfig {
    fn default() -> Self {
        Self { seed: 0x3AA1 }
    }
}

/// The MAAN baseline system.
#[derive(Clone)]
pub struct Maan {
    host: ChordHost,
    attr_keys: Vec<u64>,
    lph: LocalityHash,
    phys_node: Vec<Option<NodeIdx>>,
    mode: BuildMode,
    /// Per-attribute value histograms for the adaptive query plan.
    sel: SelectivityEstimator,
}

impl Maan {
    /// Build a MAAN system of `n` physical nodes.
    pub fn new(n: usize, space: &AttributeSpace, cfg: MaanConfig) -> Self {
        Self::new_with_mode(n, space, cfg, BuildMode::Bulk)
    }

    /// Build with an explicit construction mode (overlay assembly and
    /// report placement; both modes are byte-identical, see [`BuildMode`]).
    pub fn new_with_mode(
        n: usize,
        space: &AttributeSpace,
        cfg: MaanConfig,
        mode: BuildMode,
    ) -> Self {
        let host = ChordHost::build_with_mode(n, cfg.seed, mode);
        let hash = ConsistentHash::new(cfg.seed);
        let attr_keys = space.ids().map(|a| hash.hash_str(space.name(a))).collect();
        // 0 span = the full 64-bit ring: the paper's system-wide value space.
        let lph = space.lph(0);
        Self {
            host,
            attr_keys,
            lph,
            phys_node: (0..n).map(|i| Some(NodeIdx(i))).collect(),
            mode,
            sel: SelectivityEstimator::new(space),
        }
    }

    /// The attribute-registration key.
    pub fn attr_key(&self, attr: AttrId) -> u64 {
        self.attr_keys[attr.0 as usize]
    }

    /// The value-registration key.
    pub fn value_key(&self, value: f64) -> u64 {
        self.lph.hash(value)
    }

    /// The underlying host (read-only).
    pub fn host(&self) -> &ChordHost {
        &self.host
    }

    fn node_of(&self, phys: usize) -> Result<NodeIdx, DhtError> {
        self.phys_node.get(phys).copied().flatten().ok_or(DhtError::NodeNotFound { index: phys })
    }
}

impl ResourceDiscovery for Maan {
    fn clone_box(&self) -> Box<dyn ResourceDiscovery + Send + Sync> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "MAAN"
    }

    fn num_physical(&self) -> usize {
        self.phys_node.iter().filter(|n| n.is_some()).count()
    }

    fn is_live(&self, phys: usize) -> bool {
        self.phys_node.get(phys).copied().flatten().is_some()
    }

    fn place_all(&mut self, reports: &[ResourceInfo]) {
        self.host.clear();
        self.sel.rebuild(reports);
        match self.mode {
            BuildMode::Bulk => {
                // Two registrations per report, in the same per-report
                // attr-then-value order as the sequential path.
                let items: Vec<(u64, ResourceInfo)> = reports
                    .iter()
                    .flat_map(|&r| [(self.attr_key(r.attr), r), (self.value_key(r.value), r)])
                    .collect();
                self.host.store_all_at_owners(items);
            }
            BuildMode::Incremental => {
                for &r in reports {
                    let _ = self.host.store_at_owner(self.attr_key(r.attr), r);
                    let _ = self.host.store_at_owner(self.value_key(r.value), r);
                }
            }
        }
    }

    fn register(&mut self, info: ResourceInfo) -> Result<LookupTally, DhtError> {
        let from = self.node_of(info.owner)?;
        let r1 = self.host.store_routed(from, self.attr_key(info.attr), info)?;
        let r2 = self.host.store_routed(from, self.value_key(info.value), info)?;
        self.sel.record(&info);
        Ok(LookupTally { hops: r1.hops + r2.hops, lookups: 2, visited: 2, matches: 0 })
    }

    fn selectivity(&self) -> Option<&SelectivityEstimator> {
        Some(&self.sel)
    }

    fn query_from(&self, phys: usize, q: &Query) -> Result<QueryOutcome, DhtError> {
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub = Vec::with_capacity(q.subs.len());
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        // One probe-list scratch serves every sub-query of this query.
        let mut walk: Vec<NodeIdx> = Vec::new();
        for sub in &q.subs {
            // Lookup 1: the attribute registration (existence/metadata).
            let attr_route = self.host.net().route_stats(from, self.attr_key(sub.attr))?;
            tally.lookups += 1;
            tally.hops += attr_route.hops;
            tally.visited += 1;
            probed_all.push(attr_route.terminal);
            // Lookup 2: the value registration; ranges walk the ring.
            let (lo, hi) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => (low, Some(high)),
            };
            let value_route = self.host.net().route_stats(from, self.value_key(lo))?;
            tally.lookups += 1;
            tally.hops += value_route.hops;
            walk.clear();
            match hi {
                None => walk.push(value_route.terminal),
                Some(h) => self.host.walk_range_into(
                    value_route.terminal,
                    self.value_key(lo),
                    self.value_key(h),
                    &mut walk,
                ),
            }
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                self.host.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn query_from_cached(
        &self,
        phys: usize,
        q: &Query,
        cache: &mut RouteCache,
    ) -> Result<QueryOutcome, DhtError> {
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut per_sub = Vec::with_capacity(q.subs.len());
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        let mut walk: Vec<NodeIdx> = Vec::new();
        for sub in &q.subs {
            // Lookup 1: the attribute registration. Attribute and value
            // keys share one ring, so one salt serves both — the keys
            // themselves disambiguate.
            let attr_route =
                route_stats_cached(self.host.net(), from, self.attr_key(sub.attr), 0, cache)?;
            tally.lookups += 1;
            tally.hops += attr_route.hops;
            tally.visited += 1;
            probed_all.push(attr_route.terminal);
            // Lookup 2: the value registration; ranges walk the ring.
            let (lo, hi) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => (low, Some(high)),
            };
            let value_route =
                route_stats_cached(self.host.net(), from, self.value_key(lo), 0, cache)?;
            tally.lookups += 1;
            tally.hops += value_route.hops;
            walk.clear();
            match hi {
                None => walk.push(value_route.terminal),
                Some(h) => self.host.walk_range_cached_into(
                    value_route.terminal,
                    self.value_key(lo),
                    self.value_key(h),
                    0,
                    cache,
                    &mut walk,
                ),
            }
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                self.host.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            per_sub.push(owners);
        }
        Ok(QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all })
    }

    fn query_from_faulty(
        &self,
        phys: usize,
        q: &Query,
        plan: &FaultPlan,
        msg_seed: u64,
    ) -> Result<FaultyOutcome, DhtError> {
        if plan.is_inert() {
            return Ok(FaultyOutcome::complete(self.query_from(phys, q)?, q.arity()));
        }
        let from = self.node_of(phys)?;
        let mut tally = LookupTally::default();
        let mut acct = FaultAccount::default();
        let mut per_sub = Vec::new();
        let mut probed_all: Vec<NodeIdx> = Vec::new();
        let mut walk: Vec<NodeIdx> = Vec::new();
        let mut subs_resolved = 0usize;
        let mut subs_answered = 0usize;
        for (i, sub) in q.subs.iter().enumerate() {
            if tally.hops >= plan.hop_budget() {
                continue;
            }
            let sub_msg = sub_msg_id(msg_seed, i);
            // Lookup 1: the attribute registration. Its failure degrades
            // the sub-query (metadata unavailable) but the value walk can
            // still produce the owners.
            tally.lookups += 1;
            let attr_msg = splitmix64(sub_msg);
            let mut attr_ok = false;
            match route_with_retry(
                self.host.net(),
                from,
                self.attr_key(sub.attr),
                plan,
                attr_msg,
                &mut acct,
            ) {
                Ok(r) => {
                    tally.hops += r.hops;
                    tally.visited += 1;
                    probed_all.push(r.terminal);
                    attr_ok = true;
                }
                Err(DhtError::MessageDropped { hops } | DhtError::DeadHop { hops }) => {
                    tally.hops += hops;
                }
                Err(e) => return Err(e),
            }
            // Lookup 2: the value registration; ranges walk the ring.
            // Without it the sub-query has no owners at all.
            let (lo, hi) = match sub.target {
                ValueTarget::Point(v) => (v, None),
                ValueTarget::Range { low, high } => (low, Some(high)),
            };
            tally.lookups += 1;
            let value_route = match route_with_retry(
                self.host.net(),
                from,
                self.value_key(lo),
                plan,
                sub_msg,
                &mut acct,
            ) {
                Ok(r) => r,
                Err(DhtError::MessageDropped { hops } | DhtError::DeadHop { hops }) => {
                    tally.hops += hops;
                    continue;
                }
                Err(e) => return Err(e),
            };
            tally.hops += value_route.hops;
            subs_answered += 1;
            walk.clear();
            let truncated = match hi {
                None => {
                    walk.push(value_route.terminal);
                    false
                }
                Some(h) => self.host.walk_range_faulty_into(
                    value_route.terminal,
                    self.value_key(lo),
                    self.value_key(h),
                    plan,
                    walk_msg_id(sub_msg),
                    &mut acct,
                    &mut walk,
                ),
            };
            tally.visited += walk.len();
            let mut owners = Vec::new();
            for &node in &walk {
                self.host.matches_in_into(node, sub.attr, &sub.target, &mut owners);
            }
            probed_all.extend_from_slice(&walk);
            tally.matches += owners.len();
            if attr_ok && !truncated {
                subs_resolved += 1;
            }
            per_sub.push(owners);
        }
        let outcome = QueryOutcome { tally, owners: join_owners(per_sub), probed: probed_all };
        Ok(FaultyOutcome {
            outcome,
            subs_resolved,
            subs_answered,
            subs_total: q.arity(),
            retries: acct.retries,
            dropped_msgs: acct.dropped_msgs,
        })
    }

    fn directory_loads(&self) -> LoadDist {
        LoadDist::from_counts(&self.host.loads())
    }

    fn total_pieces(&self) -> usize {
        self.host.total_pieces()
    }

    fn outlinks_per_node(&self) -> LoadDist {
        LoadDist::from_counts(&self.host.outlinks())
    }

    fn join_physical(&mut self, _rng: &mut SmallRng) -> Result<usize, DhtError> {
        let boot = self.phys_node.iter().copied().flatten().next().ok_or(DhtError::EmptyOverlay)?;
        let idx = self.host.net_mut().join(boot)?;
        self.host.sync_arena();
        let phys = self.phys_node.len();
        self.phys_node.push(Some(idx));
        Ok(phys)
    }

    fn leave_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        // Capture the departing node's key interval (pred, me] *before*
        // the ring splices it out, so each drained copy can be attributed
        // to the registration (attribute or value) it was stored under.
        let my_id = self.host.net().id_of(node)?;
        let pred_id =
            self.host.net().node(node)?.predecessor().and_then(|p| self.host.net().id_of(p).ok());
        let handoff = self.host.drain_directory(node);
        self.host.clear_replicas_of(node);
        self.host.net_mut().leave(node)?;
        self.phys_node[phys] = None;
        // A piece stored under both keys appears twice in the handoff;
        // alternate attribution so exactly one copy lands under each key.
        // Sorted flat Vec as a set: handoffs are one directory's worth of
        // pieces, so binary-search + ordered insert beats a tree.
        let mut attr_placed: Vec<(u32, u64, usize)> = Vec::new();
        for info in handoff {
            let ak = self.attr_key(info.attr);
            let vk = self.value_key(info.value);
            let owned = |key: u64| match pred_id {
                Some(p) => dht_core::in_interval_oc(p, my_id, key),
                None => true,
            };
            let sig = (info.attr.0, info.value.to_bits(), info.owner);
            let key = match (owned(ak), owned(vk)) {
                (true, false) => ak,
                (false, true) => vk,
                // both (or indeterminate): first copy to the attribute
                // root, second to the value root
                _ => match attr_placed.binary_search(&sig) {
                    Err(pos) => {
                        attr_placed.insert(pos, sig);
                        ak
                    }
                    Ok(_) => vk,
                },
            };
            let _ = self.host.store_at_owner(key, info);
        }
        Ok(())
    }

    fn fail_physical(&mut self, phys: usize) -> Result<(), DhtError> {
        let node = self.node_of(phys)?;
        let _lost = self.host.drain_directory(node);
        self.host.clear_replicas_of(node);
        self.host.net_mut().fail(node)?;
        self.phys_node[phys] = None;
        Ok(())
    }

    fn stabilize(&mut self) {
        // The simulator's maintenance tick: perfect repair from ground
        // truth (the protocol-level stabilize/fix_fingers path is
        // exercised by the chord crate's own tests), then replica repair.
        self.host.net_mut().rebuild_all_state();
        let attr_keys = &self.attr_keys;
        let lph = &self.lph;
        self.host.repair_replicas_with(&mut |info, keys| {
            // MAAN registers every piece twice: promoted replicas reroute
            // under both the attribute and the value key.
            keys.push(attr_keys[info.attr.0 as usize]);
            keys.push(lph.hash(info.value));
        });
    }

    fn set_replication(&mut self, k: usize) {
        let attr_keys = &self.attr_keys;
        let lph = &self.lph;
        self.host.set_replication_with(k, &mut |info, keys| {
            keys.push(attr_keys[info.attr.0 as usize]);
            keys.push(lph.hash(info.value));
        });
    }

    fn replication(&self) -> usize {
        self.host.replication()
    }

    fn repair_stats(&self) -> dht_core::RepairStats {
        self.host.repair_stats()
    }

    fn surviving_pieces_into(&self, out: &mut Vec<PieceKey>) {
        self.host.surviving_pieces_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_resource::{QueryMix, Workload, WorkloadConfig};
    use rand::SeedableRng;

    fn setup() -> (Workload, Maan) {
        let mut rng = SmallRng::seed_from_u64(0x3A);
        let cfg = WorkloadConfig {
            num_attrs: 25,
            values_per_attr: 80,
            num_nodes: 256,
            ..Default::default()
        };
        let w = Workload::generate(cfg, &mut rng).unwrap();
        let mut m = Maan::new(256, &w.space, MaanConfig::default());
        m.place_all(&w.reports);
        (w, m)
    }

    fn brute(w: &Workload, attr: AttrId, t: &ValueTarget) -> Vec<usize> {
        let mut v: Vec<usize> = w
            .reports
            .iter()
            .filter(|r| r.attr == attr && t.matches(r.value))
            .map(|r| r.owner)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn stores_twice_the_information() {
        // Theorem 4.2: MAAN's total stored information is 2x the reports.
        let (w, m) = setup();
        assert_eq!(m.total_pieces(), 2 * w.reports.len());
    }

    #[test]
    fn point_query_needs_two_lookups_per_attr() {
        let (w, m) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        for arity in [1usize, 4, 10] {
            let q = w.random_query(arity, QueryMix::NonRange, &mut rng);
            let out = m.query_from(0, &q).unwrap();
            assert_eq!(out.tally.lookups, 2 * arity);
            assert_eq!(out.tally.visited, 2 * arity);
        }
    }

    #[test]
    fn queries_are_complete() {
        let (w, m) = setup();
        let mut rng = SmallRng::seed_from_u64(2);
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            for _ in 0..60 {
                let q = w.random_query(2, mix, &mut rng);
                let out = m.query_from(9, &q).unwrap();
                let expected =
                    join_owners(q.subs.iter().map(|sq| brute(&w, sq.attr, &sq.target)).collect());
                let mut got = out.owners.clone();
                got.sort_unstable();
                assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn range_walk_is_system_wide() {
        // A range covering ~half the domain must probe ~half the ring
        // (plus the attribute lookup) — hundreds of nodes, not a handful.
        let (w, m) = setup();
        let q = Query::new(vec![grid_resource::SubQuery {
            attr: AttrId(0),
            target: ValueTarget::Range { low: 1.0, high: 40.0 },
        }])
        .unwrap();
        let out = m.query_from(0, &q).unwrap();
        assert!(
            out.tally.visited > 256 / 4,
            "visited {} should approach n/2 for a half-domain range",
            out.tally.visited
        );
        let _ = w;
    }

    #[test]
    fn value_keys_preserve_order() {
        let (_, m) = setup();
        assert!(m.value_key(10.0) < m.value_key(20.0));
        assert!(m.value_key(20.0) < m.value_key(79.0));
    }

    #[test]
    fn load_spreads_beyond_attribute_roots() {
        // Value registrations spread over one root per distinct grid value
        // (up to 80 here) in addition to the 25 attribute roots, so far
        // more nodes hold pieces than under pure attribute pooling.
        let (_, m) = setup();
        let loaded = m.directory_loads().loads().iter().filter(|&&l| l > 0.0).count();
        assert!((60..=105).contains(&loaded), "{loaded} of 256 nodes hold pieces");
    }

    #[test]
    fn cached_query_is_identical_to_plain() {
        let (w, mut m) = setup();
        let mut cache = RouteCache::new();
        let mut rng = SmallRng::seed_from_u64(0xCA);
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            for i in 0..50usize {
                let q = w.random_query(3, mix, &mut rng);
                let plain = m.query_from(i % 256, &q).unwrap();
                let cached = m.query_from_cached(i % 256, &q, &mut cache).unwrap();
                assert_eq!(cached, plain, "{mix:?} query {i}");
            }
        }
        assert!(cache.hits() > 0, "repeated double lookups must hit");
        m.leave_physical(3).unwrap();
        m.stabilize();
        m.place_all(&w.reports);
        for i in 0..20usize {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let plain = m.query_from(i % 250 + 4, &q).unwrap();
            let cached = m.query_from_cached(i % 250 + 4, &q, &mut cache).unwrap();
            assert_eq!(cached, plain, "post-churn query {i}");
        }
    }

    #[test]
    fn replication_preserves_query_completeness_under_failures() {
        // With degree 2 and one failure per repair window, no piece is
        // ever lost — and because promotion reroutes a dead primary's
        // pieces under *both* MAAN registrations, every query stays
        // complete against the original workload.
        let (w, mut m) = setup();
        m.set_replication(2);
        let mut rng = SmallRng::seed_from_u64(0xFA);
        use rand::Rng;
        for _ in 0..8 {
            let phys = loop {
                let p = rng.gen_range(0..256);
                if m.is_live(p) {
                    break p;
                }
            };
            m.fail_physical(phys).unwrap();
            m.stabilize();
        }
        let origin = (0..256).find(|&p| m.is_live(p)).unwrap();
        for mix in [QueryMix::NonRange, QueryMix::Range] {
            for _ in 0..40 {
                let q = w.random_query(2, mix, &mut rng);
                let out = m.query_from(origin, &q).unwrap();
                let expected =
                    join_owners(q.subs.iter().map(|sq| brute(&w, sq.attr, &sq.target)).collect());
                let mut got = out.owners.clone();
                got.sort_unstable();
                assert_eq!(got, expected, "{mix:?} incomplete after replicated churn");
            }
        }
        assert!(m.repair_stats().transfers() > 0);
    }

    #[test]
    fn inert_fault_plan_query_is_identical_to_plain() {
        let (w, m) = setup();
        let plan = FaultPlan::new(3, 0.0, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..30u64 {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let plain = m.query_from(1, &q).unwrap();
            let faulty = m.query_from_faulty(1, &q, &plan, i).unwrap();
            assert_eq!(faulty.outcome, plain);
            assert!(faulty.is_complete());
        }
    }

    #[test]
    fn faulty_queries_are_deterministic_and_degrade_under_loss() {
        let (w, m) = setup();
        let plan = FaultPlan::new(7, 0.2, 0.05).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut degraded = 0usize;
        for i in 0..60u64 {
            let q = w.random_query(2, QueryMix::Range, &mut rng);
            let a = m.query_from_faulty(2, &q, &plan, i).unwrap();
            let b = m.query_from_faulty(2, &q, &plan, i).unwrap();
            assert_eq!(a, b);
            if !a.is_complete() {
                degraded += 1;
            }
        }
        // MAAN's system-wide range walks make it the most exposed system:
        // a long walk gives the drop coin many chances to fire.
        assert!(degraded > 10, "only {degraded} of 60 queries degraded at 20% loss");
    }
}
