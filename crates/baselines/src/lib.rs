//! # baselines — the three comparator systems of the paper
//!
//! Faithful implementations of the representatives the paper compares
//! LORM against (§IV), all built on the `chord` overlay as the paper
//! prescribes ("we use Chord for attribute hubs in Mercury, and we replace
//! Bamboo DHT with Chord in SWORD"):
//!
//! * [`Mercury`] — **multi-DHT**: one Chord *hub* per attribute; every
//!   physical node joins every hub; within a hub, reports are placed by
//!   the locality-preserving hash of their value, so a range query walks
//!   successors system-wide. Routing state costs `m × O(log n)` links per
//!   physical node (Theorem 4.1) but information spreads most evenly
//!   (Theorem 4.5).
//! * [`Sword`] — **single-DHT centralized**: one Chord; a report is stored
//!   at `root(H(attribute))`, pooling *all* information of an attribute on
//!   one directory node. Range queries stop at the root (1 visited node)
//!   at the price of the worst load imbalance (Theorem 4.4).
//! * [`Maan`] — **single-DHT decentralized**: one Chord; every report is
//!   registered twice — under `H(attribute)` and under the global
//!   locality-preserving value hash — doubling stored information
//!   (Theorem 4.2) and requiring two lookups per sub-query
//!   (Theorems 4.7/4.8); range queries walk the value ring system-wide.
//!
//! Per §IV, the pointer-indirection optimization (store the record in one
//! hub, pointers elsewhere) is deliberately **not** applied to any system,
//! to keep the comparison like-for-like with the paper.
//!
//! A fifth system, [`CompositeFlat`], is **ours**, not the paper's: LORM's
//! composite index emulated on a flat Chord, used by the `flatlorm`
//! ablation to isolate what Cycloid's hierarchy actually buys.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod composite;
mod host;
mod maan;
mod mercury;
mod sword;

pub use composite::{CompositeConfig, CompositeFlat};
pub use host::ChordHost;
pub use maan::{Maan, MaanConfig};
pub use mercury::{Mercury, MercuryConfig};
pub use sword::{Sword, SwordConfig};
