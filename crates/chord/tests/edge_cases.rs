//! Edge cases of the Chord simulator: tiny rings, boundary keys,
//! degenerate configurations.

use chord::{Chord, ChordConfig};
use dht_core::Overlay;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn two_node_ring_routes_both_ways() {
    let net = Chord::build(2, ChordConfig::default());
    let [a, b] = [net.nodes_by_id()[0], net.nodes_by_id()[1]];
    let ida = net.id_of(a).unwrap();
    let idb = net.id_of(b).unwrap();
    // each node owns the arc ending at itself
    assert_eq!(net.owner_of(ida).unwrap(), a);
    assert_eq!(net.owner_of(idb).unwrap(), b);
    assert_eq!(net.owner_of(ida.wrapping_add(1)).unwrap(), b);
    assert_eq!(net.owner_of(idb.wrapping_add(1)).unwrap(), a);
    // and routing agrees from both origins
    for from in [a, b] {
        for key in [ida, idb, ida.wrapping_add(1), idb.wrapping_add(1)] {
            let r = net.route(from, key).unwrap();
            assert!(r.exact);
            assert!(r.hops() <= 1, "a 2-ring resolves in at most one hop");
        }
    }
}

#[test]
fn two_node_ring_neighbors_point_at_each_other() {
    let net = Chord::build(2, ChordConfig::default());
    let [a, b] = [net.nodes_by_id()[0], net.nodes_by_id()[1]];
    assert_eq!(net.next_clockwise(a).unwrap(), b);
    assert_eq!(net.next_clockwise(b).unwrap(), a);
    assert_eq!(net.next_counterclockwise(a).unwrap(), b);
    assert_eq!(net.next_counterclockwise(b).unwrap(), a);
}

#[test]
fn boundary_keys_route_correctly() {
    let net = Chord::build(64, ChordConfig::default());
    let mut rng = SmallRng::seed_from_u64(1);
    for key in [0u64, 1, u64::MAX, u64::MAX - 1, u64::MAX / 2] {
        let from = net.random_node(&mut rng).unwrap();
        let r = net.route(from, key).unwrap();
        assert!(r.exact, "boundary key {key}");
    }
    // a node's own id and the id just after are owned by it and its
    // successor respectively
    for &idx in net.nodes_by_id().iter().take(5) {
        let id = net.id_of(idx).unwrap();
        assert_eq!(net.owner_of(id).unwrap(), idx);
    }
}

#[test]
fn successor_list_lengths_follow_config() {
    for r in [1usize, 3, 7] {
        let net = Chord::build(32, ChordConfig { succ_list_len: r, seed: 9 });
        for &idx in net.nodes_by_id().iter().take(8) {
            assert_eq!(net.node(idx).unwrap().successor_list().len(), r.min(31));
        }
    }
}

#[test]
fn succ_list_longer_than_ring_is_capped() {
    let net = Chord::build(3, ChordConfig { succ_list_len: 10, seed: 2 });
    for &idx in net.nodes_by_id() {
        let sl = net.node(idx).unwrap().successor_list().len();
        assert!(sl <= 2, "successor list {sl} exceeds other-node count");
    }
}

#[test]
fn leave_of_last_but_one_keeps_singleton_sane() {
    let mut net = Chord::build(2, ChordConfig::default());
    let victim = net.nodes_by_id()[0];
    net.leave(victim).unwrap();
    assert_eq!(net.len(), 1);
    let survivor = net.live_nodes()[0];
    let r = net.route(survivor, 12345).unwrap();
    assert_eq!(r.terminal, survivor);
    assert_eq!(net.owner_of(0).unwrap(), survivor);
}

#[test]
fn stabilize_on_singleton_is_harmless() {
    let mut net = Chord::build(1, ChordConfig::default());
    let only = net.nodes_by_id()[0];
    net.stabilize_all();
    assert!(net.node(only).unwrap().is_alive());
    assert_eq!(net.len(), 1);
}

#[test]
fn route_with_key_equal_to_origin_id() {
    let net = Chord::build(128, ChordConfig::default());
    for &idx in net.nodes_by_id().iter().take(10) {
        let id = net.id_of(idx).unwrap();
        let r = net.route(idx, id).unwrap();
        assert_eq!(r.terminal, idx);
        assert_eq!(r.hops(), 0);
    }
}

#[test]
fn outlinks_count_excludes_self_and_dead() {
    let mut net = Chord::build(16, ChordConfig::default());
    let idx = net.nodes_by_id()[3];
    let before = net.outlinks(idx).unwrap();
    // kill a neighbor: the distinct-live count can only stay or drop
    let succ = net.next_clockwise(idx).unwrap();
    net.fail(succ).unwrap();
    let after = net.outlinks(idx).unwrap();
    assert!(after < before, "dead neighbors must not be counted: {before} -> {after}");
}

#[test]
fn fingers_in_tiny_ring_all_point_at_the_other_node() {
    let net = Chord::build(2, ChordConfig::default());
    let a = net.nodes_by_id()[0];
    let b = net.nodes_by_id()[1];
    let fingers = net.node(a).unwrap().fingers();
    assert!(fingers.iter().all(|&f| f == a || f == b));
    assert_eq!(net.outlinks(a).unwrap(), 1);
}

#[test]
fn reserved_tombstones_grow_arena_but_not_ring() {
    let mut net = Chord::build(8, ChordConfig::default());
    let arena_before = net.arena_len();
    let t = net.reserve_tombstone();
    assert_eq!(net.arena_len(), arena_before + 1);
    assert_eq!(net.len(), 8, "ring population unchanged");
    assert!(!net.node(t).unwrap().is_alive());
    // routing still works and never lands on the tombstone
    let mut rng = SmallRng::seed_from_u64(0x70);
    for _ in 0..50 {
        let from = net.random_node(&mut rng).unwrap();
        let r = net.route(from, rand::Rng::gen(&mut rng)).unwrap();
        assert_ne!(r.terminal, t);
        assert!(r.exact);
    }
}

#[test]
fn successor_list_exhaustion_recovers_via_finger_fallback() {
    // Regression for the abrupt-failure path: kill every entry of one
    // node's successor list at once (the worst case a ChurnKind::Fail
    // burst can produce) and check stabilization falls back to the
    // finger table instead of erroring or re-bootstrapping.
    let mut net = Chord::build(128, ChordConfig::default());
    let idx = net.nodes_by_id()[0];
    let succs = net.node(idx).unwrap().successor_list().to_vec();
    assert_eq!(succs.len(), 4, "default successor-list length");
    for &s in &succs {
        net.fail(s).unwrap();
    }
    // node-local view: the whole list is dead
    assert!(net.next_clockwise(idx).is_err(), "exhausted list must be visible");
    // one stabilization round adopts a live finger as the new successor
    net.stabilize(idx).unwrap();
    let repaired = net.next_clockwise(idx).unwrap();
    assert!(!succs.contains(&repaired), "repaired successor must be alive");
    // full maintenance rounds then restore exact routing from the
    // survivor. One round is not enough after four simultaneous deaths:
    // successor-list repair propagates one hop per round, so a burst of
    // length r takes ~r rounds to fully heal, as in the real protocol.
    for _ in 0..3 {
        net.stabilize_all();
    }
    let mut rng = SmallRng::seed_from_u64(0x5E);
    for _ in 0..40 {
        let r = net.route(idx, rand::Rng::gen(&mut rng)).unwrap();
        assert!(r.exact);
        assert!(!succs.contains(&r.terminal), "routed onto a failed node");
    }
}
