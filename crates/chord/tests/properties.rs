//! Property-based tests of the Chord simulator.

use chord::{Chord, ChordConfig};
use dht_core::Overlay;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routed lookups always terminate at the consistent-hashing owner in
    /// a stabilized network, regardless of size, seed or key.
    #[test]
    fn lookups_are_exact(n in 1usize..300, seed: u64, keys in prop::collection::vec(any::<u64>(), 1..20)) {
        let net = Chord::build(n, ChordConfig { seed, ..Default::default() });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00);
        for key in keys {
            let from = net.random_node(&mut rng).unwrap();
            let r = net.route(from, key).unwrap();
            prop_assert!(r.exact);
            // the terminal really owns the key: key ∈ (pred, terminal]
            let t = net.node(r.terminal).unwrap();
            let pred = net.node(t.predecessor().unwrap()).unwrap();
            if n > 1 {
                prop_assert!(dht_core::in_interval_oc(pred.id(), t.id(), key));
            }
        }
    }

    /// The successor relation forms one cycle covering every live node.
    #[test]
    fn ring_is_a_single_cycle(n in 1usize..200, seed: u64) {
        let net = Chord::build(n, ChordConfig { seed, ..Default::default() });
        let start = net.nodes_by_id()[0];
        let mut cur = start;
        let mut count = 0usize;
        loop {
            cur = net.next_clockwise(cur).unwrap();
            count += 1;
            prop_assert!(count <= n, "cycle longer than the population");
            if cur == start {
                break;
            }
        }
        prop_assert_eq!(count, n.max(1));
    }

    /// Fingers always point at the true successor of their target point.
    #[test]
    fn fingers_are_correct_after_build(n in 2usize..150, seed: u64, i in 0usize..64) {
        let net = Chord::build(n, ChordConfig { seed, ..Default::default() });
        let node_idx = net.nodes_by_id()[0];
        let node = net.node(node_idx).unwrap();
        let target = node.id().wrapping_add(1u64 << i);
        prop_assert_eq!(node.fingers()[i], net.owner_of(target).unwrap());
    }

    /// Graceful departures never orphan keys: after any leave sequence the
    /// remaining ring still resolves every key exactly.
    #[test]
    fn leaves_preserve_exactness(n in 5usize..80, seed: u64, leaves in 1usize..4) {
        let mut net = Chord::build(n, ChordConfig { seed, ..Default::default() });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF01);
        for _ in 0..leaves.min(n - 1) {
            let v = net.random_node(&mut rng).unwrap();
            net.leave(v).unwrap();
        }
        for _ in 0..10 {
            let from = net.random_node(&mut rng).unwrap();
            let key: u64 = rand::Rng::gen(&mut rng);
            let r = net.route(from, key).unwrap();
            prop_assert!(r.exact);
        }
    }

    /// The zero-allocation fast path is observationally identical to the
    /// traced route in every network state: freshly stabilized, after
    /// unrepaired churn (leaves and abrupt failures), and after repair.
    #[test]
    fn route_stats_equals_traced_route(n in 8usize..200, seed: u64,
                                       leaves in 0usize..4, fails in 0usize..4) {
        let mut net = Chord::build(n, ChordConfig { seed, ..Default::default() });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF02);
        let check = |net: &Chord, rng: &mut SmallRng| -> Result<(), TestCaseError> {
            for _ in 0..12 {
                let from = net.random_node(rng).unwrap();
                let key: u64 = rand::Rng::gen(rng);
                match (net.route(from, key), net.route_stats(from, key)) {
                    (Ok(t), Ok(s)) => {
                        prop_assert_eq!(t.hops(), s.hops);
                        prop_assert_eq!(t.terminal, s.terminal);
                        prop_assert_eq!(t.exact, s.exact);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    (t, s) => prop_assert!(false, "diverged: traced {t:?} vs stats {s:?}"),
                }
            }
            Ok(())
        };
        check(&net, &mut rng)?; // stabilized
        for _ in 0..leaves.min(n / 4) {
            let v = net.random_node(&mut rng).unwrap();
            net.leave(v).unwrap();
        }
        for _ in 0..fails.min(n / 4) {
            let v = net.random_node(&mut rng).unwrap();
            net.fail(v).unwrap();
        }
        check(&net, &mut rng)?; // post-churn, unrepaired
        net.rebuild_all_state();
        check(&net, &mut rng)?; // post-repair
    }

    /// Distinct outlinks stay O(log n): never more than 2·log2(n) + r + 1.
    #[test]
    fn outlink_bound(n in 2usize..500, seed: u64) {
        let net = Chord::build(n, ChordConfig { seed, ..Default::default() });
        let bound = 2 * (n as f64).log2().ceil() as usize + 6;
        for &idx in net.nodes_by_id().iter().take(20) {
            prop_assert!(net.outlinks(idx).unwrap() <= bound);
        }
    }

    /// Every successful mutating op strictly increases the epoch — the
    /// invariant the route cache's staleness check rests on. Any op
    /// sequence, any interleaving: a completed join / leave / fail /
    /// stabilize / repair must leave the epoch strictly above where it
    /// started, so no cache entry stamped before the op can ever hit
    /// after it.
    #[test]
    fn mutating_op_sequences_strictly_increase_epoch(
        n in 8usize..64,
        seed: u64,
        ops in prop::collection::vec((0u8..5, any::<u64>()), 1..24),
    ) {
        let mut net = Chord::build(n, ChordConfig { seed, ..Default::default() });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xE9);
        for (kind, _pick) in ops {
            let before = net.epoch();
            let mutated = match kind {
                0 => {
                    let boot = net.random_node(&mut rng).unwrap();
                    net.join(boot).is_ok()
                }
                1 if net.len() > 2 => {
                    let v = net.random_node(&mut rng).unwrap();
                    net.leave(v).is_ok()
                }
                2 if net.len() > 2 => {
                    let v = net.random_node(&mut rng).unwrap();
                    net.fail(v).is_ok()
                }
                3 => {
                    net.stabilize_all();
                    true
                }
                _ => {
                    net.rebuild_all_state();
                    true
                }
            };
            if mutated {
                prop_assert!(
                    net.epoch() > before,
                    "op {kind} left epoch at {before}"
                );
            }
        }
    }
}
