//! Regression guard for the bulk-build bugfix: initial bed construction
//! must stay subquadratic in n.
//!
//! The retired path performed one ordered insert per join (O(n) shifts
//! each, O(n²) aggregate); `Chord::build` now assembles the ring from a
//! single sorted id vector and derives all link state in one pass
//! (O(n log n)). Quadrupling n must therefore cost ~4–5x, not ~16x.
//! The threshold sits halfway between those regimes with generous slack
//! for scheduler noise on a loaded 1-CPU runner; timings are best-of-3
//! so a single stall cannot fake a regression.

use chord::{Chord, ChordConfig};
use dht_core::Overlay;
use std::time::Instant;

fn best_build_secs(n: usize) -> f64 {
    (0..3)
        .map(|_| {
            let started = Instant::now();
            let net = Chord::build(n, ChordConfig::default());
            let secs = started.elapsed().as_secs_f64();
            assert_eq!(net.len(), n);
            secs
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn bulk_build_time_grows_subquadratically() {
    // Warm up allocator/page-cache state so the first measured build
    // isn't charged for faulting in the heap.
    drop(Chord::build(4_096, ChordConfig::default()));
    let small = best_build_secs(16_384);
    let large = best_build_secs(65_536);
    // Floor the denominator: on a fast machine the small build is
    // sub-millisecond and the ratio would be all noise.
    let ratio = large / small.max(1e-3);
    assert!(
        ratio < 10.0,
        "4x nodes cost {ratio:.1}x build time ({small:.3}s -> {large:.3}s); \
         O(n log n) predicts ~4.6x, quadratic predicts ~16x"
    );
}
