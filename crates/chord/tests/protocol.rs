//! Protocol-level integration tests: grow and shrink a Chord ring using
//! only the join/leave/stabilize protocol (no ground-truth bulk
//! construction) and check that routing invariants hold throughout.

use chord::{Chord, ChordConfig};
use dht_core::{Overlay, Summary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn assert_all_lookups_exact(net: &Chord, rng: &mut SmallRng, lookups: usize) {
    for _ in 0..lookups {
        let from = net.random_node(rng).expect("live node");
        let key: u64 = rng.gen();
        let r = net.route(from, key).expect("route completes");
        assert!(r.exact, "lookup landed off the true owner");
    }
}

#[test]
fn network_grown_purely_by_joins_routes_exactly() {
    let mut net = Chord::build(1, ChordConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x901);
    let boot = net.nodes_by_id()[0];
    for i in 0..120 {
        net.join(boot).expect("join succeeds");
        // occasional maintenance, as deployed Chord runs it
        if i % 10 == 9 {
            net.stabilize_all();
        }
    }
    net.stabilize_all();
    assert_eq!(net.len(), 121);
    assert_all_lookups_exact(&net, &mut rng, 300);
}

#[test]
fn ring_order_is_consistent_after_incremental_growth() {
    let mut net = Chord::build(1, ChordConfig::default());
    let boot = net.nodes_by_id()[0];
    for _ in 0..60 {
        net.join(boot).unwrap();
    }
    net.stabilize_all();
    // following successors visits every node exactly once, in id order
    let ids = net.nodes_by_id().to_vec();
    let mut cur = ids[0];
    for expect in ids.iter().skip(1).chain(ids.iter().take(1)) {
        cur = net.next_clockwise(cur).unwrap();
        assert_eq!(cur, *expect);
    }
}

#[test]
fn alternating_join_leave_cycles_stay_consistent() {
    let mut net = Chord::build(20, ChordConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x902);
    for round in 0..15 {
        let boot = net.random_node(&mut rng).unwrap();
        let joined = net.join(boot).unwrap();
        // leave someone who is not the one who just joined
        let victim = loop {
            let v = net.random_node(&mut rng).unwrap();
            if v != joined {
                break v;
            }
        };
        net.leave(victim).unwrap();
        net.stabilize_all();
        assert_eq!(net.len(), 20, "round {round}");
        assert_all_lookups_exact(&net, &mut rng, 40);
    }
}

#[test]
fn hop_count_stays_logarithmic_through_protocol_growth() {
    let mut net = Chord::build(1, ChordConfig::default());
    let boot = net.nodes_by_id()[0];
    for i in 0..255 {
        net.join(boot).unwrap();
        if i % 16 == 15 {
            net.stabilize_all();
        }
    }
    net.stabilize_all();
    let mut rng = SmallRng::seed_from_u64(0x903);
    let mut s = Summary::new();
    for _ in 0..400 {
        let from = net.random_node(&mut rng).unwrap();
        let key: u64 = rng.gen();
        s.record(net.route(from, key).unwrap().hops() as f64);
    }
    // 256 nodes: expect ~4 hops, certainly below 8
    assert!(s.mean() < 8.0, "avg hops {}", s.mean());
}

#[test]
fn shrink_to_single_node_and_back() {
    let mut net = Chord::build(8, ChordConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x904);
    while net.len() > 1 {
        let v = net.random_node(&mut rng).unwrap();
        net.leave(v).unwrap();
    }
    let survivor = net.live_nodes()[0];
    let r = net.route(survivor, 42).unwrap();
    assert_eq!(r.terminal, survivor);
    // regrow
    for _ in 0..10 {
        net.join(survivor).unwrap();
    }
    net.stabilize_all();
    assert_eq!(net.len(), 11);
    assert_all_lookups_exact(&net, &mut rng, 50);
}

#[test]
fn abrupt_mass_failure_then_repair_restores_exactness() {
    let mut net = Chord::build(150, ChordConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x905);
    for _ in 0..45 {
        // 30% abrupt loss
        let v = net.random_node(&mut rng).unwrap();
        let _ = net.fail(v);
    }
    // several protocol stabilization rounds
    for _ in 0..3 {
        net.stabilize_all();
    }
    assert_eq!(net.len(), 105);
    assert_all_lookups_exact(&net, &mut rng, 200);
}
