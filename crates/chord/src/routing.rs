//! Greedy iterative Chord routing, generic over the hop observer.
//!
//! One routing loop serves both public variants: the traced
//! [`Overlay::route`] records every hop into a `Vec<NodeIdx>` path, while
//! the zero-allocation [`Overlay::route_stats`] fast path drives the same
//! loop with a bare [`HopCount`]. Sharing the loop makes divergence
//! between the two impossible by construction (and proptests assert it).

use crate::network::Chord;
use crate::node::FINGER_BITS;
use dht_core::fault::{check_forward, FaultPlan, FaultSink, MsgId};
use dht_core::{
    in_interval_oc, in_interval_oo, DhtError, HopCount, NodeIdx, Overlay, RouteResult, RouteSink,
    RouteStats,
};

impl Chord {
    /// Route a lookup for `key` starting at `from`, using only node-local
    /// state at every hop, tracing the full path.
    pub(crate) fn route_from(&self, from: NodeIdx, key: u64) -> Result<RouteResult, DhtError> {
        // Sized to the routing budget (4·FINGER_BITS+16, +1 for the hop
        // recorded on the budget check) so a traced route is exactly one
        // allocation — pinned by crates/bench/tests/alloc_count.rs.
        let mut path: Vec<NodeIdx> = Vec::with_capacity(4 * FINGER_BITS + 17);
        let (terminal, exact) = self.route_inner(from, key, &mut path)?;
        Ok(RouteResult { path, terminal, exact })
    }

    /// The allocation-free twin of [`Chord::route_from`]: identical
    /// routing decisions, but only `(hops, terminal, exact)` come back.
    pub(crate) fn route_stats_from(&self, from: NodeIdx, key: u64) -> Result<RouteStats, DhtError> {
        let mut hops = HopCount::default();
        let (terminal, exact) = self.route_inner(from, key, &mut hops)?;
        Ok(RouteStats { hops: hops.get(), terminal, exact })
    }

    /// The fault-injecting variant: the same routing loop driven through a
    /// [`FaultSink`], so per-message drop coins and the plan's failed-node
    /// set can cut a lookup short with [`DhtError::MessageDropped`] /
    /// [`DhtError::DeadHop`].
    pub(crate) fn route_stats_faulty_from(
        &self,
        from: NodeIdx,
        key: u64,
        plan: &FaultPlan,
        msg: MsgId,
    ) -> Result<RouteStats, DhtError> {
        let mut hops = HopCount::default();
        let (terminal, exact) = {
            let mut sink = FaultSink::new(&mut hops, plan, msg);
            self.route_inner(from, key, &mut sink)?
        };
        Ok(RouteStats { hops: hops.get(), terminal, exact })
    }

    /// The routing loop. Dead next-hops are skipped via the successor
    /// list, mirroring the protocol's failure handling. Every forwarding
    /// hop is reported to `sink`; the returned pair is `(terminal, exact)`.
    fn route_inner<S: RouteSink>(
        &self,
        from: NodeIdx,
        key: u64,
        sink: &mut S,
    ) -> Result<(NodeIdx, bool), DhtError> {
        let origin = self.node(from)?;
        if !origin.is_alive() {
            return Err(DhtError::NodeNotFound { index: from.0 });
        }
        if self.len() == 1 {
            return Ok((from, true));
        }
        let budget = 4 * FINGER_BITS + 16;
        let mut cur = from;
        loop {
            let cur_id = self.id_at(cur.0);
            // Does `cur` itself own the key? (pred, cur] ∋ key
            if let Some(pred) = self.pred_at(cur.0) {
                if self.alive_at(pred.0) && in_interval_oc(self.id_at(pred.0), cur_id, key) {
                    break;
                }
            }
            // First alive successor; if the whole successor list is dead
            // (massive correlated failure), fall back to the nearest alive
            // clockwise finger as acting successor, as the protocol does.
            let succ = self
                .raw_succs(cur.0)
                .iter()
                .copied()
                .find(|&s| self.alive_at(s as usize))
                .or_else(|| {
                    self.raw_fingers(cur.0)
                        .iter()
                        .copied()
                        .filter(|&f| {
                            f != crate::network::NO_LINK
                                && self.alive_at(f as usize)
                                && f as usize != cur.0
                        })
                        .min_by_key(|&f| dht_core::clockwise_dist(cur_id, self.id_at(f as usize)))
                })
                .map(|s| NodeIdx(s as usize))
                .ok_or(DhtError::EmptyOverlay)?;
            // Key in (cur, succ] -> succ is the root.
            if in_interval_oc(cur_id, self.id_at(succ.0), key) {
                check_forward(sink, succ)?;
                sink.visit(succ);
                cur = succ;
                break;
            }
            // Closest preceding live node among fingers + successor list.
            let next = self.closest_preceding(cur, key).unwrap_or(succ);
            let next = if next == cur { succ } else { next };
            check_forward(sink, next)?;
            sink.visit(next);
            cur = next;
            if sink.hops() > budget {
                return Err(DhtError::RoutingLoop { hops: sink.hops() });
            }
        }
        let exact = self.owner_of(key)? == cur;
        Ok((cur, exact))
    }

    /// Chord's `closest_preceding_node`: a live neighbor in the open
    /// interval `(cur, key)` maximizing clockwise progress.
    ///
    /// Fingers are scanned from the top down and the scan stops at the
    /// first in-interval candidate: `fingers[i]` targets
    /// `successor(id + 2^i)`, so in a stabilized table clockwise distance
    /// is non-decreasing in `i` and the first hit from the top *is* the
    /// maximum-progress finger — no need to score the remaining ~63
    /// entries every hop. Only when no finger precedes the key does the
    /// (short) successor list get scored the exhaustive way.
    fn closest_preceding(&self, cur: NodeIdx, key: u64) -> Option<NodeIdx> {
        let cur_id = self.id_at(cur.0);
        for &cand in self.raw_fingers(cur.0).iter().rev() {
            if cand == crate::network::NO_LINK {
                continue;
            }
            let c = cand as usize;
            if self.alive_at(c) && c != cur.0 && in_interval_oo(cur_id, key, self.id_at(c)) {
                return Some(NodeIdx(c));
            }
        }
        let mut best: Option<(u64, NodeIdx)> = None;
        for &cand in self.raw_succs(cur.0) {
            let c = cand as usize;
            if !self.alive_at(c) || c == cur.0 {
                continue;
            }
            let cid = self.id_at(c);
            if in_interval_oo(cur_id, key, cid) {
                let progress = dht_core::clockwise_dist(cur_id, cid);
                if best.is_none_or(|(p, _)| progress > p) {
                    best = Some((progress, NodeIdx(c)));
                }
            }
        }
        best.map(|(_, idx)| idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ChordConfig;
    use dht_core::Summary;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn net(n: usize) -> Chord {
        Chord::build(n, ChordConfig::default())
    }

    #[test]
    fn route_terminates_at_true_owner() {
        let c = net(256);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..500 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            let r = c.route(from, key).unwrap();
            assert!(r.exact, "lookup must be exact in a stabilized network");
            assert_eq!(r.terminal, c.owner_of(key).unwrap());
        }
    }

    #[test]
    fn route_to_own_key_is_local() {
        let c = net(64);
        for &idx in c.nodes_by_id().iter().take(10) {
            let id = c.id_of(idx).unwrap();
            let r = c.route(idx, id).unwrap();
            assert_eq!(r.hops(), 0, "a node owns its own identifier");
            assert_eq!(r.terminal, idx);
        }
    }

    #[test]
    fn single_node_routes_locally() {
        let c = net(1);
        let only = c.nodes_by_id()[0];
        let r = c.route(only, 12345).unwrap();
        assert_eq!(r.hops(), 0);
        assert_eq!(r.terminal, only);
        let s = c.route_stats(only, 12345).unwrap();
        assert_eq!(s, RouteStats::local(only));
    }

    #[test]
    fn route_stats_matches_traced_route_when_stabilized() {
        let c = net(512);
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..500 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            let traced = c.route(from, key).unwrap();
            let fast = c.route_stats(from, key).unwrap();
            assert_eq!(fast.hops, traced.hops());
            assert_eq!(fast.terminal, traced.terminal);
            assert_eq!(fast.exact, traced.exact);
        }
    }

    #[test]
    fn route_stats_matches_traced_route_under_failures() {
        let mut c = net(300);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..30 {
            if let Some(v) = c.random_node(&mut rng) {
                let _ = c.fail(v);
            }
        }
        for _ in 0..400 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            let traced = c.route(from, key);
            let fast = c.route_stats(from, key);
            match (traced, fast) {
                (Ok(t), Ok(f)) => {
                    assert_eq!((f.hops, f.terminal, f.exact), (t.hops(), t.terminal, t.exact));
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (t, f) => panic!("variants diverged: {t:?} vs {f:?}"),
            }
        }
    }

    #[test]
    fn average_hops_is_half_log_n() {
        // The Chord paper: expected lookup path length is (1/2) log2 n.
        // For n = 2048 that is 5.5; the paper under reproduction uses
        // exactly this value in Theorem 4.7. Allow a generous band.
        let c = net(2048);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut s = Summary::new();
        for _ in 0..2000 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            s.record(c.route(from, key).unwrap().hops() as f64);
        }
        let mean = s.mean();
        assert!((4.5..7.0).contains(&mean), "Chord avg hops {mean} outside [4.5, 7.0]");
    }

    #[test]
    fn hops_grow_logarithmically() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mean_hops = |n: usize, rng: &mut SmallRng| {
            let c = net(n);
            let mut s = Summary::new();
            for _ in 0..500 {
                let from = c.random_node(rng).unwrap();
                let key: u64 = rng.gen();
                s.record(c.route(from, key).unwrap().hops() as f64);
            }
            s.mean()
        };
        let h256 = mean_hops(256, &mut rng);
        let h4096 = mean_hops(4096, &mut rng);
        // quadrupling the exponent (2^8 -> 2^12) adds ~2 hops, not 16x
        assert!(h4096 > h256, "{h256} -> {h4096}");
        assert!(h4096 < h256 + 4.0, "{h256} -> {h4096}");
    }

    #[test]
    fn routing_survives_abrupt_failures_via_successor_list() {
        let mut c = net(200);
        let mut rng = SmallRng::seed_from_u64(13);
        // Fail 10% of nodes abruptly, no repair at all.
        let victims: Vec<_> = (0..20).filter_map(|_| c.random_node(&mut rng)).collect();
        for v in victims {
            let _ = c.fail(v);
        }
        let mut exact = 0;
        let mut total = 0;
        for _ in 0..300 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            if let Ok(r) = c.route(from, key) {
                total += 1;
                if r.exact {
                    exact += 1;
                }
            }
        }
        // With r=4 successor lists and 10% failures the overwhelming
        // majority of lookups still converge to the true root.
        assert!(total >= 295, "routes completed: {total}");
        assert!(exact as f64 / total as f64 > 0.9, "exact {exact}/{total}");
    }

    #[test]
    fn routing_after_stabilize_is_exact_again() {
        let mut c = net(200);
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..20 {
            if let Some(v) = c.random_node(&mut rng) {
                let _ = c.fail(v);
            }
        }
        c.stabilize_all();
        for _ in 0..300 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            let r = c.route(from, key).unwrap();
            assert!(r.exact, "post-repair lookups must be exact");
        }
    }

    #[test]
    fn route_from_dead_node_errors() {
        let mut c = net(10);
        let v = c.nodes_by_id()[2];
        c.fail(v).unwrap();
        assert!(c.route(v, 7).is_err());
        assert!(c.route_stats(v, 7).is_err());
    }

    #[test]
    fn inert_fault_plan_routes_identically() {
        let c = net(256);
        let plan = FaultPlan::none();
        let mut rng = SmallRng::seed_from_u64(17);
        for i in 0..300u64 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            let plain = c.route_stats(from, key).unwrap();
            let faulty = c.route_stats_faulty(from, key, &plan, MsgId::first(i)).unwrap();
            assert_eq!(plain, faulty, "inert plan must not perturb routing");
        }
    }

    #[test]
    fn full_drop_rate_kills_every_multi_hop_lookup() {
        let c = net(256);
        let plan = FaultPlan::new(1, 1.0, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(18);
        let mut dropped = 0;
        for i in 0..200u64 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            match c.route_stats_faulty(from, key, &plan, MsgId::first(i)) {
                Ok(r) => assert_eq!(r.hops, 0, "only 0-hop local lookups can survive"),
                Err(DhtError::MessageDropped { hops }) => {
                    assert_eq!(hops, 0, "the very first forwarding must drop");
                    dropped += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(dropped > 150, "most lookups are multi-hop: {dropped}");
    }

    #[test]
    fn dead_hop_reported_when_plan_fails_every_node() {
        let c = net(64);
        // drop nothing, fail everything: the first forwarding dies on the
        // (plan-)dead target.
        let plan = FaultPlan::new(2, 0.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(19);
        let mut dead = 0;
        for i in 0..100u64 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            match c.route_stats_faulty(from, key, &plan, MsgId::first(i)) {
                Ok(r) => assert_eq!(r.hops, 0),
                Err(DhtError::DeadHop { hops }) => {
                    assert_eq!(hops, 0);
                    dead += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(dead > 70, "most lookups hit the dead first hop: {dead}");
    }

    #[test]
    fn faulty_routing_is_deterministic() {
        let c = net(300);
        let plan = FaultPlan::new(5, 0.15, 0.1).unwrap();
        let mut rng = SmallRng::seed_from_u64(20);
        let probes: Vec<(NodeIdx, u64)> =
            (0..200).map(|_| (c.random_node(&mut rng).unwrap(), rng.gen())).collect();
        for (i, &(from, key)) in probes.iter().enumerate() {
            let a = c.route_stats_faulty(from, key, &plan, MsgId::first(i as u64));
            let b = c.route_stats_faulty(from, key, &plan, MsgId::first(i as u64));
            assert_eq!(a, b, "same plan + message identity must replay identically");
        }
    }

    #[test]
    fn path_contains_no_duplicates() {
        let c = net(512);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let from = c.random_node(&mut rng).unwrap();
            let key: u64 = rng.gen();
            let r = c.route(from, key).unwrap();
            let mut p = r.path.clone();
            p.sort_unstable();
            p.dedup();
            assert_eq!(p.len(), r.path.len(), "routing revisited a node");
        }
    }
}
