//! # chord — a Chord DHT overlay simulator
//!
//! A faithful, message-level implementation of the Chord protocol
//! (Stoica et al., *IEEE/ACM ToN* 2003) over the 64-bit identifier ring of
//! `dht_core`. The paper under reproduction uses Chord as the substrate
//! for all three baseline systems: Mercury's per-attribute hubs, SWORD's
//! single flat DHT, and MAAN's single flat DHT.
//!
//! What is implemented:
//!
//! * successor/predecessor pointers, successor lists, and a full 64-entry
//!   finger table per node (distinct live fingers collapse, so the
//!   *distinct outlink* count is `O(log n)` — the quantity Figure 3(a)
//!   plots);
//! * greedy iterative routing via `closest_preceding_node`, tracing every
//!   hop, with dead-node skipping through the successor list;
//! * node join, graceful leave, and abrupt failure;
//! * `stabilize` / `fix_fingers` repair, run either per-node or
//!   network-wide (the simulator's clock tick);
//! * clockwise/counter-clockwise ring walks (used by Mercury and MAAN for
//!   range probing).
//!
//! Routing decisions use **only node-local state**; global knowledge is
//! used exclusively for ground-truth assertions (`owner_of`) and fast
//! network construction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod network;
mod node;
mod routing;

pub use network::{Chord, ChordConfig, SuccessorStaleness};
pub use node::ChordNode;
