//! The Chord network: arena of nodes, construction, churn, repair.

use crate::node::{ChordNode, FINGER_BITS};
use dht_core::{BuildMode, ConsistentHash, DhtError, NodeIdx, Overlay, RouteResult, RouteStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Sentinel for "no link" in the flat link arrays (`u32::MAX` — the arena
/// is capped well below it).
pub(crate) const NO_LINK: u32 = u32::MAX;

/// Construction parameters for a [`Chord`] overlay.
#[derive(Debug, Clone, Copy)]
pub struct ChordConfig {
    /// Successor-list length `r` (Chord survives up to `r-1` consecutive
    /// failures between repairs). The paper's static experiments are
    /// insensitive to this; churn experiments use the default.
    pub succ_list_len: usize,
    /// Seed for identifier assignment.
    pub seed: u64,
}

impl Default for ChordConfig {
    fn default() -> Self {
        Self { succ_list_len: 4, seed: 0x1CEB00DA }
    }
}

/// A Chord overlay network.
///
/// Nodes live in an arena; departed nodes are tomb-stoned, never reused,
/// so `NodeIdx` values stay valid for the lifetime of an experiment.
///
/// Node state is stored struct-of-arrays: parallel flat `Vec`s indexed by
/// arena slot, with link arrays (`fingers`, `succs`) strided per node and
/// holding `u32` arena slots. A million-node ring is therefore ~7
/// contiguous allocations (~300 MB, dominated by the 64-entry finger
/// stride) instead of a million boxed nodes, and cloning the overlay — the
/// bed-snapshot hot path — is a handful of `memcpy`s.
///
/// ```
/// use chord::{Chord, ChordConfig};
/// use dht_core::Overlay;
///
/// let net = Chord::build(64, ChordConfig::default());
/// let from = net.nodes_by_id()[0];
/// let route = net.route(from, 0xDEADBEEF).unwrap();
/// assert!(route.exact, "stabilized lookups land on the owner");
/// assert_eq!(route.terminal, net.owner_of(0xDEADBEEF).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Chord {
    /// Ring identifier per arena slot.
    ids: Vec<u64>,
    /// Liveness flag per arena slot (false = tomb-stoned).
    alive: Vec<bool>,
    /// Predecessor per arena slot ([`NO_LINK`] = unknown).
    preds: Vec<u32>,
    /// Finger tables, strided [`FINGER_BITS`] per slot; `fingers[s*64+i]`
    /// targets `successor(id + 2^i)`. Entries may be stale after churn
    /// until `fix_fingers` runs; [`NO_LINK`] = unset.
    fingers: Vec<u32>,
    /// Successor lists, strided `cfg.succ_list_len` per slot; only the
    /// first `succ_lens[s]` entries are meaningful.
    succs: Vec<u32>,
    /// Live length of each slot's successor list.
    succ_lens: Vec<u8>,
    cfg: ChordConfig,
    /// Live node indices sorted by ring id — ground truth for `owner_of`
    /// and for fast bulk construction. Never consulted by routing.
    sorted: Vec<NodeIdx>,
    /// Every identifier ever assigned (live nodes + tombstones), kept as
    /// a sorted flat `Vec` — membership is a binary search, and cloning
    /// the overlay (bed snapshots) is one `memcpy` instead of a tree
    /// rebuild. Ordered inserts are O(n) but only run on genuine runtime
    /// join/tombstone events — initial beds go through [`Chord::build`]'s
    /// bulk path, which sorts once.
    used_ids: Vec<u64>,
    rng: SmallRng,
    /// Mutation epoch: strictly increases on every write to routing state
    /// (membership, successor lists, predecessors, fingers). The route
    /// cache stamps entries with it; see [`Overlay::epoch`]. Starts at 1
    /// so the cache can use 0 as its empty-slot sentinel. A cache must
    /// serve a single overlay instance — two clones that diverge after
    /// copying the same epoch must not share one.
    epoch: u64,
}

/// Successor staleness sampled over every live node's node-local view —
/// see [`Chord::successor_staleness`]. All fields are plain counts so
/// callers can aggregate over maintenance rounds without rounding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuccessorStaleness {
    /// Live nodes sampled (nodes with a non-empty successor list).
    pub live: usize,
    /// Nodes whose *first* successor entry points at a dead node — the
    /// per-node pointer staleness of Krishnamurthy et al.
    pub stale_first: usize,
    /// Nodes whose *entire* successor list is dead (a lookup arriving
    /// here cannot make forward progress until repair).
    pub exhausted: usize,
    /// Dead entries summed over all sampled successor lists.
    pub dead_entries: usize,
    /// Total entries summed over all sampled successor lists.
    pub entries: usize,
}

/// Can an arena of `len` slots grow by `extra` without leaving `u32`
/// slot range? [`NO_LINK`] (`u32::MAX`) is reserved as the sentinel, so
/// the largest usable slot index is `u32::MAX - 1`.
pub(crate) fn arena_has_capacity(len: usize, extra: usize) -> bool {
    len.checked_add(extra).is_some_and(|total| total <= NO_LINK as usize)
}

impl Chord {
    /// An empty overlay.
    ///
    /// # Panics
    /// If `cfg.succ_list_len` is 0 or exceeds `u8::MAX` (list lengths are
    /// stored per-slot as `u8`).
    pub fn new(cfg: ChordConfig) -> Self {
        assert!(
            cfg.succ_list_len >= 1 && cfg.succ_list_len <= u8::MAX as usize,
            "succ_list_len must be in 1..=255 (stored per-slot as u8), got {}",
            cfg.succ_list_len
        );
        Self {
            ids: Vec::new(),
            alive: Vec::new(),
            preds: Vec::new(),
            fingers: Vec::new(),
            succs: Vec::new(),
            succ_lens: Vec::new(),
            cfg,
            sorted: Vec::new(),
            used_ids: Vec::new(),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xC0FFEE),
            epoch: 1,
        }
    }

    /// Advance the mutation epoch. Every function that writes routing
    /// state calls this (the `epoch-bump` lint enforces it); redundant
    /// bumps along one public operation are harmless — only strict
    /// increase matters.
    #[inline]
    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Bulk-construct a fully stabilized network of `n` nodes with random
    /// distinct identifiers. This is the fast O(n log n) path used to set
    /// up static experiments; incremental joins exercise the protocol
    /// path. Equivalent to `build_with_mode(n, cfg, BuildMode::Bulk)`.
    pub fn build(n: usize, cfg: ChordConfig) -> Self {
        Self::build_with_mode(n, cfg, BuildMode::Bulk)
    }

    /// Construct a fully stabilized network with an explicit build mode.
    /// Both modes draw the same identifier sequence and produce
    /// byte-identical overlays; `Incremental` is the O(n²)-aggregate
    /// reference path kept for validating the bulk constructor.
    pub fn build_with_mode(n: usize, cfg: ChordConfig, mode: BuildMode) -> Self {
        let mut net = Self::new(cfg);
        match mode {
            BuildMode::Bulk => net.bulk_join(n),
            BuildMode::Incremental => {
                let hash = ConsistentHash::new(cfg.seed);
                for i in 0..n {
                    let mut id = hash.hash_u64(i as u64);
                    while net.id_used(id) {
                        id = id.wrapping_add(0x9e3779b97f4a7c15);
                    }
                    net.push_node(id);
                }
            }
        }
        net.rebuild_all_state();
        net
    }

    /// Assemble the initial membership in one sorted pass: draw all `n`
    /// identifiers (same collision-probing sequence as the incremental
    /// path, against a `BTreeSet` instead of repeated ordered `Vec`
    /// inserts), push the arena rows in draw order, then derive `used_ids`
    /// and the sorted ring by sorting once — O(n log n) total where the
    /// per-join inserts were O(n²) aggregate.
    fn bulk_join(&mut self, n: usize) {
        debug_assert!(self.ids.is_empty(), "bulk join only assembles fresh overlays");
        self.bump_epoch();
        let hash = ConsistentHash::new(self.cfg.seed);
        let mut taken: BTreeSet<u64> = BTreeSet::new();
        let mut drawn: Vec<u64> = Vec::with_capacity(n);
        for i in 0..n {
            let mut id = hash.hash_u64(i as u64);
            while !taken.insert(id) {
                id = id.wrapping_add(0x9e3779b97f4a7c15);
            }
            drawn.push(id);
        }
        self.reserve_arena(n);
        for &id in &drawn {
            self.push_arena(id, true);
        }
        self.used_ids = taken.into_iter().collect();
        let mut sorted: Vec<NodeIdx> = (0..n).map(NodeIdx).collect();
        sorted.sort_unstable_by_key(|&i| self.ids[i.0]);
        self.sorted = sorted;
    }

    /// Is `id` already assigned (live node or reserved tombstone)?
    fn id_used(&self, id: u64) -> bool {
        self.used_ids.binary_search(&id).is_ok()
    }

    /// Record `id` as assigned, keeping `used_ids` sorted.
    fn record_id(&mut self, id: u64) {
        if let Err(pos) = self.used_ids.binary_search(&id) {
            self.used_ids.insert(pos, id);
        }
    }

    /// Size of the node arena (live + tomb-stoned slots). Directory
    /// bookkeeping in higher layers indexes by arena slot.
    pub fn arena_len(&self) -> usize {
        self.ids.len()
    }

    /// Configuration the network was built with.
    pub fn config(&self) -> &ChordConfig {
        &self.cfg
    }

    /// Pre-size every parallel array for `extra` more slots.
    fn reserve_arena(&mut self, extra: usize) {
        self.ids.reserve(extra);
        self.alive.reserve(extra);
        self.preds.reserve(extra);
        self.succ_lens.reserve(extra);
        self.succs.reserve(extra * self.cfg.succ_list_len);
        self.fingers.reserve(extra * FINGER_BITS);
    }

    /// Append one blank arena row (no links yet).
    ///
    /// # Panics
    /// If the arena would exceed `u32` slot range — slots are stored as
    /// `u32` in the link arrays, with [`NO_LINK`] reserved. A hard assert,
    /// not a debug one: a release-mode wrap here would silently alias
    /// slot 0 at the million-node scales the sweeps run.
    fn push_arena(&mut self, id: u64, alive: bool) -> NodeIdx {
        assert!(
            arena_has_capacity(self.ids.len(), 1),
            "arena exceeds u32 slot range ({} slots, NO_LINK reserved)",
            self.ids.len()
        );
        self.bump_epoch();
        let idx = NodeIdx(self.ids.len());
        self.ids.push(id);
        self.alive.push(alive);
        self.preds.push(NO_LINK);
        self.succ_lens.push(0);
        self.succs.resize(self.succs.len() + self.cfg.succ_list_len, NO_LINK);
        self.fingers.resize(self.fingers.len() + FINGER_BITS, NO_LINK);
        idx
    }

    // --- flat-array accessors (crate-internal; the routing hot loop and
    // the `ChordNode` view both read through these) ---

    #[inline]
    pub(crate) fn id_at(&self, slot: usize) -> u64 {
        self.ids[slot]
    }

    #[inline]
    pub(crate) fn alive_at(&self, slot: usize) -> bool {
        self.alive[slot]
    }

    #[inline]
    pub(crate) fn pred_at(&self, slot: usize) -> Option<NodeIdx> {
        let p = self.preds[slot];
        (p != NO_LINK).then_some(NodeIdx(p as usize))
    }

    /// The meaningful prefix of `slot`'s successor list. The prefix never
    /// holds [`NO_LINK`]: `write_succs` and `rebuild_all_state` only count
    /// real links into `succ_lens`.
    #[inline]
    pub(crate) fn raw_succs(&self, slot: usize) -> &[u32] {
        let r = self.cfg.succ_list_len;
        let prefix = &self.succs[slot * r..slot * r + self.succ_lens[slot] as usize];
        debug_assert!(
            prefix.iter().all(|&s| s != NO_LINK),
            "succ_lens counted a NO_LINK entry for slot {slot}"
        );
        prefix
    }

    /// The full [`FINGER_BITS`] finger stride of `slot` (entries may be
    /// [`NO_LINK`] on nodes that never stabilized — callers filter).
    #[inline]
    pub(crate) fn raw_fingers(&self, slot: usize) -> &[u32] {
        // lint:allow(sentinel-guard): returns the raw stride; NO_LINK
        // entries are part of the contract and every caller filters them
        &self.fingers[slot * FINGER_BITS..(slot + 1) * FINGER_BITS]
    }

    /// Overwrite `slot`'s successor list (truncating to the configured
    /// length; the tail of the stride is cleared).
    fn write_succs(&mut self, slot: usize, list: &[u32]) {
        self.bump_epoch();
        let r = self.cfg.succ_list_len;
        let n = list.len().min(r);
        self.succs[slot * r..slot * r + n].copy_from_slice(&list[..n]);
        for e in &mut self.succs[slot * r + n..(slot + 1) * r] {
            *e = NO_LINK;
        }
        // lint:allow(panic-hygiene): n ≤ succ_list_len ≤ u8::MAX is
        // asserted in `Chord::new`, so this narrowing cannot fail.
        self.succ_lens[slot] = u8::try_from(n).expect("succ_list_len capped at u8::MAX");
    }

    /// Overwrite `slot`'s successor list from `NodeIdx` values (tests that
    /// plant adversarial list shapes).
    #[cfg(test)]
    pub(crate) fn set_successor_list(&mut self, idx: NodeIdx, list: &[NodeIdx]) {
        let raw: Vec<u32> = list.iter().map(|&i| i.0 as u32).collect();
        self.write_succs(idx.0, &raw);
    }

    /// Reserve an arena slot as a tombstone: the slot counts towards
    /// `arena_len` but never participates in the ring. Used to keep
    /// multiple overlays' arenas in lock-step when a coordinated join
    /// partially fails (see Mercury's join rollback).
    ///
    /// The tombstone's identifier is drawn collision-free and recorded in
    /// `used_ids` (tombstones never retire, so the id stays reserved) —
    /// otherwise a later [`Chord::join`] could draw the same id and put
    /// two arena nodes on one ring position.
    pub fn reserve_tombstone(&mut self) -> NodeIdx {
        let mut id = self.rng.gen::<u64>();
        while self.id_used(id) {
            id = id.wrapping_add(0x9e3779b97f4a7c15);
        }
        self.record_id(id);
        self.push_arena(id, false)
    }

    fn push_node(&mut self, id: u64) -> NodeIdx {
        self.bump_epoch();
        let idx = self.push_arena(id, true);
        self.record_id(id);
        let pos = self.sorted.partition_point(|&j| self.ids[j.0] < id);
        self.sorted.insert(pos, idx);
        debug_assert!(
            self.sorted.windows(2).all(|w| self.ids[w[0].0] < self.ids[w[1].0]),
            "sorted ring order broken by insert"
        );
        idx
    }

    /// Recompute every node's successor list, predecessor and fingers from
    /// ground truth (perfect stabilization). Used by `build` and by tests.
    pub fn rebuild_all_state(&mut self) {
        self.bump_epoch();
        let n = self.sorted.len();
        if n == 0 {
            return;
        }
        debug_assert!(
            self.sorted.iter().all(|&i| self.alive[i.0]),
            "sorted ring must hold only live nodes"
        );
        // Flat copies of the ring: the n·64 finger binary-searches below
        // run over contiguous arrays instead of chasing `sorted[m].0`
        // indirections per probe (bulk construction is the dominant cost
        // of building Mercury's m hubs).
        let live: Vec<u32> = self.sorted.iter().map(|&i| i.0 as u32).collect();
        let ids: Vec<u64> = self.sorted.iter().map(|&i| self.ids[i.0]).collect();
        let r = self.cfg.succ_list_len;
        let k_max = r.min(n.saturating_sub(1)).max(1);
        // lint:allow(panic-hygiene): k_max ≤ succ_list_len ≤ u8::MAX is
        // asserted in `Chord::new`, so this narrowing cannot fail.
        let k_len = u8::try_from(k_max).expect("succ_list_len capped at u8::MAX");
        for pos in 0..n {
            let slot = live[pos] as usize;
            for k in 1..=k_max {
                self.succs[slot * r + k - 1] = live[(pos + k) % n];
            }
            for e in &mut self.succs[slot * r + k_max..(slot + 1) * r] {
                *e = NO_LINK;
            }
            self.succ_lens[slot] = k_len;
            self.preds[slot] = live[(pos + n - 1) % n];
            let id = ids[pos];
            let frow = &mut self.fingers[slot * FINGER_BITS..(slot + 1) * FINGER_BITS];
            for (i, f) in frow.iter_mut().enumerate() {
                let target = id.wrapping_add(1u64 << i);
                let fpos = ids.partition_point(|&v| v < target);
                *f = live[fpos % n];
            }
        }
    }

    /// Ground-truth owner (first live node clockwise from `key`, the node
    /// whose interval `(pred, id]` contains `key`).
    fn true_owner(&self, key: u64) -> NodeIdx {
        debug_assert!(!self.sorted.is_empty());
        let pos = self.sorted.partition_point(|&j| self.ids[j.0] < key);
        self.sorted[pos % self.sorted.len()]
    }

    /// Borrow a node's state (a view over the flat arena arrays).
    pub fn node(&self, idx: NodeIdx) -> Result<ChordNode<'_>, DhtError> {
        if idx.0 < self.ids.len() {
            Ok(ChordNode { net: self, slot: idx.0 })
        } else {
            Err(DhtError::NodeNotFound { index: idx.0 })
        }
    }

    fn check_live(&self, idx: NodeIdx) -> Result<(), DhtError> {
        if *self.alive.get(idx.0).unwrap_or(&false) {
            Ok(())
        } else {
            Err(DhtError::NodeNotFound { index: idx.0 })
        }
    }

    /// Identifier of `idx`.
    pub fn id_of(&self, idx: NodeIdx) -> Result<u64, DhtError> {
        self.ids.get(idx.0).copied().ok_or(DhtError::NodeNotFound { index: idx.0 })
    }

    /// First *alive* entry of `idx`'s successor list (node-local view).
    pub fn next_clockwise(&self, idx: NodeIdx) -> Result<NodeIdx, DhtError> {
        self.check_live(idx)?;
        self.raw_succs(idx.0)
            .iter()
            .copied()
            .find(|&s| self.alive[s as usize])
            .map(|s| NodeIdx(s as usize))
            .ok_or(DhtError::EmptyOverlay)
    }

    /// Predecessor pointer if alive (node-local view). Range probes that
    /// walk counter-clockwise use this; a dead predecessor stalls the walk
    /// until stabilization, exactly as in the real protocol.
    pub fn next_counterclockwise(&self, idx: NodeIdx) -> Result<NodeIdx, DhtError> {
        self.check_live(idx)?;
        match self.preds[idx.0] {
            p if p != NO_LINK && self.alive[p as usize] => Ok(NodeIdx(p as usize)),
            _ => Err(DhtError::EmptyOverlay),
        }
    }

    /// Append up to `k - 1` replica targets for live node `idx`: the first
    /// distinct *alive* entries of its successor list, never `idx` itself.
    ///
    /// The result at degree `k` is a prefix of the result at `k + 1`
    /// (successor-list placement is a prefix rule), which makes piece
    /// survival monotone in the replication degree. Right after
    /// [`Self::rebuild_all_state`] the list is ground truth, so targets
    /// are the `k - 1` live nodes clockwise of `idx`.
    pub fn replica_targets_into(
        &self,
        idx: NodeIdx,
        k: usize,
        out: &mut Vec<NodeIdx>,
    ) -> Result<(), DhtError> {
        self.check_live(idx)?;
        if k <= 1 {
            return Ok(());
        }
        let want = k - 1;
        let before = out.len();
        for &s in self.raw_succs(idx.0) {
            let slot = s as usize;
            if slot == idx.0 || !self.alive[slot] {
                continue;
            }
            let cand = NodeIdx(slot);
            if out[before..].contains(&cand) {
                continue;
            }
            out.push(cand);
            if out.len() - before == want {
                break;
            }
        }
        Ok(())
    }

    /// Sample successor staleness over every live node's *node-local*
    /// view — the quantities Krishnamurthy et al.'s master-equation
    /// analysis of Chord under churn predicts in closed form. Call just
    /// before a maintenance round: [`Self::rebuild_all_state`] resets
    /// every counter to zero by construction.
    pub fn successor_staleness(&self) -> SuccessorStaleness {
        let mut s = SuccessorStaleness::default();
        for &idx in &self.sorted {
            let succs = self.raw_succs(idx.0);
            if succs.is_empty() {
                continue;
            }
            s.live += 1;
            let dead = succs.iter().filter(|&&x| !self.alive[x as usize]).count();
            // lint:allow(sentinel-guard): raw_succs yields the used
            // prefix (succ_lens-bounded), which never holds NO_LINK.
            if !self.alive[succs[0] as usize] {
                s.stale_first += 1;
            }
            if dead == succs.len() {
                s.exhausted += 1;
            }
            s.dead_entries += dead;
            s.entries += succs.len();
        }
        s
    }

    /// Join a new node with a random identifier, bootstrapping through
    /// `bootstrap`. Returns the new node's index.
    ///
    /// Only the new node's state and its neighbors' immediate pointers are
    /// updated — everyone else's fingers stay stale until [`Self::stabilize_all`]
    /// or per-node repair runs, as in the real protocol.
    pub fn join(&mut self, bootstrap: NodeIdx) -> Result<NodeIdx, DhtError> {
        let mut id = self.rng.gen::<u64>();
        while self.id_used(id) {
            id = id.wrapping_add(0x9e3779b97f4a7c15);
        }
        self.join_with_id(bootstrap, id)
    }

    /// Join with an explicit identifier (tests, adversarial placements).
    pub fn join_with_id(&mut self, bootstrap: NodeIdx, id: u64) -> Result<NodeIdx, DhtError> {
        if self.id_used(id) {
            return Err(DhtError::IdSpaceExhausted);
        }
        self.check_live(bootstrap)?;
        self.bump_epoch();
        // Find the successor of the new id by routing from the bootstrap
        // (untraced: only the terminal matters).
        let succ = self.route_stats_from(bootstrap, id)?.terminal;
        let idx = self.push_node(id);
        let r = self.cfg.succ_list_len;
        // Splice: new node's successor list comes from succ.
        let mut slist: Vec<u32> = Vec::with_capacity(r);
        slist.push(succ.0 as u32);
        slist.extend(self.raw_succs(succ.0).iter().copied().take(r - 1));
        let pred = self.preds[succ.0];
        self.write_succs(idx.0, &slist);
        self.preds[idx.0] = pred;
        self.preds[succ.0] = idx.0 as u32;
        if pred != NO_LINK && self.alive[pred as usize] {
            let p = pred as usize;
            let mut plist: Vec<u32> = Vec::with_capacity(r + 1);
            plist.push(idx.0 as u32);
            plist.extend(self.raw_succs(p).iter().copied());
            self.write_succs(p, &plist);
        }
        // Initialize fingers by routing (the joining node's own lookups,
        // untraced — 64 of them per join). Buffered and written at the
        // end: the lookups must see the new node's table empty, exactly as
        // the protocol's not-yet-initialized joiner would answer.
        let mut frow = [NO_LINK; FINGER_BITS];
        for (i, f) in frow.iter_mut().enumerate() {
            let target = id.wrapping_add(1u64 << i);
            *f = self.route_stats_from(succ, target).map(|r| r.terminal).unwrap_or(succ).0 as u32;
        }
        self.fingers[idx.0 * FINGER_BITS..(idx.0 + 1) * FINGER_BITS].copy_from_slice(&frow);
        Ok(idx)
    }

    fn retire(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        self.check_live(idx)?;
        self.bump_epoch();
        self.alive[idx.0] = false;
        let id = self.ids[idx.0];
        if let Ok(pos) = self.used_ids.binary_search(&id) {
            self.used_ids.remove(pos);
        }
        if let Ok(pos) = self.sorted.binary_search_by(|&j| self.ids[j.0].cmp(&id)) {
            self.sorted.remove(pos);
        }
        Ok(())
    }

    /// Graceful departure: the node tells its neighbors, who splice it out
    /// immediately. Other nodes' fingers stay stale until repair.
    pub fn leave(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        self.check_live(idx)?;
        self.bump_epoch();
        let succ_list: Vec<u32> = self.raw_succs(idx.0).to_vec();
        let pred_raw = self.preds[idx.0];
        self.retire(idx)?;
        let succ = succ_list.iter().copied().find(|&s| self.alive[s as usize]);
        let pred = (pred_raw != NO_LINK && self.alive[pred_raw as usize]).then_some(pred_raw);
        if let (Some(s), Some(p)) = (succ, pred) {
            if s as usize != idx.0 && p as usize != idx.0 {
                self.preds[s as usize] = p;
                let pi = p as usize;
                let mut list: Vec<u32> =
                    self.raw_succs(pi).iter().copied().filter(|&x| x as usize != idx.0).collect();
                list.insert(0, s);
                // Order-preserving seen-set dedup: `Vec::dedup` only
                // removes *adjacent* duplicates, so a non-adjacent copy of
                // the spliced-in successor (or any stale repeat) would
                // survive and waste a repair slot. The list is at most
                // `succ_list_len + 1` long, so the quadratic scan is free.
                let mut keep = 0;
                for i in 0..list.len() {
                    let x = list[i];
                    if !list[..keep].contains(&x) {
                        list[keep] = x;
                        keep += 1;
                    }
                }
                list.truncate(keep);
                self.write_succs(pi, &list);
            }
        }
        Ok(())
    }

    /// Abrupt failure: the node vanishes without notifying anyone.
    pub fn fail(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        self.retire(idx)
    }

    /// One round of the Chord stabilization protocol for `idx`:
    /// refresh the successor (adopting the successor's predecessor when it
    /// sits between), repair the successor list, and re-notify.
    pub fn stabilize(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        self.check_live(idx)?;
        self.bump_epoch();
        let my_id = self.ids[idx.0];
        // First alive successor-list entry becomes the working successor.
        let first_alive = self.raw_succs(idx.0).iter().copied().find(|&s| self.alive[s as usize]);
        let Some(mut succ) = first_alive.map(|s| s as usize) else {
            // Total successor loss: re-bootstrap from ground truth would be
            // cheating; the real protocol falls back to the finger table.
            let fallback = self
                .raw_fingers(idx.0)
                .iter()
                .copied()
                .filter(|&f| f != NO_LINK)
                .find(|&f| self.alive[f as usize] && f as usize != idx.0);
            match fallback {
                Some(f) => {
                    self.write_succs(idx.0, &[f]);
                    return Ok(());
                }
                None => return Err(DhtError::EmptyOverlay),
            }
        };
        // Adopt successor's predecessor if it lies in (me, succ).
        let sp = self.preds[succ];
        if sp != NO_LINK {
            let p = sp as usize;
            if p != idx.0
                && self.alive[p]
                && dht_core::in_interval_oo(my_id, self.ids[succ], self.ids[p])
            {
                succ = p;
            }
        }
        // Rebuild successor list from succ's list.
        let r = self.cfg.succ_list_len;
        let mut slist: Vec<u32> = Vec::with_capacity(r);
        slist.push(succ as u32);
        for &s in self.raw_succs(succ) {
            if slist.len() >= r {
                break;
            }
            if self.alive[s as usize] && s as usize != idx.0 && !slist.contains(&s) {
                slist.push(s);
            }
        }
        self.write_succs(idx.0, &slist);
        // Notify: succ adopts me as predecessor if better.
        let adopt = match self.preds[succ] {
            NO_LINK => true,
            p if !self.alive[p as usize] => true,
            p => dht_core::in_interval_oo(self.ids[p as usize], self.ids[succ], my_id),
        };
        if adopt {
            self.preds[succ] = idx.0 as u32;
        }
        Ok(())
    }

    /// Recompute every finger of `idx` by issuing lookups through the
    /// current (possibly stale) overlay state.
    pub fn fix_fingers(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        self.check_live(idx)?;
        self.bump_epoch();
        let id = self.ids[idx.0];
        for i in 0..FINGER_BITS {
            let target = id.wrapping_add(1u64 << i);
            if let Ok(r) = self.route_stats_from(idx, target) {
                self.fingers[idx.0 * FINGER_BITS + i] = r.terminal.0 as u32;
            }
        }
        Ok(())
    }

    /// Run one stabilization + finger-repair round on every live node.
    pub fn stabilize_all(&mut self) {
        // Owned snapshot: stabilization mutates node state while iterating.
        let live: Vec<NodeIdx> = self.sorted.clone();
        for &idx in &live {
            if self.alive[idx.0] {
                let _ = self.stabilize(idx);
            }
        }
        for &idx in &live {
            if self.alive[idx.0] {
                let _ = self.fix_fingers(idx);
            }
        }
    }

    /// Live node indices sorted by ring identifier.
    pub fn nodes_by_id(&self) -> &[NodeIdx] {
        &self.sorted
    }

    /// Pick a uniformly random live node.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeIdx> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted[rng.gen_range(0..self.sorted.len())])
        }
    }

    /// Distinct links of `slot`: fingers ∪ successor list ∪ predecessor,
    /// sorted and deduplicated (unfiltered for liveness).
    fn distinct_neighbors(&self, slot: usize) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .raw_fingers(slot)
            .iter()
            .chain(self.raw_succs(slot).iter())
            .chain(self.preds[slot..=slot].iter())
            .copied()
            .filter(|&x| x != NO_LINK)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl Overlay for Chord {
    type Key = u64;

    fn len(&self) -> usize {
        self.sorted.len()
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn key_bits(&self, key: u64) -> u64 {
        key
    }

    fn live_nodes(&self) -> &[NodeIdx] {
        &self.sorted
    }

    fn owner_of(&self, key: u64) -> Result<NodeIdx, DhtError> {
        if self.sorted.is_empty() {
            return Err(DhtError::EmptyOverlay);
        }
        Ok(self.true_owner(key))
    }

    fn route(&self, from: NodeIdx, key: u64) -> Result<RouteResult, DhtError> {
        self.route_from(from, key)
    }

    fn route_stats(&self, from: NodeIdx, key: u64) -> Result<RouteStats, DhtError> {
        self.route_stats_from(from, key)
    }

    fn route_stats_faulty(
        &self,
        from: NodeIdx,
        key: u64,
        plan: &dht_core::FaultPlan,
        msg: dht_core::MsgId,
    ) -> Result<RouteStats, DhtError> {
        // Inert plans take the plain fast path: zero-fault runs must be
        // byte-identical to fault-free runs.
        if plan.is_inert() {
            return self.route_stats_from(from, key);
        }
        self.route_stats_faulty_from(from, key, plan, msg)
    }

    fn outlinks(&self, node: NodeIdx) -> Result<usize, DhtError> {
        self.check_live(node)?;
        Ok(self
            .distinct_neighbors(node.0)
            .iter()
            .filter(|&&x| self.alive[x as usize] && x as usize != node.0)
            .count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Chord {
        Chord::build(n, ChordConfig::default())
    }

    #[test]
    fn build_sets_ring_invariants() {
        let c = net(64);
        assert_eq!(c.len(), 64);
        for &idx in c.nodes_by_id() {
            let node = c.node(idx).unwrap();
            assert!(node.is_alive());
            assert!(node.successor().is_some());
            assert!(node.predecessor().is_some());
            assert_eq!(node.fingers().len(), FINGER_BITS);
        }
    }

    #[test]
    fn arena_capacity_guards_u32_boundary() {
        // The arena can fill every representable u32 slot except the
        // NO_LINK sentinel itself: u32::MAX slots total (indices
        // 0..=u32::MAX-1), one more is a wrap.
        let max = u32::MAX as usize;
        assert!(arena_has_capacity(max - 1, 1));
        assert!(arena_has_capacity(max, 0));
        assert!(!arena_has_capacity(max, 1));
        assert!(!arena_has_capacity(max - 1, 2));
        assert!(!arena_has_capacity(usize::MAX, 1), "checked_add overflow must fail closed");
    }

    #[test]
    fn succ_list_len_at_u8_boundary_builds() {
        // 255 is the largest storable list length; with n=8 nodes the
        // effective length is n-1, but the config cap itself must pass.
        let c = Chord::build(8, ChordConfig { succ_list_len: 255, seed: 7 });
        for &idx in c.nodes_by_id() {
            assert_eq!(c.raw_succs(idx.0).len(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "succ_list_len must be in 1..=255")]
    fn succ_list_len_past_u8_boundary_is_rejected() {
        let _ = Chord::new(ChordConfig { succ_list_len: 256, seed: 7 });
    }

    #[test]
    #[should_panic(expected = "succ_list_len must be in 1..=255")]
    fn succ_list_len_zero_is_rejected() {
        let _ = Chord::new(ChordConfig { succ_list_len: 0, seed: 7 });
    }

    #[test]
    fn bulk_and_incremental_builds_are_identical() {
        for n in [1usize, 2, 5, 64, 257] {
            let cfg = ChordConfig::default();
            let bulk = Chord::build_with_mode(n, cfg, BuildMode::Bulk);
            let inc = Chord::build_with_mode(n, cfg, BuildMode::Incremental);
            assert_eq!(bulk.ids, inc.ids, "arena order diverged at n={n}");
            assert_eq!(bulk.used_ids, inc.used_ids);
            assert_eq!(bulk.sorted, inc.sorted);
            assert_eq!(bulk.preds, inc.preds);
            assert_eq!(bulk.succs, inc.succs);
            assert_eq!(bulk.succ_lens, inc.succ_lens);
            assert_eq!(bulk.fingers, inc.fingers);
        }
    }

    #[test]
    fn successor_is_next_by_id() {
        let c = net(32);
        let ids = c.nodes_by_id();
        for (pos, &idx) in ids.iter().enumerate() {
            let succ = c.node(idx).unwrap().successor().unwrap();
            assert_eq!(succ, ids[(pos + 1) % ids.len()]);
        }
    }

    #[test]
    fn predecessor_is_prev_by_id() {
        let c = net(32);
        let ids = c.nodes_by_id();
        for (pos, &idx) in ids.iter().enumerate() {
            let pred = c.node(idx).unwrap().predecessor().unwrap();
            assert_eq!(pred, ids[(pos + ids.len() - 1) % ids.len()]);
        }
    }

    #[test]
    fn owner_of_is_clockwise_successor_of_key() {
        let c = net(16);
        for &idx in c.nodes_by_id() {
            let id = c.id_of(idx).unwrap();
            assert_eq!(c.owner_of(id).unwrap(), idx, "node owns its own id");
            // key one past a node belongs to the next node
            let next = c.next_clockwise(idx).unwrap();
            assert_eq!(c.owner_of(id.wrapping_add(1)).unwrap(), next);
        }
    }

    #[test]
    fn outlinks_scale_logarithmically() {
        let small = net(64);
        let large = net(4096);
        let avg = |c: &Chord| {
            let total: usize = c.live_nodes().iter().map(|&i| c.outlinks(i).unwrap()).sum();
            total as f64 / c.len() as f64
        };
        let a = avg(&small);
        let b = avg(&large);
        // log2(64)=6, log2(4096)=12: expect roughly doubled, clearly not 64x.
        assert!(b > a + 2.0, "outlinks should grow with log n: {a} -> {b}");
        assert!(b < a * 4.0, "outlinks must stay logarithmic: {a} -> {b}");
    }

    #[test]
    fn clockwise_walk_visits_every_node_once() {
        let c = net(40);
        let start = c.nodes_by_id()[0];
        let mut cur = start;
        let mut seen = std::collections::HashSet::new();
        loop {
            assert!(seen.insert(cur), "walk revisited {cur}");
            cur = c.next_clockwise(cur).unwrap();
            if cur == start {
                break;
            }
        }
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn graceful_leave_splices_ring() {
        let mut c = net(10);
        let victim = c.nodes_by_id()[3];
        let pred = c.node(victim).unwrap().predecessor().unwrap();
        let succ = c.node(victim).unwrap().successor().unwrap();
        c.leave(victim).unwrap();
        assert_eq!(c.len(), 9);
        assert_eq!(c.next_clockwise(pred).unwrap(), succ);
        assert_eq!(c.node(succ).unwrap().predecessor().unwrap(), pred);
        assert!(!c.node(victim).unwrap().is_alive());
    }

    #[test]
    fn leave_twice_errors() {
        let mut c = net(5);
        let v = c.nodes_by_id()[0];
        c.leave(v).unwrap();
        assert!(c.leave(v).is_err());
    }

    #[test]
    fn join_inserts_in_order() {
        let mut c = net(8);
        let boot = c.nodes_by_id()[0];
        let idx = c.join(boot).unwrap();
        assert_eq!(c.len(), 9);
        let id = c.id_of(idx).unwrap();
        assert_eq!(c.owner_of(id).unwrap(), idx);
        // ring pointers around the new node are consistent
        let succ = c.node(idx).unwrap().successor().unwrap();
        assert_eq!(c.node(succ).unwrap().predecessor().unwrap(), idx);
    }

    #[test]
    fn join_with_duplicate_id_rejected() {
        let mut c = net(4);
        let boot = c.nodes_by_id()[0];
        let id = c.id_of(boot).unwrap();
        assert_eq!(c.join_with_id(boot, id), Err(DhtError::IdSpaceExhausted));
    }

    #[test]
    fn stabilize_recovers_from_abrupt_failure() {
        let mut c = net(30);
        let victim = c.nodes_by_id()[7];
        let pred = c.node(victim).unwrap().predecessor().unwrap();
        c.fail(victim).unwrap();
        // pred's immediate successor pointer is now dead; next_clockwise
        // must skip it through the successor list.
        let after = c.next_clockwise(pred).unwrap();
        assert_ne!(after, victim);
        c.stabilize_all();
        // after repair, pred's first successor entry is alive and correct
        let s = c.node(pred).unwrap().successor().unwrap();
        assert!(c.node(s).unwrap().is_alive());
        assert_eq!(s, after);
    }

    #[test]
    fn random_node_is_live() {
        let mut c = net(12);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let n = c.random_node(&mut rng).unwrap();
            assert!(c.node(n).unwrap().is_alive());
        }
        for idx in c.live_nodes_cloned() {
            if c.len() > 1 {
                let _ = c.leave(idx);
            }
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn leave_drops_non_adjacent_duplicate_successor() {
        // Regression: `Vec::dedup` only removes *adjacent* duplicates, so
        // the old leave path kept a stale non-adjacent copy of the
        // spliced-in successor, wasting a successor-list slot.
        let mut c = net(8);
        let victim = c.nodes_by_id()[3];
        let succ = c.nodes_by_id()[4];
        let other = c.nodes_by_id()[5];
        let pred = c.node(victim).unwrap().predecessor().unwrap();
        // Plant a stale copy of `succ` separated from the front by `other`:
        // after the splice inserts `succ` at the head, the list reads
        // [succ, other, succ] — `Vec::dedup` would keep the trailing copy.
        c.set_successor_list(pred, &[victim, other, succ]);
        c.leave(victim).unwrap();
        let after = c.node(pred).unwrap().successor_list();
        assert_eq!(after.iter().filter(|&&x| x == succ).count(), 1, "dup survived: {after:?}");
        assert_eq!(&after[..2], &[succ, other]);
    }

    #[test]
    fn tombstone_id_is_reserved_against_joins() {
        // Regression: `reserve_tombstone` used to draw a random id without
        // consulting or updating `used_ids`, so a later join could draw
        // the same id and put two arena nodes on one ring position.
        let mut c = net(4);
        let boot = c.nodes_by_id()[0];
        let t = c.reserve_tombstone();
        let tid = c.id_of(t).unwrap();
        assert!(!c.node(t).unwrap().is_alive());
        assert!(c.id_used(tid), "tombstone id must be recorded");
        assert_eq!(c.join_with_id(boot, tid), Err(DhtError::IdSpaceExhausted));
        // And the next tombstone cannot collide with an existing node
        // either: force the rng's next draw onto an occupied id by
        // exhausting... (cheaper: just check distinctness over a batch).
        let mut seen: Vec<u64> = c.used_ids.to_vec();
        for _ in 0..32 {
            let t = c.reserve_tombstone();
            seen.push(c.id_of(t).unwrap());
        }
        let n = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n, "tombstone ids must be collision-free");
    }

    #[test]
    fn mutating_ops_strictly_increase_epoch() {
        let mut c = net(16);
        assert!(c.epoch() > 0, "epochs start nonzero (cache empty-slot sentinel)");
        let mut last = c.epoch();
        let mut advanced = |c: &Chord, op: &str| {
            assert!(c.epoch() > last, "{op} must bump the epoch");
            last = c.epoch();
        };
        let boot = c.nodes_by_id()[0];
        let j = c.join(boot).unwrap();
        advanced(&c, "join");
        c.stabilize(j).unwrap();
        advanced(&c, "stabilize");
        c.fix_fingers(j).unwrap();
        advanced(&c, "fix_fingers");
        c.leave(j).unwrap();
        advanced(&c, "leave");
        let v = c.nodes_by_id()[1];
        c.fail(v).unwrap();
        advanced(&c, "fail");
        c.stabilize_all();
        advanced(&c, "stabilize_all");
    }

    #[test]
    fn empty_overlay_owner_errors() {
        let c = Chord::new(ChordConfig::default());
        assert_eq!(c.owner_of(5), Err(DhtError::EmptyOverlay));
        assert!(c.is_empty());
    }
}
