//! The Chord network: arena of nodes, construction, churn, repair.

use crate::node::{ChordNode, FINGER_BITS};
use dht_core::{ConsistentHash, DhtError, NodeIdx, Overlay, RouteResult, RouteStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Construction parameters for a [`Chord`] overlay.
#[derive(Debug, Clone, Copy)]
pub struct ChordConfig {
    /// Successor-list length `r` (Chord survives up to `r-1` consecutive
    /// failures between repairs). The paper's static experiments are
    /// insensitive to this; churn experiments use the default.
    pub succ_list_len: usize,
    /// Seed for identifier assignment.
    pub seed: u64,
}

impl Default for ChordConfig {
    fn default() -> Self {
        Self { succ_list_len: 4, seed: 0x1CEB00DA }
    }
}

/// A Chord overlay network.
///
/// Nodes live in an arena; departed nodes are tomb-stoned, never reused,
/// so `NodeIdx` values stay valid for the lifetime of an experiment.
///
/// ```
/// use chord::{Chord, ChordConfig};
/// use dht_core::Overlay;
///
/// let net = Chord::build(64, ChordConfig::default());
/// let from = net.nodes_by_id()[0];
/// let route = net.route(from, 0xDEADBEEF).unwrap();
/// assert!(route.exact, "stabilized lookups land on the owner");
/// assert_eq!(route.terminal, net.owner_of(0xDEADBEEF).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Chord {
    pub(crate) nodes: Vec<ChordNode>,
    cfg: ChordConfig,
    /// Live node indices sorted by ring id — ground truth for `owner_of`
    /// and for fast bulk construction. Never consulted by routing.
    sorted: Vec<NodeIdx>,
    /// Every identifier ever assigned (live nodes + tombstones), kept as
    /// a sorted flat `Vec` — membership is a binary search, and cloning
    /// the overlay (bed snapshots) is one `memcpy` instead of a tree
    /// rebuild. Ordered inserts are O(n) but only run on join/tombstone,
    /// never on the routing or query path.
    used_ids: Vec<u64>,
    rng: SmallRng,
}

impl Chord {
    /// An empty overlay.
    pub fn new(cfg: ChordConfig) -> Self {
        Self {
            nodes: Vec::new(),
            cfg,
            sorted: Vec::new(),
            used_ids: Vec::new(),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xC0FFEE),
        }
    }

    /// Bulk-construct a fully stabilized network of `n` nodes with random
    /// distinct identifiers. This is the fast path used to set up static
    /// experiments; incremental joins exercise the protocol path.
    pub fn build(n: usize, cfg: ChordConfig) -> Self {
        let mut net = Self::new(cfg);
        let hash = ConsistentHash::new(cfg.seed);
        for i in 0..n {
            let mut id = hash.hash_u64(i as u64);
            while net.id_used(id) {
                id = id.wrapping_add(0x9e3779b97f4a7c15);
            }
            net.push_node(id);
        }
        net.rebuild_all_state();
        net
    }

    /// Is `id` already assigned (live node or reserved tombstone)?
    fn id_used(&self, id: u64) -> bool {
        self.used_ids.binary_search(&id).is_ok()
    }

    /// Record `id` as assigned, keeping `used_ids` sorted.
    fn record_id(&mut self, id: u64) {
        if let Err(pos) = self.used_ids.binary_search(&id) {
            self.used_ids.insert(pos, id);
        }
    }

    /// Size of the node arena (live + tomb-stoned slots). Directory
    /// bookkeeping in higher layers indexes by arena slot.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Configuration the network was built with.
    pub fn config(&self) -> &ChordConfig {
        &self.cfg
    }

    /// Reserve an arena slot as a tombstone: the slot counts towards
    /// `arena_len` but never participates in the ring. Used to keep
    /// multiple overlays' arenas in lock-step when a coordinated join
    /// partially fails (see Mercury's join rollback).
    ///
    /// The tombstone's identifier is drawn collision-free and recorded in
    /// `used_ids` (tombstones never retire, so the id stays reserved) —
    /// otherwise a later [`Chord::join`] could draw the same id and put
    /// two arena nodes on one ring position.
    pub fn reserve_tombstone(&mut self) -> NodeIdx {
        let mut id = self.rng.gen::<u64>();
        while self.id_used(id) {
            id = id.wrapping_add(0x9e3779b97f4a7c15);
        }
        self.record_id(id);
        let idx = NodeIdx(self.nodes.len());
        let mut node = ChordNode::new(id);
        node.alive = false;
        self.nodes.push(node);
        idx
    }

    fn push_node(&mut self, id: u64) -> NodeIdx {
        let idx = NodeIdx(self.nodes.len());
        self.nodes.push(ChordNode::new(id));
        self.record_id(id);
        let pos = self.sorted.partition_point(|&j| self.nodes[j.0].id < id);
        self.sorted.insert(pos, idx);
        debug_assert!(
            self.sorted.windows(2).all(|w| self.nodes[w[0].0].id < self.nodes[w[1].0].id),
            "sorted ring order broken by insert"
        );
        idx
    }

    /// Recompute every node's successor list, predecessor and fingers from
    /// ground truth (perfect stabilization). Used by `build` and by tests.
    pub fn rebuild_all_state(&mut self) {
        let live: Vec<NodeIdx> = self.sorted.clone();
        let n = live.len();
        if n == 0 {
            return;
        }
        debug_assert!(
            live.iter().all(|&i| self.nodes[i.0].alive),
            "sorted ring must hold only live nodes"
        );
        // Flat copy of the ring ids: the n·64 finger binary-searches below
        // then run over a contiguous u64 array instead of chasing
        // `nodes[sorted[m].0].id` pointers per probe (bulk construction is
        // the dominant cost of building Mercury's m hubs).
        let ids: Vec<u64> = live.iter().map(|&i| self.nodes[i.0].id).collect();
        for (pos, &idx) in live.iter().enumerate() {
            let mut succs = Vec::with_capacity(self.cfg.succ_list_len);
            for k in 1..=self.cfg.succ_list_len.min(n.saturating_sub(1)).max(1) {
                succs.push(live[(pos + k) % n]);
            }
            let pred = live[(pos + n - 1) % n];
            let id = ids[pos];
            let mut fingers = Vec::with_capacity(FINGER_BITS);
            for i in 0..FINGER_BITS {
                let target = id.wrapping_add(1u64 << i);
                let fpos = ids.partition_point(|&v| v < target);
                fingers.push(live[fpos % n]);
            }
            let node = &mut self.nodes[idx.0];
            node.successors = succs;
            node.predecessor = Some(pred);
            node.fingers = fingers;
        }
    }

    /// Ground-truth owner (first live node clockwise from `key`, the node
    /// whose interval `(pred, id]` contains `key`).
    fn true_owner(&self, key: u64) -> NodeIdx {
        debug_assert!(!self.sorted.is_empty());
        let pos = self.sorted.partition_point(|&j| self.nodes[j.0].id < key);
        self.sorted[pos % self.sorted.len()]
    }

    /// Borrow a node's state.
    pub fn node(&self, idx: NodeIdx) -> Result<&ChordNode, DhtError> {
        self.nodes.get(idx.0).ok_or(DhtError::NodeNotFound { index: idx.0 })
    }

    fn live_node(&self, idx: NodeIdx) -> Result<&ChordNode, DhtError> {
        let n = self.node(idx)?;
        if n.alive {
            Ok(n)
        } else {
            Err(DhtError::NodeNotFound { index: idx.0 })
        }
    }

    /// Identifier of `idx`.
    pub fn id_of(&self, idx: NodeIdx) -> Result<u64, DhtError> {
        Ok(self.node(idx)?.id)
    }

    /// First *alive* entry of `idx`'s successor list (node-local view).
    pub fn next_clockwise(&self, idx: NodeIdx) -> Result<NodeIdx, DhtError> {
        let n = self.live_node(idx)?;
        n.successors.iter().copied().find(|&s| self.nodes[s.0].alive).ok_or(DhtError::EmptyOverlay)
    }

    /// Predecessor pointer if alive (node-local view). Range probes that
    /// walk counter-clockwise use this; a dead predecessor stalls the walk
    /// until stabilization, exactly as in the real protocol.
    pub fn next_counterclockwise(&self, idx: NodeIdx) -> Result<NodeIdx, DhtError> {
        let n = self.live_node(idx)?;
        match n.predecessor {
            Some(p) if self.nodes[p.0].alive => Ok(p),
            _ => Err(DhtError::EmptyOverlay),
        }
    }

    /// Join a new node with a random identifier, bootstrapping through
    /// `bootstrap`. Returns the new node's index.
    ///
    /// Only the new node's state and its neighbors' immediate pointers are
    /// updated — everyone else's fingers stay stale until [`Self::stabilize_all`]
    /// or per-node repair runs, as in the real protocol.
    pub fn join(&mut self, bootstrap: NodeIdx) -> Result<NodeIdx, DhtError> {
        let mut id = self.rng.gen::<u64>();
        while self.id_used(id) {
            id = id.wrapping_add(0x9e3779b97f4a7c15);
        }
        self.join_with_id(bootstrap, id)
    }

    /// Join with an explicit identifier (tests, adversarial placements).
    pub fn join_with_id(&mut self, bootstrap: NodeIdx, id: u64) -> Result<NodeIdx, DhtError> {
        if self.id_used(id) {
            return Err(DhtError::IdSpaceExhausted);
        }
        self.live_node(bootstrap)?;
        // Find the successor of the new id by routing from the bootstrap
        // (untraced: only the terminal matters).
        let succ = self.route_stats_from(bootstrap, id)?.terminal;
        let idx = self.push_node(id);
        // Splice: new node's successor list comes from succ.
        let succ_node = &self.nodes[succ.0];
        let mut slist = Vec::with_capacity(self.cfg.succ_list_len);
        slist.push(succ);
        slist.extend(succ_node.successors.iter().copied().take(self.cfg.succ_list_len - 1));
        let pred = succ_node.predecessor;
        {
            let node = &mut self.nodes[idx.0];
            node.successors = slist;
            node.predecessor = pred;
        }
        self.nodes[succ.0].predecessor = Some(idx);
        if let Some(p) = pred {
            if self.nodes[p.0].alive {
                let pnode = &mut self.nodes[p.0];
                pnode.successors.insert(0, idx);
                pnode.successors.truncate(self.cfg.succ_list_len);
            }
        }
        // Initialize fingers by routing (the joining node's own lookups,
        // untraced — 64 of them per join).
        let mut fingers = Vec::with_capacity(FINGER_BITS);
        for i in 0..FINGER_BITS {
            let target = id.wrapping_add(1u64 << i);
            let f = self.route_stats_from(succ, target).map(|r| r.terminal).unwrap_or(succ);
            fingers.push(f);
        }
        self.nodes[idx.0].fingers = fingers;
        Ok(idx)
    }

    fn retire(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        self.live_node(idx)?;
        self.nodes[idx.0].alive = false;
        let id = self.nodes[idx.0].id;
        if let Ok(pos) = self.used_ids.binary_search(&id) {
            self.used_ids.remove(pos);
        }
        if let Ok(pos) = self.sorted.binary_search_by(|&j| self.nodes[j.0].id.cmp(&id)) {
            self.sorted.remove(pos);
        }
        Ok(())
    }

    /// Graceful departure: the node tells its neighbors, who splice it out
    /// immediately. Other nodes' fingers stay stale until repair.
    pub fn leave(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        let node = self.live_node(idx)?.clone();
        self.retire(idx)?;
        let succ = node.successors.iter().copied().find(|&s| self.nodes[s.0].alive);
        let pred = node.predecessor.filter(|&p| self.nodes[p.0].alive);
        if let (Some(s), Some(p)) = (succ, pred) {
            if s != idx && p != idx {
                self.nodes[s.0].predecessor = Some(p);
                let pnode = &mut self.nodes[p.0];
                pnode.successors.retain(|&x| x != idx);
                pnode.successors.insert(0, s);
                // Order-preserving seen-set dedup: `Vec::dedup` only
                // removes *adjacent* duplicates, so a non-adjacent copy of
                // the spliced-in successor (or any stale repeat) would
                // survive and waste a repair slot. The list is at most
                // `succ_list_len + 1` long, so the quadratic scan is free.
                let list = &mut pnode.successors;
                let mut keep = 0;
                for i in 0..list.len() {
                    let x = list[i];
                    if !list[..keep].contains(&x) {
                        list[keep] = x;
                        keep += 1;
                    }
                }
                list.truncate(keep);
                list.truncate(self.cfg.succ_list_len);
            }
        }
        Ok(())
    }

    /// Abrupt failure: the node vanishes without notifying anyone.
    pub fn fail(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        self.retire(idx)
    }

    /// One round of the Chord stabilization protocol for `idx`:
    /// refresh the successor (adopting the successor's predecessor when it
    /// sits between), repair the successor list, and re-notify.
    pub fn stabilize(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        let me = self.live_node(idx)?;
        let my_id = me.id;
        // First alive successor-list entry becomes the working successor.
        let Some(mut succ) = me.successors.iter().copied().find(|&s| self.nodes[s.0].alive) else {
            // Total successor loss: re-bootstrap from ground truth would be
            // cheating; the real protocol falls back to the finger table.
            let fallback = me.fingers.iter().copied().find(|&f| self.nodes[f.0].alive && f != idx);
            match fallback {
                Some(f) => {
                    self.nodes[idx.0].successors = vec![f];
                    return Ok(());
                }
                None => return Err(DhtError::EmptyOverlay),
            }
        };
        // Adopt successor's predecessor if it lies in (me, succ).
        if let Some(p) = self.nodes[succ.0].predecessor {
            if p != idx
                && self.nodes[p.0].alive
                && dht_core::in_interval_oo(my_id, self.nodes[succ.0].id, self.nodes[p.0].id)
            {
                succ = p;
            }
        }
        // Rebuild successor list from succ's list.
        let mut slist = Vec::with_capacity(self.cfg.succ_list_len);
        slist.push(succ);
        for &s in &self.nodes[succ.0].successors {
            if slist.len() >= self.cfg.succ_list_len {
                break;
            }
            if self.nodes[s.0].alive && s != idx && !slist.contains(&s) {
                slist.push(s);
            }
        }
        self.nodes[idx.0].successors = slist;
        // Notify: succ adopts me as predecessor if better.
        let adopt = match self.nodes[succ.0].predecessor {
            None => true,
            Some(p) if !self.nodes[p.0].alive => true,
            Some(p) => dht_core::in_interval_oo(self.nodes[p.0].id, self.nodes[succ.0].id, my_id),
        };
        if adopt {
            self.nodes[succ.0].predecessor = Some(idx);
        }
        Ok(())
    }

    /// Recompute every finger of `idx` by issuing lookups through the
    /// current (possibly stale) overlay state.
    pub fn fix_fingers(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        let id = self.live_node(idx)?.id;
        for i in 0..FINGER_BITS {
            let target = id.wrapping_add(1u64 << i);
            if let Ok(r) = self.route_stats_from(idx, target) {
                self.nodes[idx.0].fingers[i] = r.terminal;
            }
        }
        Ok(())
    }

    /// Run one stabilization + finger-repair round on every live node.
    pub fn stabilize_all(&mut self) {
        // Owned snapshot: stabilization mutates node state while iterating.
        let live: Vec<NodeIdx> = self.sorted.clone();
        for &idx in &live {
            if self.nodes[idx.0].alive {
                let _ = self.stabilize(idx);
            }
        }
        for &idx in &live {
            if self.nodes[idx.0].alive {
                let _ = self.fix_fingers(idx);
            }
        }
    }

    /// Live node indices sorted by ring identifier.
    pub fn nodes_by_id(&self) -> &[NodeIdx] {
        &self.sorted
    }

    /// Pick a uniformly random live node.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeIdx> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted[rng.gen_range(0..self.sorted.len())])
        }
    }
}

impl Overlay for Chord {
    type Key = u64;

    fn len(&self) -> usize {
        self.sorted.len()
    }

    fn live_nodes(&self) -> &[NodeIdx] {
        &self.sorted
    }

    fn owner_of(&self, key: u64) -> Result<NodeIdx, DhtError> {
        if self.sorted.is_empty() {
            return Err(DhtError::EmptyOverlay);
        }
        Ok(self.true_owner(key))
    }

    fn route(&self, from: NodeIdx, key: u64) -> Result<RouteResult, DhtError> {
        self.route_from(from, key)
    }

    fn route_stats(&self, from: NodeIdx, key: u64) -> Result<RouteStats, DhtError> {
        self.route_stats_from(from, key)
    }

    fn route_stats_faulty(
        &self,
        from: NodeIdx,
        key: u64,
        plan: &dht_core::FaultPlan,
        msg: dht_core::MsgId,
    ) -> Result<RouteStats, DhtError> {
        // Inert plans take the plain fast path: zero-fault runs must be
        // byte-identical to fault-free runs.
        if plan.is_inert() {
            return self.route_stats_from(from, key);
        }
        self.route_stats_faulty_from(from, key, plan, msg)
    }

    fn outlinks(&self, node: NodeIdx) -> Result<usize, DhtError> {
        let n = self.live_node(node)?;
        Ok(n.distinct_neighbors().iter().filter(|&&x| self.nodes[x.0].alive && x != node).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Chord {
        Chord::build(n, ChordConfig::default())
    }

    #[test]
    fn build_sets_ring_invariants() {
        let c = net(64);
        assert_eq!(c.len(), 64);
        for &idx in c.nodes_by_id() {
            let node = c.node(idx).unwrap();
            assert!(node.is_alive());
            assert!(node.successor().is_some());
            assert!(node.predecessor().is_some());
            assert_eq!(node.fingers().len(), FINGER_BITS);
        }
    }

    #[test]
    fn successor_is_next_by_id() {
        let c = net(32);
        let ids = c.nodes_by_id();
        for (pos, &idx) in ids.iter().enumerate() {
            let succ = c.node(idx).unwrap().successor().unwrap();
            assert_eq!(succ, ids[(pos + 1) % ids.len()]);
        }
    }

    #[test]
    fn predecessor_is_prev_by_id() {
        let c = net(32);
        let ids = c.nodes_by_id();
        for (pos, &idx) in ids.iter().enumerate() {
            let pred = c.node(idx).unwrap().predecessor().unwrap();
            assert_eq!(pred, ids[(pos + ids.len() - 1) % ids.len()]);
        }
    }

    #[test]
    fn owner_of_is_clockwise_successor_of_key() {
        let c = net(16);
        for &idx in c.nodes_by_id() {
            let id = c.id_of(idx).unwrap();
            assert_eq!(c.owner_of(id).unwrap(), idx, "node owns its own id");
            // key one past a node belongs to the next node
            let next = c.next_clockwise(idx).unwrap();
            assert_eq!(c.owner_of(id.wrapping_add(1)).unwrap(), next);
        }
    }

    #[test]
    fn outlinks_scale_logarithmically() {
        let small = net(64);
        let large = net(4096);
        let avg = |c: &Chord| {
            let total: usize = c.live_nodes().iter().map(|&i| c.outlinks(i).unwrap()).sum();
            total as f64 / c.len() as f64
        };
        let a = avg(&small);
        let b = avg(&large);
        // log2(64)=6, log2(4096)=12: expect roughly doubled, clearly not 64x.
        assert!(b > a + 2.0, "outlinks should grow with log n: {a} -> {b}");
        assert!(b < a * 4.0, "outlinks must stay logarithmic: {a} -> {b}");
    }

    #[test]
    fn clockwise_walk_visits_every_node_once() {
        let c = net(40);
        let start = c.nodes_by_id()[0];
        let mut cur = start;
        let mut seen = std::collections::HashSet::new();
        loop {
            assert!(seen.insert(cur), "walk revisited {cur}");
            cur = c.next_clockwise(cur).unwrap();
            if cur == start {
                break;
            }
        }
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn graceful_leave_splices_ring() {
        let mut c = net(10);
        let victim = c.nodes_by_id()[3];
        let pred = c.node(victim).unwrap().predecessor().unwrap();
        let succ = c.node(victim).unwrap().successor().unwrap();
        c.leave(victim).unwrap();
        assert_eq!(c.len(), 9);
        assert_eq!(c.next_clockwise(pred).unwrap(), succ);
        assert_eq!(c.node(succ).unwrap().predecessor().unwrap(), pred);
        assert!(!c.node(victim).unwrap().is_alive());
    }

    #[test]
    fn leave_twice_errors() {
        let mut c = net(5);
        let v = c.nodes_by_id()[0];
        c.leave(v).unwrap();
        assert!(c.leave(v).is_err());
    }

    #[test]
    fn join_inserts_in_order() {
        let mut c = net(8);
        let boot = c.nodes_by_id()[0];
        let idx = c.join(boot).unwrap();
        assert_eq!(c.len(), 9);
        let id = c.id_of(idx).unwrap();
        assert_eq!(c.owner_of(id).unwrap(), idx);
        // ring pointers around the new node are consistent
        let succ = c.node(idx).unwrap().successor().unwrap();
        assert_eq!(c.node(succ).unwrap().predecessor().unwrap(), idx);
    }

    #[test]
    fn join_with_duplicate_id_rejected() {
        let mut c = net(4);
        let boot = c.nodes_by_id()[0];
        let id = c.id_of(boot).unwrap();
        assert_eq!(c.join_with_id(boot, id), Err(DhtError::IdSpaceExhausted));
    }

    #[test]
    fn stabilize_recovers_from_abrupt_failure() {
        let mut c = net(30);
        let victim = c.nodes_by_id()[7];
        let pred = c.node(victim).unwrap().predecessor().unwrap();
        c.fail(victim).unwrap();
        // pred's immediate successor pointer is now dead; next_clockwise
        // must skip it through the successor list.
        let after = c.next_clockwise(pred).unwrap();
        assert_ne!(after, victim);
        c.stabilize_all();
        // after repair, pred's first successor entry is alive and correct
        let s = c.node(pred).unwrap().successor().unwrap();
        assert!(c.node(s).unwrap().is_alive());
        assert_eq!(s, after);
    }

    #[test]
    fn random_node_is_live() {
        let mut c = net(12);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let n = c.random_node(&mut rng).unwrap();
            assert!(c.node(n).unwrap().is_alive());
        }
        for idx in c.live_nodes_cloned() {
            if c.len() > 1 {
                let _ = c.leave(idx);
            }
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn leave_drops_non_adjacent_duplicate_successor() {
        // Regression: `Vec::dedup` only removes *adjacent* duplicates, so
        // the old leave path kept a stale non-adjacent copy of the
        // spliced-in successor, wasting a successor-list slot.
        let mut c = net(8);
        let victim = c.nodes_by_id()[3];
        let succ = c.nodes_by_id()[4];
        let other = c.nodes_by_id()[5];
        let pred = c.node(victim).unwrap().predecessor().unwrap();
        // Plant a stale copy of `succ` separated from the front by `other`:
        // after the splice inserts `succ` at the head, the list reads
        // [succ, other, succ] — `Vec::dedup` would keep the trailing copy.
        c.nodes[pred.0].successors = vec![victim, other, succ];
        c.leave(victim).unwrap();
        let after = &c.nodes[pred.0].successors;
        assert_eq!(after.iter().filter(|&&x| x == succ).count(), 1, "dup survived: {after:?}");
        assert_eq!(&after[..2], &[succ, other]);
    }

    #[test]
    fn tombstone_id_is_reserved_against_joins() {
        // Regression: `reserve_tombstone` used to draw a random id without
        // consulting or updating `used_ids`, so a later join could draw
        // the same id and put two arena nodes on one ring position.
        let mut c = net(4);
        let boot = c.nodes_by_id()[0];
        let t = c.reserve_tombstone();
        let tid = c.nodes[t.0].id;
        assert!(!c.nodes[t.0].alive);
        assert!(c.id_used(tid), "tombstone id must be recorded");
        assert_eq!(c.join_with_id(boot, tid), Err(DhtError::IdSpaceExhausted));
        // And the next tombstone cannot collide with an existing node
        // either: force the rng's next draw onto an occupied id by
        // exhausting... (cheaper: just check distinctness over a batch).
        let mut seen: Vec<u64> = c.used_ids.to_vec();
        for _ in 0..32 {
            let t = c.reserve_tombstone();
            seen.push(c.nodes[t.0].id);
        }
        let n = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n, "tombstone ids must be collision-free");
    }

    #[test]
    fn empty_overlay_owner_errors() {
        let c = Chord::new(ChordConfig::default());
        assert_eq!(c.owner_of(5), Err(DhtError::EmptyOverlay));
        assert!(c.is_empty());
    }
}
