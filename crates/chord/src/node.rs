//! Per-node Chord state: a borrowed view over the arena's flat arrays.

use crate::network::Chord;
use dht_core::NodeIdx;
use std::fmt;

/// Number of finger-table entries (the identifier space is 64 bits wide).
pub const FINGER_BITS: usize = 64;

/// A read-only view of one Chord node's local state.
///
/// Node state lives in struct-of-arrays form on [`Chord`] — parallel flat
/// `Vec`s for ids, liveness, fingers, successor lists and predecessors,
/// indexed by arena slot — so a million-node overlay is a handful of
/// contiguous allocations instead of a million boxed nodes. This view
/// borrows the arena and exposes the classic per-node accessors;
/// everything a node uses to route must be reachable through it (the
/// routing code only ever reads the state of the node currently holding
/// the message).
#[derive(Clone, Copy)]
pub struct ChordNode<'a> {
    pub(crate) net: &'a Chord,
    pub(crate) slot: usize,
}

impl ChordNode<'_> {
    /// Ring identifier of this node.
    pub fn id(&self) -> u64 {
        self.net.id_at(self.slot)
    }

    /// Is the node currently part of the overlay?
    pub fn is_alive(&self) -> bool {
        self.net.alive_at(self.slot)
    }

    /// Immediate successor (first entry of the successor list).
    pub fn successor(&self) -> Option<NodeIdx> {
        self.net.raw_succs(self.slot).first().map(|&s| NodeIdx(s as usize))
    }

    /// The successor list.
    pub fn successor_list(&self) -> Vec<NodeIdx> {
        self.net.raw_succs(self.slot).iter().map(|&s| NodeIdx(s as usize)).collect()
    }

    /// Immediate predecessor, if known.
    pub fn predecessor(&self) -> Option<NodeIdx> {
        self.net.pred_at(self.slot)
    }

    /// Finger table (may contain duplicates; see
    /// [`Chord::outlinks`](crate::Chord) for the distinct count).
    pub fn fingers(&self) -> Vec<NodeIdx> {
        self.net
            .raw_fingers(self.slot)
            .iter()
            .filter(|&&f| f != crate::network::NO_LINK)
            .map(|&f| NodeIdx(f as usize))
            .collect()
    }
}

impl fmt::Debug for ChordNode<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChordNode")
            .field("slot", &self.slot)
            .field("id", &self.id())
            .field("alive", &self.is_alive())
            .field("successors", &self.successor_list())
            .field("predecessor", &self.predecessor())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use crate::network::{Chord, ChordConfig};

    #[test]
    fn tombstone_view_has_no_links() {
        let mut c = Chord::build(4, ChordConfig::default());
        let t = c.reserve_tombstone();
        let v = c.node(t).unwrap();
        assert!(!v.is_alive());
        assert!(v.successor().is_none());
        assert!(v.predecessor().is_none());
        assert!(v.fingers().is_empty());
    }

    #[test]
    fn view_matches_arena_state() {
        let c = Chord::build(16, ChordConfig::default());
        for &idx in c.nodes_by_id() {
            let v = c.node(idx).unwrap();
            assert!(v.is_alive());
            assert_eq!(v.id(), c.id_of(idx).unwrap());
            assert_eq!(v.successor(), v.successor_list().first().copied());
            assert_eq!(v.fingers().len(), super::FINGER_BITS);
        }
    }
}
