//! Per-node Chord state.

use dht_core::NodeIdx;

/// Number of finger-table entries (the identifier space is 64 bits wide).
pub const FINGER_BITS: usize = 64;

/// The complete local state of one Chord node.
///
/// Everything a node uses to route must live here: the routing code only
/// ever reads the state of the node currently holding the message.
#[derive(Debug, Clone)]
pub struct ChordNode {
    /// Ring identifier.
    pub(crate) id: u64,
    /// False once the node departed (slot tomb-stoned).
    pub(crate) alive: bool,
    /// `fingers[i]` targets `successor(id + 2^i)`. Entries may be stale
    /// after churn until `fix_fingers` runs.
    pub(crate) fingers: Vec<NodeIdx>,
    /// First `r` successors on the ring (repair chain under churn).
    pub(crate) successors: Vec<NodeIdx>,
    /// Immediate predecessor, if known.
    pub(crate) predecessor: Option<NodeIdx>,
}

impl ChordNode {
    pub(crate) fn new(id: u64) -> Self {
        Self { id, alive: true, fingers: Vec::new(), successors: Vec::new(), predecessor: None }
    }

    /// Ring identifier of this node.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Is the node currently part of the overlay?
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Immediate successor (first entry of the successor list).
    pub fn successor(&self) -> Option<NodeIdx> {
        self.successors.first().copied()
    }

    /// The successor list.
    pub fn successor_list(&self) -> &[NodeIdx] {
        &self.successors
    }

    /// Immediate predecessor, if known.
    pub fn predecessor(&self) -> Option<NodeIdx> {
        self.predecessor
    }

    /// Finger table (may contain duplicates; see
    /// [`Chord::outlinks`](crate::Chord) for the distinct count).
    pub fn fingers(&self) -> &[NodeIdx] {
        &self.fingers
    }

    /// Distinct live outlinks: fingers ∪ successor list ∪ predecessor.
    pub(crate) fn distinct_neighbors(&self) -> Vec<NodeIdx> {
        let mut v: Vec<NodeIdx> = self
            .fingers
            .iter()
            .chain(self.successors.iter())
            .chain(self.predecessor.iter())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_has_no_links() {
        let n = ChordNode::new(42);
        assert_eq!(n.id(), 42);
        assert!(n.is_alive());
        assert!(n.successor().is_none());
        assert!(n.predecessor().is_none());
        assert!(n.distinct_neighbors().is_empty());
    }

    #[test]
    fn distinct_neighbors_dedupes() {
        let mut n = ChordNode::new(1);
        n.fingers = vec![NodeIdx(2), NodeIdx(2), NodeIdx(3)];
        n.successors = vec![NodeIdx(2), NodeIdx(4)];
        n.predecessor = Some(NodeIdx(3));
        assert_eq!(n.distinct_neighbors(), vec![NodeIdx(2), NodeIdx(3), NodeIdx(4)]);
    }
}
