//! Shared experiment setup: configuration, workload, system construction.

use analysis::{Params, System};
use baselines::{Maan, MaanConfig, Mercury, MercuryConfig, Sword, SwordConfig};
use dht_core::{BuildMode, SeedSpawner};
use grid_resource::{ResourceDiscovery, ValueDist, Workload, WorkloadConfig};
use lorm::{Lorm, LormConfig};

/// Experiment configuration. Defaults are the paper's §V setting:
/// 2048 nodes, 200 attributes, 500 values per attribute, Cycloid `d = 8`.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Physical nodes `n`.
    pub nodes: usize,
    /// Attributes `m`.
    pub attrs: usize,
    /// Values (reports) per attribute `k`.
    pub values: usize,
    /// Cycloid dimension `d` (`n` must not exceed `d·2^d`).
    pub dimension: u8,
    /// Root experiment seed.
    pub seed: u64,
    /// Value distribution of reports and queries.
    pub value_dist: ValueDist,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            nodes: 2048,
            attrs: 200,
            values: 500,
            dimension: 8,
            seed: 0x1C99,
            value_dist: ValueDist::Uniform,
        }
    }
}

impl SimConfig {
    /// A scaled-down setting for quick runs and CI: a *full* `d = 7`
    /// Cycloid (896 nodes — full clusters, as the paper's setup has), 50
    /// attributes, 100 values.
    pub fn quick() -> Self {
        Self { nodes: 896, dimension: 7, attrs: 50, values: 100, ..Self::default() }
    }

    /// The analytical parameter tuple for this configuration.
    pub fn params(&self) -> Params {
        Params { n: self.nodes, m: self.attrs, k: self.values, d: self.dimension }
    }

    /// The workload configuration for this setting.
    pub fn workload_config(&self) -> WorkloadConfig {
        WorkloadConfig {
            num_attrs: self.attrs,
            values_per_attr: self.values,
            num_nodes: self.nodes,
            value_dist: self.value_dist,
            ..WorkloadConfig::default()
        }
    }
}

/// Construct one system over the workload's attribute space, with all
/// reports placed (via the default bulk construction path).
pub fn build_system(
    system: System,
    workload: &Workload,
    cfg: &SimConfig,
) -> Box<dyn ResourceDiscovery + Send + Sync> {
    build_system_with_mode(system, workload, cfg, BuildMode::Bulk)
}

/// [`build_system`] with an explicit construction mode. Both modes yield
/// byte-identical systems — `Incremental` is the O(n²)-aggregate reference
/// path the equivalence proptests drive.
pub fn build_system_with_mode(
    system: System,
    workload: &Workload,
    cfg: &SimConfig,
    mode: BuildMode,
) -> Box<dyn ResourceDiscovery + Send + Sync> {
    let n = cfg.nodes;
    let seed = cfg.seed;
    let mut sys: Box<dyn ResourceDiscovery + Send + Sync> = match system {
        System::Lorm => Box::new(Lorm::new_with_mode(
            n,
            &workload.space,
            LormConfig { dimension: cfg.dimension, seed, ..LormConfig::default() },
            mode,
        )),
        System::Mercury => {
            Box::new(Mercury::new_with_mode(n, &workload.space, MercuryConfig { seed }, mode))
        }
        System::Sword => {
            Box::new(Sword::new_with_mode(n, &workload.space, SwordConfig { seed }, mode))
        }
        System::Maan => {
            Box::new(Maan::new_with_mode(n, &workload.space, MaanConfig { seed }, mode))
        }
    };
    sys.place_all(&workload.reports);
    sys
}

/// A deep snapshot of a bed's mutable state — the mounted systems,
/// captured via [`ResourceDiscovery::clone_box`]. The workload, config
/// and seed streams are immutable once built, so they need no capture:
/// [`TestBed::restore`] swaps the systems back and the bed is
/// byte-for-byte the bed that was snapshotted.
pub struct BedSnapshot {
    systems: Vec<Box<dyn ResourceDiscovery + Send + Sync>>,
}

/// A complete test bed: the workload plus all four mounted systems.
pub struct TestBed {
    /// The experiment configuration.
    pub cfg: SimConfig,
    /// The generated workload (reports + attribute space).
    pub workload: Workload,
    /// The four systems, indexed in `System::ALL` order.
    pub systems: Vec<Box<dyn ResourceDiscovery + Send + Sync>>,
    /// Independent RNG streams for query generation etc.
    pub seeds: SeedSpawner,
}

impl TestBed {
    /// Build the full test bed (all four systems). This is the expensive
    /// step of every static experiment: Mercury alone instantiates `m`
    /// Chord hubs of `n` nodes.
    pub fn new(cfg: SimConfig) -> Self {
        Self::new_with_mode(cfg, BuildMode::Bulk)
    }

    /// [`TestBed::new`] with an explicit construction mode. Bulk and
    /// incremental beds are byte-identical (the bed cache keys on the
    /// config alone for exactly this reason); the incremental path exists
    /// so equivalence proptests can drive it.
    pub fn new_with_mode(cfg: SimConfig, mode: BuildMode) -> Self {
        let (workload, seeds) = Self::workload_of(&cfg);
        let systems =
            System::ALL.iter().map(|&s| build_system_with_mode(s, &workload, &cfg, mode)).collect();
        Self { cfg, workload, systems, seeds }
    }

    /// The workload and seed streams a bed with this configuration mounts
    /// — the exact draw [`TestBed::new`] makes. Exposed so harnesses that
    /// time each `build_system` call individually (`repro perf`) can
    /// assemble a bed byte-identical to a `TestBed::new` build.
    pub fn workload_of(cfg: &SimConfig) -> (Workload, SeedSpawner) {
        let seeds = SeedSpawner::new(cfg.seed);
        let mut wl_rng = seeds.labelled(0xA0);
        let workload = Workload::generate(cfg.workload_config(), &mut wl_rng)
            // lint:allow(panic-hygiene): SimConfig always yields a valid
            // WorkloadConfig (nonzero counts, ordered domain).
            .expect("valid workload config");
        (workload, seeds)
    }

    /// Build a test bed with only the given systems (cheaper when Mercury
    /// is not needed).
    pub fn with_systems(cfg: SimConfig, systems: &[System]) -> Self {
        let (workload, seeds) = Self::workload_of(&cfg);
        let systems = systems.iter().map(|&s| build_system(s, &workload, &cfg)).collect();
        Self { cfg, workload, systems, seeds }
    }

    /// Capture a deep snapshot of every mounted system. Churn the bed
    /// freely afterwards; [`TestBed::restore`] rewinds it to this moment.
    pub fn snapshot(&self) -> BedSnapshot {
        BedSnapshot { systems: self.systems.iter().map(|s| s.clone_box()).collect() }
    }

    /// Rewind the bed to a snapshot taken by [`TestBed::snapshot`]. The
    /// restored bed is indistinguishable from one that was never mutated:
    /// clones are deep (overlay links, directories, RNG state included).
    pub fn restore(&mut self, snap: BedSnapshot) {
        self.systems = snap.systems;
    }

    /// Borrow a mounted system by its enum tag (panics if not mounted).
    pub fn system(&self, s: System) -> &(dyn ResourceDiscovery + Send + Sync) {
        self.systems
            .iter()
            .find(|b| b.name() == s.name())
            .unwrap_or_else(|| panic!("{} not mounted", s.name()))
            .as_ref()
    }
}

impl Clone for TestBed {
    /// Deep-copy the whole bed: systems via [`ResourceDiscovery::clone_box`],
    /// workload and seed streams by value. The clone and the original are
    /// fully independent and behave identically under identical drives.
    fn clone(&self) -> Self {
        Self {
            cfg: self.cfg,
            workload: self.workload.clone(),
            systems: self.systems.clone(),
            seeds: self.seeds.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_consistent() {
        let c = SimConfig::quick();
        assert!(c.nodes <= c.dimension as usize * (1 << c.dimension));
        let p = c.params();
        assert_eq!(p.n, c.nodes);
        assert_eq!(p.m, c.attrs);
    }

    #[test]
    fn build_single_system_places_reports() {
        let cfg = SimConfig { nodes: 128, attrs: 10, values: 20, ..SimConfig::default() };
        let seeds = SeedSpawner::new(cfg.seed);
        let w = Workload::generate(cfg.workload_config(), &mut seeds.labelled(0xA0)).unwrap();
        let sys = build_system(System::Sword, &w, &cfg);
        assert_eq!(sys.total_pieces(), 200);
        assert_eq!(sys.num_physical(), 128);
    }

    #[test]
    fn testbed_mounts_requested_systems() {
        let cfg = SimConfig { nodes: 64, attrs: 5, values: 10, ..SimConfig::default() };
        let bed = TestBed::with_systems(cfg, &[System::Lorm, System::Maan]);
        assert_eq!(bed.systems.len(), 2);
        assert_eq!(bed.system(System::Lorm).name(), "LORM");
        assert_eq!(bed.system(System::Maan).name(), "MAAN");
        // MAAN stores twice the pieces (Theorem 4.2)
        assert_eq!(
            bed.system(System::Maan).total_pieces(),
            2 * bed.system(System::Lorm).total_pieces()
        );
    }

    #[test]
    #[should_panic(expected = "not mounted")]
    fn missing_system_panics() {
        let cfg = SimConfig { nodes: 32, attrs: 3, values: 5, ..SimConfig::default() };
        let bed = TestBed::with_systems(cfg, &[System::Sword]);
        let _ = bed.system(System::Mercury);
    }
}
