//! Structured experiment reports: tables + per-system summaries + notes.
//!
//! Every experiment builds a [`Report`] instead of formatting text
//! directly. The `Display` impl renders exactly the markdown the repro
//! binary always printed (tables separated by blank lines, then note
//! lines), and [`Report::to_json`] serializes the same content — plus the
//! per-system [`Summary`] statistics that the text tables round away —
//! for the machine-readable `--json` export.
//!
//! The JSON is hand-rolled (the build environment is offline, so no serde)
//! against the stable `lorm-repro/bench-v1` schema documented in
//! README.md.

use crate::table::Table;
use dht_core::Summary;
use std::fmt;

/// A structured experiment report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    tables: Vec<Table>,
    summaries: Vec<(String, Summary)>,
    notes: Vec<String>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a rendered table.
    pub fn table(&mut self, t: Table) -> &mut Self {
        self.tables.push(t);
        self
    }

    /// Attach a labelled metric summary (full precision, with failure
    /// counts — the JSON export's per-system statistics).
    pub fn summary(&mut self, label: impl Into<String>, s: Summary) -> &mut Self {
        self.summaries.push((label.into(), s));
        self
    }

    /// Append a free-form note line rendered after the tables.
    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    /// Absorb another report's tables, summaries, and notes.
    pub fn append(&mut self, other: Report) -> &mut Self {
        self.tables.extend(other.tables);
        self.summaries.extend(other.summaries);
        self.notes.extend(other.notes);
        self
    }

    /// The tables, in presentation order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The labelled summaries.
    pub fn summaries(&self) -> &[(String, Summary)] {
        &self.summaries
    }

    /// The note lines.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Serialize as one JSON object:
    /// `{"tables": [...], "summaries": [...], "notes": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"tables\":[");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("],\"summaries\":[");
        for (i, (label, s)) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&summary_json(label, s));
        }
        out.push_str("],\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(n));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            t.fmt(f)?;
        }
        for n in &self.notes {
            writeln!(f, "{n}")?;
        }
        Ok(())
    }
}

/// Serialize one labelled [`Summary`] as a JSON object (shared by the
/// bench crate's `chaos-v1` export so both schemas render summaries
/// identically).
pub fn summary_json(label: &str, s: &Summary) -> String {
    format!(
        "{{\"label\":{},\"count\":{},\"failures\":{},\"partial\":{},\"retries\":{},\"dropped\":{},\"mean\":{},\"std\":{},\"min\":{},\"max\":{},\"total\":{}}}",
        json_str(label),
        s.count(),
        s.failures(),
        s.partial(),
        s.retries(),
        s.dropped_msgs(),
        json_num(s.mean()),
        json_num(s.std_dev()),
        json_num(s.min()),
        json_num(s.max()),
        json_num(s.total()),
    )
}

/// JSON string literal (quoted, escaped).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal; non-finite floats become `null` (JSON has no
/// NaN/Infinity).
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_layout() {
        let mut r = Report::new();
        let mut a = Table::new("A", &["x"]);
        a.row(vec!["1".into()]);
        let mut b = Table::new("B", &["y"]);
        b.row(vec!["2".into()]);
        r.table(a).table(b).note("(a note)");
        let s = r.to_string();
        // tables separated by exactly one blank line, note on its own line
        assert!(s.contains("|---|\n| 1 |\n\n## B"), "got:\n{s}");
        assert!(s.ends_with("| 2 |\n(a note)\n"), "got:\n{s}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = Report::new();
        let mut t = Table::new("q\"uote", &["a", "b"]);
        t.row(vec!["x\ny".into(), "2".into()]);
        let mut s = Summary::new();
        s.record(3.0);
        s.record_failure();
        r.table(t).summary("LORM", s).note("line\t1");
        let j = r.to_json();
        assert!(j.starts_with("{\"tables\":["));
        assert!(j.contains("\"title\":\"q\\\"uote\""), "{j}");
        assert!(j.contains("\"x\\ny\""));
        assert!(j.contains("\"label\":\"LORM\""));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"failures\":1"));
        assert!(j.contains("\"partial\":0"));
        assert!(j.contains("\"retries\":0"));
        assert!(j.contains("\"dropped\":0"));
        assert!(j.contains("\"mean\":3"));
        assert!(j.contains("\"notes\":[\"line\\t1\"]"));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let s = Summary::new(); // empty: min/max are NaN
        let j = summary_json("empty", &s);
        assert!(j.contains("\"min\":null"), "{j}");
        assert!(j.contains("\"max\":null"));
        assert!(j.contains("\"count\":0"));
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(1.5), "1.5");
    }

    #[test]
    fn append_concatenates() {
        let mut a = Report::new();
        a.table(Table::new("A", &["x"]));
        let mut b = Report::new();
        b.table(Table::new("B", &["y"])).note("n");
        a.append(b);
        assert_eq!(a.tables().len(), 2);
        assert_eq!(a.notes(), ["n"]);
    }
}
