//! Resource-information maintenance cost — the second overhead the paper
//! analyzes (§IV.A text around Theorems 4.2–4.4): every node reports its
//! available resources periodically through routed `Insert(rescID,
//! rescInfo)` calls. This experiment delivers one full reporting round
//! through the routed path and accounts its cost per system:
//!
//! * LORM, SWORD, Mercury — one lookup per report;
//! * MAAN — **two** lookups per report (attribute and value registration),
//!   which is Theorem 4.2's 2× in routed-message form;
//! * hop costs follow the substrate (`d` for Cycloid, `log₂n/2` per lookup
//!   for Chord).
//!
//! It also measures the *query-processing load balance*: how evenly the
//! directory probes of a query batch spread over nodes (the "avoid
//! bottlenecks" claim around Theorem 4.6).

use crate::experiments::query_batch;
use crate::report::Report;
use crate::setup::{build_system, SimConfig, TestBed};
use crate::table::Table;
use analysis::System;
use dht_core::{LoadDist, Summary};
use grid_resource::{QueryMix, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Per-system routed registration cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrationRow {
    /// System name.
    pub system: &'static str,
    /// Reports delivered.
    pub reports: usize,
    /// Average routing hops per report.
    pub avg_hops: f64,
    /// Average DHT lookups per report (2 for MAAN, 1 elsewhere).
    pub avg_lookups: f64,
    /// Total messages (hops) for the full reporting round.
    pub total_hops: f64,
}

/// The registration-cost experiment result.
#[derive(Debug, Clone)]
pub struct Registration {
    /// One row per system.
    pub rows: Vec<RegistrationRow>,
    /// Per-system routing-hop summaries (`System::ALL` order) — full
    /// precision, including the count of reports that failed to deliver.
    pub summaries: Vec<(&'static str, Summary)>,
}

/// Deliver every report of a fresh workload through the routed insert
/// path, per system.
pub fn registration_cost(cfg: &SimConfig) -> Registration {
    let mut wl_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x4E6);
    let workload = Workload::generate(cfg.workload_config(), &mut wl_rng).expect("valid config");
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for s in System::ALL {
        let mut sys = build_system(s, &workload, cfg);
        // build_system pre-places; start the measured round from scratch
        sys.place_all(&[]);
        let mut hops = Summary::new();
        let mut lookups = Summary::new();
        for &r in &workload.reports {
            match sys.register(r) {
                Ok(t) => {
                    hops.record(t.hops as f64);
                    lookups.record(t.lookups as f64);
                }
                Err(_) => hops.record_failure(),
            }
        }
        rows.push(RegistrationRow {
            system: s.name(),
            reports: workload.reports.len(),
            avg_hops: hops.mean(),
            avg_lookups: lookups.mean(),
            total_hops: hops.total(),
        });
        summaries.push((s.name(), hops));
    }
    Registration { rows, summaries }
}

impl Registration {
    /// Build the structured report.
    pub fn report(&self) -> Report {
        let mut t = Table::new(
            "Maintenance: routed cost of one full reporting round (Insert per rescInfo)",
            &["system", "reports", "avg hops", "avg lookups", "total hops"],
        );
        for r in &self.rows {
            t.row(vec![
                r.system.to_string(),
                r.reports.to_string(),
                Table::fmt_f(r.avg_hops),
                Table::fmt_f(r.avg_lookups),
                Table::fmt_f(r.total_hops),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        for (name, s) in &self.summaries {
            rep.summary(*name, s.clone());
        }
        rep
    }
}

impl fmt::Display for Registration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

/// Per-system query-processing load distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLoadRow {
    /// System name.
    pub system: &'static str,
    /// Mean probes handled per live node over the batch.
    pub mean: f64,
    /// 99th percentile of per-node probes.
    pub p99: f64,
    /// Maximum probes on one node.
    pub max: f64,
    /// Coefficient of variation (imbalance measure).
    pub cv: f64,
}

/// The query-load-balance experiment result.
#[derive(Debug, Clone)]
pub struct QueryLoad {
    /// One row per system.
    pub rows: Vec<QueryLoadRow>,
    /// Per-system probes-per-query summaries (`System::ALL` order) —
    /// full precision, including the count of queries that errored.
    pub summaries: Vec<(&'static str, Summary)>,
    /// Queries in the batch.
    pub queries: usize,
}

/// Issue a mixed query batch and count, per node, how many directory
/// probes it handled.
pub fn query_load_balance(bed: &TestBed, queries: usize, arity: usize) -> QueryLoad {
    let batch = query_batch(
        &bed.workload,
        bed.cfg.nodes,
        queries,
        1,
        arity,
        QueryMix::Range,
        bed.cfg.seed ^ 0x10AD,
    );
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for s in System::ALL {
        let sys = bed.system(s);
        let mut counts: Vec<usize> = Vec::new();
        let mut sum = Summary::new();
        for (phys, q) in &batch {
            match sys.query_from(*phys, q) {
                Ok(out) => {
                    sum.record(out.probed.len() as f64);
                    for n in out.probed {
                        if counts.len() <= n.0 {
                            counts.resize(n.0 + 1, 0);
                        }
                        counts[n.0] += 1;
                    }
                }
                Err(_) => sum.record_failure(),
            }
        }
        counts.resize(counts.len().max(bed.cfg.nodes), 0);
        let dist = LoadDist::from_counts(&counts);
        rows.push(QueryLoadRow {
            system: s.name(),
            mean: dist.mean(),
            p99: dist.p99(),
            max: dist.max(),
            cv: dist.cv(),
        });
        summaries.push((s.name(), sum));
    }
    QueryLoad { rows, summaries, queries: batch.len() }
}

impl QueryLoad {
    /// Build the structured report.
    pub fn report(&self) -> Report {
        let mut t = Table::new(
            format!(
                "Query-processing load per node over {} range queries (Theorem 4.6's balance claim)",
                self.queries
            ),
            &["system", "mean", "p99", "max", "cv"],
        );
        for r in &self.rows {
            t.row(vec![
                r.system.to_string(),
                Table::fmt_f(r.mean),
                Table::fmt_f(r.p99),
                Table::fmt_f(r.max),
                Table::fmt_f(r.cv),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        for (name, s) in &self.summaries {
            rep.summary(*name, s.clone());
        }
        rep
    }
}

impl fmt::Display for QueryLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig { nodes: 896, dimension: 7, attrs: 25, values: 60, ..SimConfig::default() }
    }

    #[test]
    fn maan_registration_doubles_lookups() {
        let reg = registration_cost(&cfg());
        let get = |n: &str| reg.rows.iter().find(|r| r.system == n).expect("row");
        assert_eq!(get("MAAN").avg_lookups, 2.0);
        for s in ["LORM", "Mercury", "SWORD"] {
            assert_eq!(get(s).avg_lookups, 1.0, "{s}");
        }
        // MAAN's total maintenance messages ~2x Mercury/SWORD's
        let ratio = get("MAAN").total_hops / get("Mercury").total_hops;
        assert!((1.6..2.4).contains(&ratio), "MAAN/Mercury maintenance ratio {ratio}");
        // LORM's per-report hops sit between Chord's and MAAN's
        assert!(get("LORM").avg_hops > get("Mercury").avg_hops);
        assert!(get("LORM").avg_hops < get("MAAN").avg_hops);
    }

    #[test]
    fn sword_concentrates_query_load_lorm_spreads_it() {
        // few attributes + many queries: per-attribute hotspots emerge
        let bed = TestBed::new(SimConfig { attrs: 8, ..cfg() });
        let load = query_load_balance(&bed, 400, 1);
        let get = |n: &str| load.rows.iter().find(|r| r.system == n).expect("row");
        // SWORD funnels every probe of an attribute to one node: its max
        // per-node load dwarfs LORM's (which spreads over the cluster).
        assert!(
            get("SWORD").max > 1.5 * get("LORM").max,
            "SWORD max {} vs LORM max {}",
            get("SWORD").max,
            get("LORM").max
        );
        // Mercury's system-wide walks spread the most evenly (lowest cv).
        assert!(get("Mercury").cv < get("SWORD").cv);
        assert!(get("Mercury").cv < get("MAAN").cv);
    }
}
