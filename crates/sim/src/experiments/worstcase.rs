//! Theorem 4.10 — worst-case contacted nodes for a range query.
//!
//! The theorem's adversarial case is a range covering the whole value
//! domain: the system-wide methods (Mercury, MAAN) must then probe every
//! node of the ring, contacting `m(log n + n)` resp. `m(2·log n + n)`
//! nodes, while LORM never leaves the attribute's cluster (`m·d`). This
//! experiment issues exactly that query and compares the measured
//! contacted-node counts (routing hops + probed directories) against the
//! closed forms.

use crate::report::Report;
use crate::setup::TestBed;
use crate::table::Table;
use analysis::{self as th, System};
use dht_core::Summary;
use grid_resource::{Query, SubQuery, ValueTarget};
use std::fmt;

/// Measured vs analytical worst case, one row per system.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCaseRow {
    /// System name.
    pub system: &'static str,
    /// Measured contacted nodes (hops + visited) for the full-domain
    /// range query.
    pub measured: f64,
    /// Theorem 4.10's closed form.
    pub analysis: f64,
    /// Queries that returned an error (excluded from `measured`).
    pub failures: u64,
}

/// The Theorem 4.10 experiment result.
#[derive(Debug, Clone)]
pub struct WorstCase {
    /// One row per system.
    pub rows: Vec<WorstCaseRow>,
    /// Per-system contacted-node summaries (`System::ALL` order) — full
    /// precision for the JSON export.
    pub summaries: Vec<(&'static str, Summary)>,
    /// Attributes per query used.
    pub arity: usize,
}

/// Issue `queries` full-domain range queries of the given arity and
/// average the contacted-node counts.
pub fn worstcase(bed: &TestBed, arity: usize, queries: usize) -> WorstCase {
    let p = bed.cfg.params();
    let (dmin, dmax) = bed.workload.space.domain();
    let m = bed.workload.space.len();
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for &s in &System::ALL {
        let sys = bed.system(s);
        let mut sum = Summary::new();
        for i in 0..queries {
            // distinct attributes, rotating so different clusters are hit
            let subs = (0..arity)
                .map(|j| SubQuery {
                    attr: grid_resource::AttrId(((i * arity + j) % m) as u32),
                    target: ValueTarget::Range { low: dmin, high: dmax },
                })
                .collect();
            let q = Query::new(subs).expect("valid range");
            let origin = i % bed.cfg.nodes;
            match sys.query_from(origin, &q) {
                Ok(out) => sum.record((out.tally.hops + out.tally.visited) as f64),
                Err(_) => sum.record_failure(),
            }
        }
        rows.push(WorstCaseRow {
            system: s.name(),
            measured: sum.mean(),
            analysis: th::worstcase_range_contacted(&p, arity, s),
            failures: sum.failures(),
        });
        summaries.push((s.name(), sum));
    }
    WorstCase { rows, summaries, arity }
}

impl WorstCase {
    /// Build the structured report.
    pub fn report(&self) -> Report {
        let mut t = Table::new(
            format!(
                "Theorem 4.10: worst-case contacted nodes, full-domain range query (arity {})",
                self.arity
            ),
            &["system", "measured", "analysis (T4.10)", "failed"],
        );
        for r in &self.rows {
            t.row(vec![
                r.system.to_string(),
                Table::fmt_f(r.measured),
                Table::fmt_f(r.analysis),
                r.failures.to_string(),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        for (name, s) in &self.summaries {
            rep.summary(*name, s.clone());
        }
        rep
    }
}

impl fmt::Display for WorstCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SimConfig;

    #[test]
    fn worst_case_matches_theorem_shape() {
        let cfg =
            SimConfig { nodes: 896, attrs: 20, values: 50, dimension: 7, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let wc = worstcase(&bed, 1, 10);
        for r in &wc.rows {
            assert_eq!(r.failures, 0, "{} failed queries on a stable network", r.system);
        }
        let get = |name: &str| wc.rows.iter().find(|r| r.system == name).expect("row");
        let lorm = get("LORM");
        let mercury = get("Mercury");
        let maan = get("MAAN");
        let sword = get("SWORD");
        // LORM stays inside one cluster: contacted ≈ hops + d, far below n.
        assert!(lorm.measured < 30.0, "LORM contacted {}", lorm.measured);
        // Mercury and MAAN touch essentially the whole ring.
        assert!(mercury.measured > 800.0, "Mercury contacted {}", mercury.measured);
        assert!(maan.measured > mercury.measured, "MAAN pays an extra lookup");
        // SWORD stays at a handful of hops + 1 directory.
        assert!(sword.measured < 15.0);
        // Theorem 4.10's saving: Mercury - LORM >= n (arity 1).
        assert!(mercury.measured - lorm.measured >= 896.0 * 0.9);
    }
}
