//! Durability under churn — data-loss probability and repair traffic vs
//! churn rate × replication degree, across all four systems.
//!
//! Unlike the Figure 6 churn runs, maintenance here repairs links and
//! replicas but never re-places the workload from the ground-truth report
//! list (`place_all` would resurrect every lost piece and measure
//! nothing). A piece survives only if some live node still holds a copy —
//! in its directory or in a replica store — so the sweep measures exactly
//! what the replication subsystem buys: the probability that an
//! (attribute, value, owner) identity registered before the churn window
//! is still discoverable after it.
//!
//! On top of the sweep, [`churn_theory_checks`] validates the simulator
//! against the closed-form predictions of Krishnamurthy et al.'s
//! master-equation analysis of Chord under Poisson churn ("A statistical
//! theory of Chord under churn", IPTPS'05): with failures arriving at
//! aggregate rate `λ` on `n` live nodes and periodic repair every `T`
//! seconds, a node alive at the start of a window is dead at its end with
//! probability `p = 1 − exp(−λT/n)`, so just before repair
//!
//! * the fraction of live nodes whose *first* successor is dead ≈ `p`;
//! * the fraction of dead entries over all successor lists ≈ `p`;
//! * the fraction whose *entire* length-`s` list is dead ≈ `p^s`;
//! * the fraction of lookups whose key owner (snapshotted at window
//!   start) has died ≈ `p`.
//!
//! The checks run both as unit tests (`tests/churn_theory.rs`) and inside
//! the `repro durability` sweep, where a violation makes the binary exit
//! non-zero — the same pattern as `repro scale`'s growth checks.

use crate::cache::BedCache;
use crate::experiments::{run_batch_sharded, Metric};
use crate::report::Report;
use crate::setup::SimConfig;
use crate::table::Table;
use analysis::System;
use chord::{Chord, ChordConfig};
use dht_core::{hashing::splitmix64, Overlay, Summary};
use grid_resource::{
    canonicalize_pieces, count_surviving, ChurnKind, ChurnSchedule, PieceKey, QueryMix,
    ResourceDiscovery, Workload,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Durability sweep parameters.
#[derive(Debug, Clone)]
pub struct DurabilitySetup {
    /// Poisson churn rates `R` to sweep (as in Figure 6: one join *and*
    /// one departure every `1/R` seconds on average).
    pub rates: Vec<f64>,
    /// Replication degrees `k` to sweep. `k = 1` is the unreplicated
    /// baseline (a strict no-op on every system).
    pub degrees: Vec<usize>,
    /// Simulated seconds of churn per cell.
    pub duration: f64,
    /// Event-clock ticks per simulated second (granularity at which
    /// churn events and maintenance boundaries are applied).
    pub tick_rate: f64,
    /// Seconds between maintenance rounds (stabilize + replica repair).
    pub maintenance_period: f64,
    /// Fraction of departures handled gracefully (with handoff); the
    /// rest are abrupt failures. Durability is about the abrupt ones.
    pub graceful_ratio: f64,
    /// Post-churn availability probe: live origins sampled.
    pub probe_origins: usize,
    /// Range queries issued per probe origin.
    pub probe_per_origin: usize,
    /// Attributes per probe query.
    pub arity: usize,
    /// Shard count for the probe batch (`0`/`1` runs inline; any value
    /// produces bit-identical summaries).
    pub shards: usize,
}

impl Default for DurabilitySetup {
    fn default() -> Self {
        Self {
            rates: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            degrees: vec![1, 2, 3, 4],
            duration: 400.0,
            tick_rate: 10.0,
            maintenance_period: 50.0,
            graceful_ratio: 0.5,
            probe_origins: 50,
            probe_per_origin: 4,
            arity: 3,
            shards: 0,
        }
    }
}

impl DurabilitySetup {
    /// A scaled-down sweep for tests and the CI smoke job.
    pub fn quick() -> Self {
        Self {
            rates: vec![0.1, 0.4],
            degrees: vec![1, 2, 4],
            duration: 150.0,
            probe_origins: 20,
            probe_per_origin: 3,
            ..Self::default()
        }
    }
}

/// Result of one (system, rate, degree) durability run.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityCell {
    /// Distinct piece identities registered before the churn window.
    pub initial: usize,
    /// Of those, identities still held by some live node afterwards.
    pub surviving: usize,
    /// Data-loss probability: `1 − surviving/initial`.
    pub loss: f64,
    /// Churn events applied.
    pub events: usize,
    /// Maintenance rounds that ran replica repair.
    pub repair_rounds: u64,
    /// Replica copies pushed by repair (re-replication bandwidth, in
    /// pieces).
    pub repair_copies: u64,
    /// Replicas promoted to primaries after their holder died.
    pub repair_promotions: u64,
    /// Replicas dropped because their range had been handed off.
    pub repair_dropped: u64,
    /// Post-churn range-query probe (visited-nodes summary; failures are
    /// routing failures from dead origins' stale links).
    pub probe: Summary,
}

impl DurabilityCell {
    /// Total pieces moved by repair (copies + promotions).
    pub fn repair_transfers(&self) -> u64 {
        self.repair_copies + self.repair_promotions
    }
}

/// One (rate, degree) row across the four systems.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// The Poisson churn rate `R`.
    pub rate: f64,
    /// The replication degree `k`.
    pub k: usize,
    /// Cells for LORM, Mercury, SWORD, MAAN (the [`System::ALL`] order).
    pub cells: [DurabilityCell; 4],
}

/// A completed durability sweep.
#[derive(Debug, Clone)]
pub struct Durability {
    /// The sweep parameters.
    pub setup: DurabilitySetup,
    /// One row per (rate, degree), rates outer, degrees inner.
    pub rows: Vec<DurabilityRow>,
    /// The Krishnamurthy closed-form checks run alongside the sweep.
    pub checks: Vec<TheoryCheck>,
}

/// Drive one system through one durability run.
///
/// The event loop mirrors the Figure 6 churn loop (same tick clock, same
/// live-node picking, same join/leave/fail handling) with two deliberate
/// differences: no queries are issued during the run, and maintenance
/// never calls `place_all` — only `stabilize`, so losses are permanent
/// unless replication saves them.
///
/// None of the RNG draws depend on `k`, so every degree sees the same
/// churn sample path; with nested replica-target sets (both placement
/// rules are prefix rules in `k`) piece survival is pathwise monotone in
/// the degree.
pub fn run_durability_one(
    sys: &mut (dyn ResourceDiscovery + Send + Sync),
    workload: &Workload,
    schedule: &ChurnSchedule,
    setup: &DurabilitySetup,
    k: usize,
    seed: u64,
) -> DurabilityCell {
    sys.set_replication(k);
    // Census before churn: replication adds copies, not identities, so
    // the canonical set is the same at every degree.
    let mut initial: Vec<PieceKey> = Vec::new();
    sys.surviving_pieces_into(&mut initial);
    canonicalize_pieces(&mut initial);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut events_applied = 0usize;
    let mut event_iter = schedule.events().iter().peekable();
    let mut next_maintenance = setup.maintenance_period;
    let mut max_phys = sys.num_physical();
    let pick_live =
        |sys: &(dyn ResourceDiscovery + Send + Sync), max: usize, rng: &mut SmallRng| {
            for _ in 0..64 {
                let p = rng.gen_range(0..max);
                if sys.is_live(p) {
                    return Some(p);
                }
            }
            None
        };
    let ticks = (setup.duration * setup.tick_rate).round() as usize;
    for i in 0..ticks {
        let now = (i + 1) as f64 / setup.tick_rate;
        while let Some(e) = event_iter.peek() {
            if e.time > now {
                break;
            }
            // lint:allow(panic-hygiene): peek above returned Some.
            let e = event_iter.next().expect("peeked");
            match e.kind {
                ChurnKind::Join => {
                    if sys.join_physical(&mut rng).is_ok() {
                        max_phys += 1;
                    }
                }
                ChurnKind::Leave => {
                    if sys.num_physical() > 2 {
                        if let Some(p) = pick_live(sys, max_phys, &mut rng) {
                            let _ = sys.leave_physical(p);
                        }
                    }
                }
                ChurnKind::Fail => {
                    if sys.num_physical() > 2 {
                        if let Some(p) = pick_live(sys, max_phys, &mut rng) {
                            let _ = sys.fail_physical(p);
                        }
                    }
                }
            }
            events_applied += 1;
        }
        // Maintenance repairs links and replicas — never the workload.
        if now >= next_maintenance {
            sys.stabilize();
            next_maintenance += setup.maintenance_period;
        }
    }
    let mut now_pieces: Vec<PieceKey> = Vec::new();
    sys.surviving_pieces_into(&mut now_pieces);
    canonicalize_pieces(&mut now_pieces);
    let surviving = count_surviving(&initial, &now_pieces);
    let loss = if initial.is_empty() { 0.0 } else { 1.0 - surviving as f64 / initial.len() as f64 };
    // Post-churn availability probe from live origins.
    let mut batch = Vec::with_capacity(setup.probe_origins * setup.probe_per_origin);
    for _ in 0..setup.probe_origins {
        if let Some(origin) = pick_live(sys, max_phys, &mut rng) {
            for _ in 0..setup.probe_per_origin {
                batch.push((origin, workload.random_query(setup.arity, QueryMix::Range, &mut rng)));
            }
        }
    }
    let probe = run_batch_sharded(sys, &batch, Metric::Visited, setup.shards);
    let rs = sys.repair_stats();
    DurabilityCell {
        initial: initial.len(),
        surviving,
        loss,
        events: events_applied,
        repair_rounds: rs.rounds(),
        repair_copies: rs.copies(),
        repair_promotions: rs.promotions(),
        repair_dropped: rs.dropped(),
        probe,
    }
}

/// Run the full durability sweep with a transient bed cache.
pub fn durability(cfg: &SimConfig, setup: &DurabilitySetup) -> Durability {
    durability_cached(cfg, setup, &BedCache::new())
}

/// [`durability`] against a caller-owned [`BedCache`]: every cell starts
/// from a deep clone of one prototype per system, and the schedule for a
/// rate is generated once and shared by every (system, degree) cell — a
/// degree must never perturb the churn sample path.
pub fn durability_cached(cfg: &SimConfig, setup: &DurabilitySetup, cache: &BedCache) -> Durability {
    let wl_seed = cfg.seed ^ 0xD7;
    let workload = cache.churn_workload(cfg, wl_seed);
    let mut rows = Vec::new();
    for &rate in &setup.rates {
        let mut sched_rng = SmallRng::seed_from_u64(cfg.seed ^ 0xDB ^ (rate * 1000.0) as u64);
        let schedule = ChurnSchedule::generate_with_failures(
            rate,
            setup.duration,
            setup.graceful_ratio,
            &mut sched_rng,
        );
        for &k in &setup.degrees {
            let mut cells: Vec<(System, DurabilityCell)> = Vec::with_capacity(4);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = System::ALL
                    .iter()
                    .map(|&s| {
                        let workload = &workload;
                        let schedule = &schedule;
                        scope.spawn(move |_| {
                            let mut sys = cache.churn_proto(s, cfg, wl_seed);
                            let cell = run_durability_one(
                                sys.as_mut(),
                                workload,
                                schedule,
                                setup,
                                k,
                                cfg.seed ^ 0xD6 ^ (rate * 100.0) as u64,
                            );
                            (s, cell)
                        })
                    })
                    .collect();
                for h in handles {
                    // lint:allow(panic-hygiene): a panicked worker is
                    // unrecoverable for the sweep — propagate it.
                    cells.push(h.join().expect("durability worker"));
                }
            })
            // lint:allow(panic-hygiene): scope only errs if a child panicked.
            .expect("crossbeam scope");
            let cell_of = |s: System| {
                // lint:allow(panic-hygiene): one worker per System::ALL
                // member pushed exactly one cell above.
                cells.iter().find(|(x, _)| *x == s).map(|(_, c)| c.clone()).expect("cell")
            };
            rows.push(DurabilityRow {
                rate,
                k,
                cells: [
                    cell_of(System::Lorm),
                    cell_of(System::Mercury),
                    cell_of(System::Sword),
                    cell_of(System::Maan),
                ],
            });
        }
    }
    let theory = TheorySetup::for_sweep(setup, cfg.seed);
    Durability { setup: setup.clone(), rows, checks: churn_theory_checks(&theory) }
}

impl Durability {
    /// k-monotonicity violations: for every (rate, system), the number of
    /// *surviving* pieces must be non-decreasing in the replication
    /// degree (pathwise — every degree replays the identical churn
    /// sample, and both placement rules are prefix rules in `k`).
    /// Returns one human-readable line per violation; empty means the
    /// invariant held everywhere.
    pub fn k_monotonicity_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for &rate in &self.setup.rates {
            let mut by_k: Vec<&DurabilityRow> =
                self.rows.iter().filter(|r| r.rate == rate).collect();
            by_k.sort_by_key(|r| r.k);
            for w in by_k.windows(2) {
                for (i, s) in System::ALL.iter().enumerate() {
                    let (lo, hi) = (&w[0].cells[i], &w[1].cells[i]);
                    if hi.surviving < lo.surviving {
                        out.push(format!(
                            "{} @ R={rate}: surviving {} at k={} < {} at k={}",
                            s.name(),
                            hi.surviving,
                            w[1].k,
                            lo.surviving,
                            w[0].k,
                        ));
                    }
                }
            }
        }
        out
    }

    /// Number of failed Krishnamurthy closed-form checks.
    pub fn theory_failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.ok).count()
    }

    /// Build the structured report: the loss table, the repair-traffic
    /// table, the theory-check table, and per-system probe summaries.
    pub fn report(&self) -> Report {
        let mut loss = Table::new(
            "Durability: data-loss probability vs churn rate x replication degree",
            &["R", "k", "LORM", "Mercury", "SWORD", "MAAN", "pieces", "events"],
        );
        for r in &self.rows {
            loss.row(vec![
                format!("{:.1}", r.rate),
                r.k.to_string(),
                Table::fmt_f(r.cells[0].loss),
                Table::fmt_f(r.cells[1].loss),
                Table::fmt_f(r.cells[2].loss),
                Table::fmt_f(r.cells[3].loss),
                r.cells[0].initial.to_string(),
                r.cells[0].events.to_string(),
            ]);
        }
        let mut traffic = Table::new(
            "Durability: repair transfers (replica copies + promotions) per run",
            &["R", "k", "LORM", "Mercury", "SWORD", "MAAN"],
        );
        for r in &self.rows {
            traffic.row(vec![
                format!("{:.1}", r.rate),
                r.k.to_string(),
                r.cells[0].repair_transfers().to_string(),
                r.cells[1].repair_transfers().to_string(),
                r.cells[2].repair_transfers().to_string(),
                r.cells[3].repair_transfers().to_string(),
            ]);
        }
        let mut theory = Table::new(
            "Churn theory checks (Krishnamurthy closed forms, p = 1 - exp(-lambda T / n))",
            &["check", "R", "simulated", "predicted", "tolerance", "status"],
        );
        for c in &self.checks {
            theory.row(vec![
                c.name.clone(),
                format!("{:.1}", c.rate),
                Table::fmt_f(c.simulated),
                Table::fmt_f(c.predicted),
                format!("{:.0}% + {}", c.tol_rel * 100.0, c.tol_abs),
                if c.ok { "ok".into() } else { "FAILED".into() },
            ]);
        }
        let mut rep = Report::new();
        rep.table(loss).table(traffic).table(theory);
        rep.note(
            "(loss = fraction of pre-churn piece identities no live node still holds; \
             maintenance repairs links and replicas but never re-places the workload)",
        );
        let violations = self.k_monotonicity_violations();
        if violations.is_empty() {
            rep.note("(k-monotonicity: surviving pieces non-decreasing in k at every rate)");
        } else {
            for v in violations {
                rep.note(format!("(k-monotonicity VIOLATION: {v})"));
            }
        }
        let mut summaries: Vec<(&'static str, Summary)> =
            System::ALL.map(|s| (s.name(), Summary::new())).to_vec();
        for r in &self.rows {
            for (i, c) in r.cells.iter().enumerate() {
                summaries[i].1.merge(&c.probe);
            }
        }
        for (name, s) in summaries {
            rep.summary(name, s);
        }
        rep
    }
}

impl fmt::Display for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

// ---------------------------------------------------------------------
// Krishnamurthy closed-form validation
// ---------------------------------------------------------------------

/// Parameters of the theory-validation run: a bare Chord ring under
/// windowed Poisson churn with full repair at each window boundary.
#[derive(Debug, Clone)]
pub struct TheorySetup {
    /// Ring size at build time (joins and failures balance in
    /// expectation, so the live count hovers here).
    pub nodes: usize,
    /// Successor-list length `s`. Kept short (2) so the exhaustion
    /// probability `p^s` is large enough to measure in a bounded run.
    pub succ_list_len: usize,
    /// Repair windows sampled per rate.
    pub windows: usize,
    /// Seconds per window (the repair period `T`).
    pub period: f64,
    /// Churn rates `R` to validate. Failures arrive at rate `R` (the
    /// schedule's graceful ratio is 0 — graceful departures hand off and
    /// are invisible to the staleness estimators).
    pub rates: Vec<f64>,
    /// Keys whose owner liveness is tracked per window.
    pub owner_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TheorySetup {
    /// The default validation setting: large enough samples that every
    /// estimator's Monte-Carlo noise sits well inside the tolerance
    /// bands.
    pub fn default_with_seed(seed: u64) -> Self {
        Self {
            nodes: 256,
            succ_list_len: 2,
            windows: 24,
            period: 50.0,
            rates: vec![0.4, 1.2],
            owner_samples: 64,
            seed,
        }
    }

    /// The setting the durability sweep embeds: the default sample sizes
    /// (the run is cheap — a bare 256-node ring), keyed to the sweep
    /// seed.
    pub fn for_sweep(_setup: &DurabilitySetup, seed: u64) -> Self {
        Self::default_with_seed(seed ^ 0x7E0)
    }
}

/// One closed-form check: a simulated fraction vs its prediction, with
/// the tolerance band that decides `ok`.
///
/// Tolerance bands are generous by design — the closed forms assume
/// independent deaths at a fixed `n` while the simulator draws from a
/// drifting live set — but tight enough to catch a broken estimator: a
/// staleness fraction off by 2x, or an exhaustion probability that
/// scales like `p` instead of `p^s`, fails them.
#[derive(Debug, Clone)]
pub struct TheoryCheck {
    /// Which estimator (stable, machine-readable).
    pub name: String,
    /// The churn rate validated.
    pub rate: f64,
    /// The simulated fraction (integer counts accumulated over every
    /// window, divided once at the end).
    pub simulated: f64,
    /// The closed-form prediction, sample-size weighted over windows.
    pub predicted: f64,
    /// Relative tolerance on the prediction.
    pub tol_rel: f64,
    /// Absolute tolerance floor (covers predictions near zero).
    pub tol_abs: f64,
    /// `|simulated − predicted| <= predicted·tol_rel + tol_abs`.
    pub ok: bool,
}

fn check(
    name: String,
    rate: f64,
    simulated: f64,
    predicted: f64,
    tol_rel: f64,
    tol_abs: f64,
) -> TheoryCheck {
    let ok = (simulated - predicted).abs() <= predicted * tol_rel + tol_abs;
    TheoryCheck { name, rate, simulated, predicted, tol_rel, tol_abs, ok }
}

/// Run the closed-form validation: for each rate, drive a bare Chord
/// ring through `windows` churn windows. Each window starts fully
/// repaired ([`Chord::rebuild_all_state`] — ground truth, every counter
/// zero), applies one window of Poisson churn (joins at rate `R`,
/// abrupt failures at rate `R`), samples [`Chord::successor_staleness`]
/// and the owner-death fraction *just before* repair, then repairs and
/// moves on.
pub fn churn_theory_checks(setup: &TheorySetup) -> Vec<TheoryCheck> {
    let mut out = Vec::new();
    let s = setup.succ_list_len;
    for &rate in &setup.rates {
        let cfg = ChordConfig { succ_list_len: s, seed: setup.seed };
        // lint:allow(bed-rebuild): the theory net is a bare few-hundred
        // node ring (microseconds to build), and each rate must start
        // from a fresh, fully-repaired ring by construction.
        let mut net = Chord::build(setup.nodes, cfg);
        let mut rng = SmallRng::seed_from_u64(setup.seed ^ (rate * 1000.0) as u64);
        // Integer accumulators; divide once at the end.
        let mut stale_first = 0usize;
        let mut exhausted = 0usize;
        let mut live_total = 0usize;
        let mut dead_entries = 0usize;
        let mut entries_total = 0usize;
        let mut owner_dead = 0usize;
        let mut owner_total = 0usize;
        // Prediction accumulators, weighted by the same sample counts.
        let (mut pred_stale, mut pred_exh, mut pred_dead, mut pred_owner) = (0.0, 0.0, 0.0, 0.0);
        for w in 0..setup.windows {
            let n_start = net.len();
            let p = 1.0 - (-rate * setup.period / n_start as f64).exp();
            // Snapshot the owners of a fixed key sample; liveness is
            // checked against these *nodes* at window end, so later
            // joins cannot mask a death.
            let owners: Vec<_> = (0..setup.owner_samples)
                .filter_map(|j| net.owner_of(splitmix64(setup.seed ^ j as u64)).ok())
                .collect();
            let schedule = ChurnSchedule::generate_with_failures(rate, setup.period, 0.0, &mut rng);
            for e in schedule.events() {
                match e.kind {
                    ChurnKind::Join => {
                        if let Some(b) = net.random_node(&mut rng) {
                            let _ = net.join(b);
                        }
                    }
                    ChurnKind::Leave | ChurnKind::Fail => {
                        if net.len() > s + 4 {
                            if let Some(v) = net.random_node(&mut rng) {
                                let _ = net.fail(v);
                            }
                        }
                    }
                }
            }
            // Sample just before repair.
            let st = net.successor_staleness();
            stale_first += st.stale_first;
            exhausted += st.exhausted;
            live_total += st.live;
            dead_entries += st.dead_entries;
            entries_total += st.entries;
            let dead_now =
                owners.iter().filter(|&&o| !net.node(o).map(|x| x.is_alive()).unwrap_or(false));
            owner_dead += dead_now.count();
            owner_total += owners.len();
            pred_stale += p * st.live as f64;
            pred_exh += p.powi(s as i32) * st.live as f64;
            pred_dead += p * st.entries as f64;
            pred_owner += p * owners.len() as f64;
            // Full repair: next window starts from ground truth.
            net.rebuild_all_state();
            let _ = w;
        }
        let frac = |num: usize, den: usize| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        let pred = |sum: f64, den: usize| if den == 0 { 0.0 } else { sum / den as f64 };
        out.push(check(
            "stale_first_successor".into(),
            rate,
            frac(stale_first, live_total),
            pred(pred_stale, live_total),
            0.35,
            0.01,
        ));
        out.push(check(
            "dead_successor_entries".into(),
            rate,
            frac(dead_entries, entries_total),
            pred(pred_dead, entries_total),
            0.35,
            0.01,
        ));
        out.push(check(
            "successor_list_exhausted".into(),
            rate,
            frac(exhausted, live_total),
            pred(pred_exh, live_total),
            0.5,
            0.015,
        ));
        out.push(check(
            "owner_lookup_failure".into(),
            rate,
            frac(owner_dead, owner_total),
            pred(pred_owner, owner_total),
            0.35,
            0.015,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::build_system;

    fn small_cfg() -> SimConfig {
        SimConfig { nodes: 384, attrs: 20, values: 50, dimension: 7, ..SimConfig::default() }
    }

    fn tiny_setup() -> DurabilitySetup {
        DurabilitySetup {
            rates: vec![0.4],
            degrees: vec![1, 2],
            duration: 100.0,
            probe_origins: 8,
            probe_per_origin: 2,
            ..DurabilitySetup::quick()
        }
    }

    #[test]
    fn replication_reduces_loss_on_one_cell() {
        let cfg = small_cfg();
        let mut wl_rng = SmallRng::seed_from_u64(21);
        let workload = Workload::generate(cfg.workload_config(), &mut wl_rng).unwrap();
        let setup = tiny_setup();
        let mut sched_rng = SmallRng::seed_from_u64(22);
        let schedule =
            ChurnSchedule::generate_with_failures(0.5, setup.duration, 0.0, &mut sched_rng);
        let mut unrepl = build_system(System::Sword, &workload, &cfg);
        let c1 = run_durability_one(unrepl.as_mut(), &workload, &schedule, &setup, 1, 23);
        let mut repl = build_system(System::Sword, &workload, &cfg);
        let c3 = run_durability_one(repl.as_mut(), &workload, &schedule, &setup, 3, 23);
        assert_eq!(c1.initial, c3.initial, "replication must not add identities");
        assert!(c1.events > 0, "schedule produced no events");
        assert!(
            c3.surviving >= c1.surviving,
            "k=3 survived {} < k=1's {}",
            c3.surviving,
            c1.surviving
        );
        assert!(c1.loss > 0.0, "abrupt-failure churn lost nothing at k=1");
        assert!(c3.loss < c1.loss, "k=3 loss {} !< k=1 loss {}", c3.loss, c1.loss);
        assert_eq!(c1.repair_transfers(), 0, "k=1 repair must be a no-op");
        assert!(c3.repair_transfers() > 0, "k=3 repair moved nothing");
        assert!(c3.repair_rounds > 0);
    }

    #[test]
    fn sweep_is_monotone_and_reports() {
        let cfg = small_cfg();
        let setup = tiny_setup();
        let d = durability(&cfg, &setup);
        assert_eq!(d.rows.len(), setup.rates.len() * setup.degrees.len());
        assert!(d.k_monotonicity_violations().is_empty());
        let rep = d.report();
        let text = rep.to_string();
        assert!(text.contains("data-loss probability"), "{text}");
        assert!(text.contains("Churn theory checks"), "{text}");
        assert!(text.contains("k-monotonicity: surviving pieces non-decreasing"), "{text}");
        let j = rep.to_json();
        assert!(j.starts_with("{\"tables\":["), "{j}");
    }

    #[test]
    fn theory_checks_pass_at_default_setting() {
        let checks = churn_theory_checks(&TheorySetup::default_with_seed(0x1C99));
        assert_eq!(checks.len(), 8, "4 estimators x 2 rates");
        for c in &checks {
            assert!(
                c.ok,
                "{} @ R={}: simulated {} vs predicted {} (tol {}% + {})",
                c.name,
                c.rate,
                c.simulated,
                c.predicted,
                c.tol_rel * 100.0,
                c.tol_abs
            );
        }
        // The heavy-churn exhaustion estimator must actually observe
        // exhaustion — a zero simulated fraction would pass the band
        // trivially while measuring nothing.
        let exh = checks
            .iter()
            .find(|c| c.name == "successor_list_exhausted" && c.rate > 1.0)
            .expect("heavy-churn exhaustion check");
        assert!(exh.simulated > 0.0, "exhaustion never observed");
        assert!(exh.predicted > 0.01, "setup too mild to validate p^s");
    }

    #[test]
    fn theory_checks_catch_a_wrong_prediction() {
        // Same machinery, deliberately broken closed form: the band must
        // reject a prediction that is off by 3x.
        let c = check("synthetic".into(), 1.0, 0.3, 0.1, 0.35, 0.01);
        assert!(!c.ok);
        let c = check("synthetic".into(), 1.0, 0.102, 0.1, 0.35, 0.01);
        assert!(c.ok);
    }
}
