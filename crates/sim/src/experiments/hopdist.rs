//! Hop-count distributions — an extension behind Figure 4's averages.
//!
//! The paper reports only the mean logical hops per query. The full
//! distribution explains *why* the means sit where they do: Chord lookups
//! concentrate around `log₂n/2` with a binomial-like spread, Cycloid's
//! phase routing is wider and shifted to ~`d`, and MAAN's two lookups per
//! attribute convolve the Chord distribution with itself.

use crate::experiments::query_batch;
use crate::report::Report;
use crate::setup::TestBed;
use crate::table::Table;
use analysis::System;
use dht_core::{Histogram, Summary};
use grid_resource::QueryMix;
use std::fmt;

/// Per-system hop histograms for single-attribute non-range lookups.
#[derive(Debug, Clone)]
pub struct HopDist {
    /// One histogram per system, `System::ALL` order.
    pub hists: Vec<(&'static str, Histogram)>,
    /// Per-system hop summaries (same order) — full precision, including
    /// the count of queries that failed to resolve.
    pub summaries: Vec<(&'static str, Summary)>,
    /// Queries measured.
    pub queries: usize,
}

/// Measure single-attribute lookup hop distributions.
pub fn hop_distribution(bed: &TestBed, queries: usize) -> HopDist {
    let batch = query_batch(
        &bed.workload,
        bed.cfg.nodes,
        queries,
        1,
        1,
        QueryMix::NonRange,
        bed.cfg.seed ^ 0x40D,
    );
    let max_bucket = 4 * bed.cfg.dimension as usize + 8;
    let mut hists = Vec::new();
    let mut summaries = Vec::new();
    for s in System::ALL {
        let sys = bed.system(s);
        let mut h = Histogram::new(max_bucket);
        let mut sum = Summary::new();
        for (phys, q) in &batch {
            match sys.query_from(*phys, q) {
                Ok(out) => {
                    h.record(out.tally.hops);
                    sum.record(out.tally.hops as f64);
                }
                Err(_) => sum.record_failure(),
            }
        }
        hists.push((s.name(), h));
        summaries.push((s.name(), sum));
    }
    HopDist { hists, summaries, queries: batch.len() }
}

impl HopDist {
    /// Build the structured report (quantile table, per-hop frequency
    /// table, and the full-precision per-system summaries).
    pub fn report(&self) -> Report {
        let mut t = Table::new(
            format!(
                "Extension: hop distribution of single-attribute lookups ({} queries)",
                self.queries
            ),
            &["system", "mode", "p50", "p90", "p99", "max seen"],
        );
        for (name, h) in &self.hists {
            let fmt_q = |q: f64| h.quantile(q).map_or("-".to_string(), |x| x.to_string());
            let max_seen =
                h.entries().filter_map(|(x, _)| x).max().map_or("-".to_string(), |x| x.to_string());
            t.row(vec![
                name.to_string(),
                h.mode().map_or("-".to_string(), |x| x.to_string()),
                fmt_q(0.5),
                fmt_q(0.9),
                fmt_q(0.99),
                max_seen,
            ]);
        }
        // compact per-hop rows for the two substrates' shapes
        let mut d = Table::new(
            "hop-count frequencies (% of queries)",
            &["hops", "LORM", "Mercury", "SWORD", "MAAN"],
        );
        let upper = self
            .hists
            .iter()
            .flat_map(|(_, h)| h.entries().filter_map(|(x, _)| x))
            .max()
            .unwrap_or(0);
        for hop in 0..=upper {
            let cells: Vec<String> = self
                .hists
                .iter()
                .map(|(_, h)| {
                    let c = h.bucket(hop).unwrap_or(0);
                    if c == 0 {
                        "·".to_string()
                    } else {
                        format!("{:.1}", 100.0 * c as f64 / h.count() as f64)
                    }
                })
                .collect();
            let mut row = vec![hop.to_string()];
            row.extend(cells);
            d.row(row);
        }
        let mut rep = Report::new();
        rep.table(t).table(d);
        for (name, s) in &self.summaries {
            rep.summary(*name, s.clone());
        }
        rep
    }
}

impl fmt::Display for HopDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SimConfig;

    #[test]
    fn distributions_have_the_expected_centers() {
        let cfg =
            SimConfig { nodes: 896, dimension: 7, attrs: 20, values: 50, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let dist = hop_distribution(&bed, 400);
        let get = |n: &str| &dist.hists.iter().find(|(name, _)| *name == n).expect("hist").1;
        // Chord median ~ log2(896)/2 ≈ 5
        let sword_p50 = get("SWORD").quantile(0.5).unwrap();
        assert!((4..=7).contains(&sword_p50), "SWORD p50 {sword_p50}");
        // MAAN median ~ 2x Chord's
        let maan_p50 = get("MAAN").quantile(0.5).unwrap();
        assert!(maan_p50 >= 2 * sword_p50 - 3, "MAAN p50 {maan_p50}");
        // LORM median near d..1.5d
        let lorm_p50 = get("LORM").quantile(0.5).unwrap();
        assert!((6..=12).contains(&lorm_p50), "LORM p50 {lorm_p50}");
        // rendering works and includes the frequency block
        let s = dist.to_string();
        assert!(s.contains("hop-count frequencies"));
        // no query silently dropped: every query is either an observation
        // or a counted failure, and a static bed fails none
        for (name, sum) in &dist.summaries {
            assert_eq!(sum.failures(), 0, "{name} queries failed");
            assert_eq!(sum.count() as usize, dist.queries, "{name} lost observations");
        }
    }
}
