//! Figure 4 — logical hops of non-range multi-attribute queries.
//!
//! The paper varies the number of attributes per query from 1 to 10,
//! issues 10 queries from each of 100 random nodes, and reports the
//! average (4(a)) and total (4(b)) logical hops per system, next to the
//! analysis curves "Analysis-LORM" (= MAAN ÷ log n/d, Theorem 4.7) and
//! "Analysis-SWORD/Mercury" (= MAAN ÷ 2, Theorem 4.8) derived from the
//! measured MAAN.

use crate::experiments::{
    query_batch, run_batch_all_cached_planned, run_batch_all_planned, summary_of, CachePool,
    Engine, Metric,
};
use crate::report::Report;
use crate::setup::TestBed;
use crate::table::Table;
use analysis::{self as th, System};
use dht_core::Summary;
use grid_resource::{QueryMix, QueryPlan};
use std::fmt;

/// One arity's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Attributes per query (1–10 in the paper).
    pub arity: usize,
    /// Average hops per query: LORM, Mercury, SWORD, MAAN.
    pub avg: [f64; 4],
    /// Total hops over the whole batch, same order.
    pub total: [f64; 4],
    /// "Analysis-LORM": measured MAAN average ÷ (log2 n / d).
    pub analysis_lorm: f64,
    /// "Analysis-SWORD/Mercury": measured MAAN average ÷ 2.
    pub analysis_single: f64,
    /// Queries in the batch.
    pub queries: usize,
}

/// The Figure 4 series (both sub-figures share the measurement).
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One row per arity.
    pub rows: Vec<Fig4Row>,
    /// Per-system hop summaries merged over every arity batch
    /// (`System::ALL` order) — full precision for the JSON export.
    pub summaries: Vec<(&'static str, Summary)>,
}

/// Run the Figure 4 experiment on a mounted test bed.
pub fn fig4(
    bed: &TestBed,
    arities: impl IntoIterator<Item = usize>,
    origins: usize,
    per_origin: usize,
) -> Fig4 {
    fig4_with_engine(bed, arities, origins, per_origin, Engine::Plain)
}

/// [`fig4`] on a chosen batch [`Engine`]; both engines produce the same
/// figure bit-for-bit.
pub fn fig4_with_engine(
    bed: &TestBed,
    arities: impl IntoIterator<Item = usize>,
    origins: usize,
    per_origin: usize,
    engine: Engine,
) -> Fig4 {
    fig4_planned(bed, arities, origins, per_origin, engine, QueryPlan::Parallel)
}

/// [`fig4_with_engine`] under an explicit [`QueryPlan`]. The parallel plan
/// reproduces the paper's figure exactly; sequential/adaptive plans keep
/// the answer sets but change hop counts (each sub-query after the first
/// still pays its lookup walk, so the curve shifts, not the ordering).
pub fn fig4_planned(
    bed: &TestBed,
    arities: impl IntoIterator<Item = usize>,
    origins: usize,
    per_origin: usize,
    engine: Engine,
    plan: QueryPlan,
) -> Fig4 {
    let p = bed.cfg.params();
    let mut rows = Vec::new();
    let mut summaries: Vec<(&'static str, Summary)> =
        System::ALL.map(|s| (s.name(), Summary::new())).to_vec();
    // Cache pools persist across the arity sweep: the systems are not
    // mutated between rounds, so entries stay epoch-fresh and repeated
    // (origin, attribute) lookups across arities hit.
    let mut pools: Vec<CachePool> = bed.systems.iter().map(|_| CachePool::new()).collect();
    for arity in arities {
        let batch = query_batch(
            &bed.workload,
            bed.cfg.nodes,
            origins,
            per_origin,
            arity,
            QueryMix::NonRange,
            bed.seeds.seed() ^ 0xF400 ^ arity as u64,
        );
        let measured = match engine {
            Engine::Plain => {
                run_batch_all_planned(&bed.systems, &batch, Metric::Hops, plan, engine)
            }
            Engine::Cached => {
                run_batch_all_cached_planned(&bed.systems, &batch, Metric::Hops, plan, &mut pools)
            }
        };
        for (i, s) in System::ALL.iter().enumerate() {
            summaries[i].1.merge(summary_of(&measured, *s));
        }
        let avg = System::ALL.map(|s| summary_of(&measured, s).mean());
        let total = System::ALL.map(|s| summary_of(&measured, s).total());
        let maan_avg = avg[3];
        rows.push(Fig4Row {
            arity,
            avg,
            total,
            analysis_lorm: maan_avg / th::t47_maan_over_lorm_hops(&p),
            analysis_single: maan_avg / th::t48_maan_over_single_lookup(),
            queries: batch.len(),
        });
    }
    Fig4 { rows, summaries }
}

impl Fig4 {
    /// Build the structured report (both sub-figure tables plus the
    /// full-precision per-system summaries).
    pub fn report(&self) -> Report {
        let mut a = Table::new(
            "Figure 4(a): average logical hops per non-range query",
            &["attrs", "LORM", "Mercury", "SWORD", "MAAN", "Analysis-LORM", "Analysis-S/M"],
        );
        for r in &self.rows {
            a.row(vec![
                r.arity.to_string(),
                Table::fmt_f(r.avg[0]),
                Table::fmt_f(r.avg[1]),
                Table::fmt_f(r.avg[2]),
                Table::fmt_f(r.avg[3]),
                Table::fmt_f(r.analysis_lorm),
                Table::fmt_f(r.analysis_single),
            ]);
        }
        let mut b = Table::new(
            "Figure 4(b): total logical hops over the query batch",
            &["attrs", "queries", "LORM", "Mercury", "SWORD", "MAAN"],
        );
        for r in &self.rows {
            b.row(vec![
                r.arity.to_string(),
                r.queries.to_string(),
                Table::fmt_f(r.total[0]),
                Table::fmt_f(r.total[1]),
                Table::fmt_f(r.total[2]),
                Table::fmt_f(r.total[3]),
            ]);
        }
        let mut rep = Report::new();
        rep.table(a).table(b);
        for (name, s) in &self.summaries {
            rep.summary(*name, s.clone());
        }
        rep
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SimConfig;

    #[test]
    fn fig4_reproduces_hop_ordering() {
        // Scaled-down bed (full clusters: n = d·2^d with d = 7).
        let cfg =
            SimConfig { nodes: 896, attrs: 30, values: 60, dimension: 7, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let fig = fig4(&bed, [1, 5], 30, 5);
        assert_eq!(fig.rows.len(), 2);
        for r in &fig.rows {
            let [lorm, mercury, sword, maan] = r.avg;
            // Theorem 4.7/4.8 ordering: MAAN > LORM > Mercury ≈ SWORD.
            assert!(maan > lorm, "MAAN {maan} must exceed LORM {lorm}");
            assert!(lorm > mercury, "LORM {lorm} must exceed Mercury {mercury}");
            assert!((mercury - sword).abs() < 1.5, "Mercury {mercury} ≈ SWORD {sword}");
            // MAAN needs two lookups: ~2x the single-lookup systems.
            assert!((maan / mercury - 2.0).abs() < 0.4, "MAAN/Mercury = {}", maan / mercury);
            // analysis overlays sit between
            assert!(r.analysis_lorm < maan && r.analysis_lorm > mercury);
        }
        // hops grow with arity
        assert!(fig.rows[1].avg[0] > fig.rows[0].avg[0] * 3.0);
        // totals = avg × count
        let r = &fig.rows[0];
        assert!((r.total[3] - r.avg[3] * r.queries as f64).abs() < 1e-6);
    }

    #[test]
    fn cached_engine_reproduces_fig4_bit_for_bit() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let plain = fig4_with_engine(&bed, [1, 3], 10, 3, Engine::Plain);
        let cached = fig4_with_engine(&bed, [1, 3], 10, 3, Engine::Cached);
        assert_eq!(plain.rows, cached.rows);
        assert_eq!(plain.report().to_json(), cached.report().to_json());
    }

    #[test]
    fn analysis_columns_are_derived_from_measured_maan() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let fig = fig4(&bed, [2], 10, 3);
        let r = &fig.rows[0];
        let p = cfg.params();
        let maan = r.avg[3];
        assert!((r.analysis_lorm - maan / analysis::t47_maan_over_lorm_hops(&p)).abs() < 1e-9);
        assert!((r.analysis_single - maan / 2.0).abs() < 1e-9);
        // and the table renders both sub-figures
        let s = fig.to_string();
        assert!(s.contains("Figure 4(a)") && s.contains("Figure 4(b)"));
    }
}
