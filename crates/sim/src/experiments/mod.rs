//! One module per paper artifact (figure / theorem) plus ablations.

pub mod ablation;
pub mod chaos;
pub mod durability;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod hopdist;
pub mod latency;
pub mod maintenance;
pub mod worstcase;

use std::sync::atomic::{AtomicUsize, Ordering};

use analysis::System;
use dht_core::{hashing::splitmix64, FaultPlan, RouteCache, Summary};
use grid_resource::{Query, QueryMix, QueryPlan, ResourceDiscovery, ValueTarget, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shard-count override for [`run_batch`]; `0` means "auto" (one shard
/// per available core).
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Set the number of shards [`run_batch`] splits each query batch into.
/// `0` restores the default (one shard per available core). Applies
/// process-wide; the `repro` binary wires its `--shards=N` flag here.
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n, Ordering::Relaxed);
}

/// The shard count [`run_batch`] currently uses.
pub fn default_shards() -> usize {
    match DEFAULT_SHARDS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Generate the paper's query batch: `origins` random requester nodes,
/// `per_origin` queries each, all with the given arity and mix.
pub fn query_batch(
    workload: &Workload,
    num_phys: usize,
    origins: usize,
    per_origin: usize,
    arity: usize,
    mix: QueryMix,
    seed: u64,
) -> Vec<(usize, Query)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(origins * per_origin);
    for _ in 0..origins {
        let phys = rng.gen_range(0..num_phys);
        for _ in 0..per_origin {
            batch.push((phys, workload.random_query(arity, mix, &mut rng)));
        }
    }
    batch
}

/// Run a contiguous slice of a batch sequentially on the calling thread,
/// resolving each query under `plan` ([`QueryPlan::Parallel`] is the
/// classic `query_from` path, byte for byte).
fn run_shard(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    shard: &[(usize, Query)],
    metric: Metric,
    plan: QueryPlan,
) -> Summary {
    let mut s = Summary::new();
    for (phys, q) in shard {
        match sys.query_planned(*phys, q, plan) {
            Ok(out) => s.record(metric.of(&out.tally)),
            Err(_) => s.record_failure(),
        }
    }
    s
}

/// Reduction granularity of [`run_batch`]: queries are always summarized
/// per `MICRO_CHUNK`-sized slice and the per-slice summaries merged in
/// batch order, whatever the shard count. The merge *sequence* is then a
/// function of the batch alone, which makes every summary field —
/// including the variance, whose merge is not associative in floating
/// point — bit-identical across shard counts.
const MICRO_CHUNK: usize = 64;

/// Run a query batch against one system, summarizing a chosen metric.
/// Failed queries are counted via [`Summary::failures`] instead of being
/// silently dropped.
///
/// The batch is executed on [`default_shards`] scoped worker threads, but
/// reduced deterministically: per fixed-size micro-chunk (`MICRO_CHUNK`,
/// 64 queries), merged in batch order. The result is bit-identical for
/// every shard count.
pub fn run_batch(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
) -> Summary {
    run_batch_sharded(sys, batch, metric, default_shards())
}

/// Fold micro-chunk summaries in order into one batch summary.
fn merge_in_order(parts: impl IntoIterator<Item = Summary>) -> Summary {
    let mut merged = Summary::new();
    for part in parts {
        merged.merge(&part);
    }
    merged
}

/// [`run_batch`] with an explicit shard count (`0` or `1` runs inline on
/// the calling thread). The shard count decides only *which thread*
/// summarizes each micro-chunk, never the reduction order.
pub fn run_batch_sharded(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    shards: usize,
) -> Summary {
    run_batch_planned_sharded(sys, batch, metric, QueryPlan::Parallel, shards)
}

/// [`run_batch_sharded`] under an explicit [`QueryPlan`]: every query
/// resolves through `query_planned`, so sequential/adaptive plans thread
/// their candidate sets inside the same ordered micro-chunk reduction.
/// Bit-identical across shard counts for every plan, and byte-identical
/// to [`run_batch_sharded`] at [`QueryPlan::Parallel`].
pub fn run_batch_planned_sharded(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    plan: QueryPlan,
    shards: usize,
) -> Summary {
    let micro: Vec<&[(usize, Query)]> = batch.chunks(MICRO_CHUNK.max(1)).collect();
    if shards <= 1 || micro.len() <= 1 {
        return merge_in_order(micro.into_iter().map(|c| run_shard(sys, c, metric, plan)));
    }
    // Give each worker a contiguous run of micro-chunks; workers return
    // their per-chunk summaries in order, and the single-threaded merge
    // below walks workers (and chunks within each worker) in batch order.
    let per_worker = micro.len().div_ceil(shards);
    let mut parts: Vec<Summary> = Vec::with_capacity(micro.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = micro
            .chunks(per_worker)
            .map(|chunks| {
                scope.spawn(move |_| {
                    chunks.iter().map(|c| run_shard(sys, c, metric, plan)).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // lint:allow(panic-hygiene): join fails only if the worker
            // panicked; re-raising that panic is the intended behaviour.
            parts.extend(h.join().expect("shard worker panicked"));
        }
    })
    // lint:allow(panic-hygiene): crossbeam scope errs only when a
    // child panicked; re-raising that panic is the intended behaviour.
    .expect("crossbeam scope");
    merge_in_order(parts)
}

/// Locality sort key of one batched query: the first sub-query's
/// `(attribute, low value)` pair, then the origin. Queries sharing an
/// attribute and nearby range anchors route to the same keys and walk
/// overlapping segments, so executing a micro-chunk in this order turns
/// the route cache's repeated-lookup hits into back-to-back hits and lets
/// coalescing walk spans serve one another.
fn locality_key(phys: usize, q: &Query) -> (u32, u64, usize) {
    match q.subs.first() {
        Some(sub) => {
            let lo = match sub.target {
                ValueTarget::Point(v) => v,
                ValueTarget::Range { low, .. } => low,
            };
            // Workload values are non-negative, so the bit pattern orders
            // like the number; a heuristic sort needs nothing stronger.
            (sub.attr.0, lo.to_bits(), phys)
        }
        None => (u32::MAX, 0, phys),
    }
}

/// Run one micro-chunk through the cached query path, executing in
/// locality order but *recording at original positions*: the Summary
/// fold below never observes the sort, so every field stays bit-identical
/// to [`run_shard`] (each cached query is itself byte-identical to its
/// uncached twin by construction).
fn run_shard_cached(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    shard: &[(usize, Query)],
    metric: Metric,
    plan: QueryPlan,
    cache: &mut RouteCache,
) -> Summary {
    let mut order: Vec<usize> = (0..shard.len()).collect();
    order.sort_by_key(|&i| locality_key(shard[i].0, &shard[i].1));
    let mut vals: Vec<Option<f64>> = vec![None; shard.len()];
    for &i in &order {
        let (phys, q) = &shard[i];
        if let Ok(out) = sys.query_planned_cached(*phys, q, plan, cache) {
            vals[i] = Some(metric.of(&out.tally));
        }
    }
    let mut s = Summary::new();
    for v in vals {
        match v {
            Some(v) => s.record(v),
            None => s.record_failure(),
        }
    }
    s
}

/// Cached, batched [`run_batch`]: identical summaries on [`default_shards`]
/// workers, with repeated lookups served from `cache`.
pub fn run_batch_cached(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    cache: &mut RouteCache,
) -> Summary {
    run_batch_cached_sharded(sys, batch, metric, default_shards(), cache)
}

/// [`run_batch_sharded`] through the epoch-invalidated route cache and the
/// locality-ordered chunk executor — bit-identical summaries at every
/// shard count, by construction (see `run_shard_cached`).
///
/// At `shards <= 1` the caller's `cache` persists across the whole batch
/// (the perf harness warms it and then measures its hit rate); at higher
/// shard counts each worker runs its own fresh cache — caches never alter
/// results, so the choice is invisible in the output.
pub fn run_batch_cached_sharded(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    shards: usize,
    cache: &mut RouteCache,
) -> Summary {
    run_batch_planned_cached_sharded(sys, batch, metric, QueryPlan::Parallel, shards, cache)
}

/// [`run_batch_cached_sharded`] under an explicit [`QueryPlan`]: the
/// cached twin of [`run_batch_planned_sharded`]. Sequential/adaptive
/// sub-query walks flow through the route cache one sub-query at a time,
/// so repeated attribute anchors across the locality-sorted chunk stay
/// memoized exactly as in the parallel path.
pub fn run_batch_planned_cached_sharded(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    plan: QueryPlan,
    shards: usize,
    cache: &mut RouteCache,
) -> Summary {
    let micro: Vec<&[(usize, Query)]> = batch.chunks(MICRO_CHUNK.max(1)).collect();
    if shards <= 1 || micro.len() <= 1 {
        return merge_in_order(
            micro.into_iter().map(|c| run_shard_cached(sys, c, metric, plan, cache)),
        );
    }
    let per_worker = micro.len().div_ceil(shards);
    let mut parts: Vec<Summary> = Vec::with_capacity(micro.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = micro
            .chunks(per_worker)
            .map(|chunks| {
                scope.spawn(move |_| {
                    let mut local = RouteCache::new();
                    chunks
                        .iter()
                        .map(|c| run_shard_cached(sys, c, metric, plan, &mut local))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // lint:allow(panic-hygiene): join fails only if the worker
            // panicked; re-raising that panic is the intended behaviour.
            parts.extend(h.join().expect("shard worker panicked"));
        }
    })
    // lint:allow(panic-hygiene): crossbeam scope errs only when a
    // child panicked; re-raising that panic is the intended behaviour.
    .expect("crossbeam scope");
    merge_in_order(parts)
}

/// A per-system pool of worker route caches for the pooled executor
/// (see [`run_batch_cached_pooled`]): worker `i` always draws `pool[i]`,
/// so a pool held across calls keeps each worker's cache warm for its
/// stable slice of the batch stream.
pub type CachePool = Vec<RouteCache>;

/// [`run_batch_cached_sharded`], drawing per-worker caches from a
/// caller-owned pool instead of building fresh ones per call. The pool
/// grows to the worker count on first use; the figure pipelines hold one
/// pool per system across their sweep loops, so later rounds replay
/// routes and walks the earlier rounds recorded against the *same*
/// (unmutated, equal-epoch) system. Caches never alter results, so the
/// summaries stay bit-identical to every other executor.
///
/// Pools must never outlive their system's overlay state: two bed clones
/// can share an epoch value while holding different links, which is why
/// the churn pipeline (fig 6) builds a fresh cache per run instead.
pub fn run_batch_cached_pooled(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    shards: usize,
    pool: &mut CachePool,
) -> Summary {
    run_batch_planned_cached_pooled(sys, batch, metric, QueryPlan::Parallel, shards, pool)
}

/// [`run_batch_cached_pooled`] under an explicit [`QueryPlan`] — the
/// executor the figure pipelines use when a `--plan=` override is in
/// effect, keeping their per-system pools warm across sweep rounds.
pub fn run_batch_planned_cached_pooled(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    plan: QueryPlan,
    shards: usize,
    pool: &mut CachePool,
) -> Summary {
    let micro: Vec<&[(usize, Query)]> = batch.chunks(MICRO_CHUNK.max(1)).collect();
    if shards <= 1 || micro.len() <= 1 {
        if pool.is_empty() {
            pool.push(RouteCache::new());
        }
        let cache = &mut pool[0];
        return merge_in_order(
            micro.into_iter().map(|c| run_shard_cached(sys, c, metric, plan, cache)),
        );
    }
    let per_worker = micro.len().div_ceil(shards);
    let workers = micro.len().div_ceil(per_worker);
    while pool.len() < workers {
        pool.push(RouteCache::new());
    }
    let mut parts: Vec<Summary> = Vec::with_capacity(micro.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = micro
            .chunks(per_worker)
            .zip(pool.iter_mut())
            .map(|(chunks, cache)| {
                scope.spawn(move |_| {
                    chunks
                        .iter()
                        .map(|c| run_shard_cached(sys, c, metric, plan, cache))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            parts.extend(h.join().expect("shard worker panicked"));
        }
    })
    .expect("crossbeam scope");
    merge_in_order(parts)
}

/// The fault-coin seed of the query at global batch position `index`: a
/// pure function of the plan seed and the position, so sharding can
/// never change which faults a query draws.
fn msg_seed_at(plan: &FaultPlan, index: usize) -> u64 {
    splitmix64(plan.seed() ^ index as u64)
}

/// Run a contiguous slice of a batch under a fault plan. `base` is the
/// global batch index of the slice's first query.
fn run_shard_faulty(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    shard: &[(usize, Query)],
    metric: Metric,
    plan: &FaultPlan,
    base: usize,
) -> Summary {
    let mut s = Summary::new();
    for (j, (phys, q)) in shard.iter().enumerate() {
        match sys.query_from_faulty(*phys, q, plan, msg_seed_at(plan, base + j)) {
            Ok(f) => {
                let v = metric.of(&f.outcome.tally);
                if f.is_failed() {
                    s.record_failure();
                } else if f.is_partial() {
                    s.record_partial(v);
                } else {
                    s.record(v);
                }
                s.add_retries(f.retries);
                s.add_dropped_msgs(f.dropped_msgs);
            }
            Err(_) => s.record_failure(),
        }
    }
    s
}

/// [`run_batch`] under a fault plan, on [`default_shards`] workers.
/// With an inert plan the result is bit-identical to [`run_batch`].
pub fn run_batch_faulty(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    plan: &FaultPlan,
) -> Summary {
    run_batch_faulty_sharded(sys, batch, metric, plan, default_shards())
}

/// [`run_batch_faulty`] with an explicit shard count. Fault coins are a
/// pure function of `(plan seed, global batch position)` and reduction
/// follows the same ordered micro-chunk scheme as [`run_batch_sharded`],
/// so every summary field — including the degradation counters — is
/// bit-identical across shard counts.
pub fn run_batch_faulty_sharded(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    plan: &FaultPlan,
    shards: usize,
) -> Summary {
    let micro: Vec<(usize, &[(usize, Query)])> =
        batch.chunks(MICRO_CHUNK.max(1)).enumerate().collect();
    if shards <= 1 || micro.len() <= 1 {
        return merge_in_order(
            micro.into_iter().map(|(i, c)| run_shard_faulty(sys, c, metric, plan, i * MICRO_CHUNK)),
        );
    }
    let per_worker = micro.len().div_ceil(shards);
    let mut parts: Vec<Summary> = Vec::with_capacity(micro.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = micro
            .chunks(per_worker)
            .map(|chunks| {
                scope.spawn(move |_| {
                    chunks
                        .iter()
                        .map(|(i, c)| run_shard_faulty(sys, c, metric, plan, i * MICRO_CHUNK))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // lint:allow(panic-hygiene): join fails only if the worker
            // panicked; re-raising that panic is the intended behaviour.
            parts.extend(h.join().expect("shard worker panicked"));
        }
    })
    // lint:allow(panic-hygiene): crossbeam scope errs only when a
    // child panicked; re-raising that panic is the intended behaviour.
    .expect("crossbeam scope");
    merge_in_order(parts)
}

/// Like [`run_shard_faulty`], but queries whose fault coins are inert
/// short-circuit through the route cache (see
/// [`ResourceDiscovery::query_from_faulty_cached`]). Execution runs in
/// locality order while each query keeps the fault seed of its *original*
/// global position, and records fold at original positions — the fault
/// draw and the Summary are both blind to the sort.
fn run_shard_faulty_cached(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    shard: &[(usize, Query)],
    metric: Metric,
    plan: &FaultPlan,
    base: usize,
    cache: &mut RouteCache,
) -> Summary {
    let mut order: Vec<usize> = (0..shard.len()).collect();
    order.sort_by_key(|&j| locality_key(shard[j].0, &shard[j].1));
    let mut vals: Vec<Option<grid_resource::FaultyOutcome>> = vec![None; shard.len()];
    for &j in &order {
        let (phys, q) = &shard[j];
        if let Ok(f) =
            sys.query_from_faulty_cached(*phys, q, plan, msg_seed_at(plan, base + j), cache)
        {
            vals[j] = Some(f);
        }
    }
    let mut s = Summary::new();
    for f in vals {
        match f {
            Some(f) => {
                let v = metric.of(&f.outcome.tally);
                if f.is_failed() {
                    s.record_failure();
                } else if f.is_partial() {
                    s.record_partial(v);
                } else {
                    s.record(v);
                }
                s.add_retries(f.retries);
                s.add_dropped_msgs(f.dropped_msgs);
            }
            None => s.record_failure(),
        }
    }
    s
}

/// [`run_batch_faulty_sharded`] through the route cache: bit-identical
/// to the uncached run at every shard count, with the inert fraction of
/// the batch served from cache.
pub fn run_batch_faulty_cached_sharded(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    plan: &FaultPlan,
    shards: usize,
    cache: &mut RouteCache,
) -> Summary {
    let micro: Vec<(usize, &[(usize, Query)])> =
        batch.chunks(MICRO_CHUNK.max(1)).enumerate().collect();
    if shards <= 1 || micro.len() <= 1 {
        return merge_in_order(
            micro.into_iter().map(|(i, c)| {
                run_shard_faulty_cached(sys, c, metric, plan, i * MICRO_CHUNK, cache)
            }),
        );
    }
    let per_worker = micro.len().div_ceil(shards);
    let mut parts: Vec<Summary> = Vec::with_capacity(micro.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = micro
            .chunks(per_worker)
            .map(|chunks| {
                scope.spawn(move |_| {
                    let mut local = RouteCache::new();
                    chunks
                        .iter()
                        .map(|(i, c)| {
                            run_shard_faulty_cached(
                                sys,
                                c,
                                metric,
                                plan,
                                i * MICRO_CHUNK,
                                &mut local,
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // lint:allow(panic-hygiene): join fails only if the worker
            // panicked; re-raising that panic is the intended behaviour.
            parts.extend(h.join().expect("shard worker panicked"));
        }
    })
    // lint:allow(panic-hygiene): crossbeam scope errs only when a
    // child panicked; re-raising that panic is the intended behaviour.
    .expect("crossbeam scope");
    merge_in_order(parts)
}

/// Which batch executor a figure pipeline runs on. Both engines produce
/// bit-identical reports; [`Engine::Cached`] routes repeated lookups and
/// overlapping range walks through the epoch-invalidated [`RouteCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Execute every query from scratch (the PR-7 behaviour).
    #[default]
    Plain,
    /// Batched executor: locality-sorted micro-chunks over a per-worker
    /// route cache, reduced in original order.
    Cached,
}

/// Run the same batch against every mounted system in parallel (one thread
/// per system — they are independent and `query_from` is `&self` — each of
/// which shards its batch further, for `systems × shards` total workers).
pub fn run_batch_all(
    systems: &[Box<dyn ResourceDiscovery + Send + Sync>],
    batch: &[(usize, Query)],
    metric: Metric,
) -> Vec<(&'static str, Summary)> {
    run_batch_all_with(systems, batch, metric, Engine::Plain)
}

/// [`run_batch_all`] on a chosen [`Engine`]. Under [`Engine::Cached`]
/// each system thread owns one route cache for its whole batch.
pub fn run_batch_all_with(
    systems: &[Box<dyn ResourceDiscovery + Send + Sync>],
    batch: &[(usize, Query)],
    metric: Metric,
    engine: Engine,
) -> Vec<(&'static str, Summary)> {
    run_batch_all_planned(systems, batch, metric, QueryPlan::Parallel, engine)
}

/// [`run_batch_all_with`] under an explicit [`QueryPlan`] — the figure
/// pipelines thread their `--plan=` override through here. Plan choice
/// never alters owner sets, only the cost tallies, and
/// [`QueryPlan::Parallel`] is byte-identical to [`run_batch_all_with`].
pub fn run_batch_all_planned(
    systems: &[Box<dyn ResourceDiscovery + Send + Sync>],
    batch: &[(usize, Query)],
    metric: Metric,
    plan: QueryPlan,
    engine: Engine,
) -> Vec<(&'static str, Summary)> {
    if engine == Engine::Cached {
        let mut pools: Vec<CachePool> = systems.iter().map(|_| CachePool::new()).collect();
        return run_batch_all_cached_planned(systems, batch, metric, plan, &mut pools);
    }
    let mut out: Vec<(&'static str, Summary)> = Vec::with_capacity(systems.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = systems
            .iter()
            .map(|sys| {
                let sys = sys.as_ref();
                scope.spawn(move |_| {
                    (
                        sys.name(),
                        run_batch_planned_sharded(sys, batch, metric, plan, default_shards()),
                    )
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("batch worker panicked"));
        }
    })
    .expect("crossbeam scope");
    out
}

/// [`run_batch_all`] through caller-owned per-system [`CachePool`]s (in
/// `systems` order) that persist across calls. The fig-4/fig-5 sweeps
/// hold the pools across their arity loops — the systems are unmutated
/// between rounds, so every cached entry stays epoch-fresh and later
/// rounds hit on the walks earlier rounds recorded. Bit-identical to
/// [`Engine::Plain`] by construction.
pub fn run_batch_all_cached(
    systems: &[Box<dyn ResourceDiscovery + Send + Sync>],
    batch: &[(usize, Query)],
    metric: Metric,
    pools: &mut [CachePool],
) -> Vec<(&'static str, Summary)> {
    run_batch_all_cached_planned(systems, batch, metric, QueryPlan::Parallel, pools)
}

/// [`run_batch_all_cached`] under an explicit [`QueryPlan`].
pub fn run_batch_all_cached_planned(
    systems: &[Box<dyn ResourceDiscovery + Send + Sync>],
    batch: &[(usize, Query)],
    metric: Metric,
    plan: QueryPlan,
    pools: &mut [CachePool],
) -> Vec<(&'static str, Summary)> {
    assert_eq!(systems.len(), pools.len(), "one cache pool per system");
    let mut out: Vec<(&'static str, Summary)> = Vec::with_capacity(systems.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = systems
            .iter()
            .zip(pools.iter_mut())
            .map(|(sys, pool)| {
                let sys = sys.as_ref();
                scope.spawn(move |_| {
                    (
                        sys.name(),
                        run_batch_planned_cached_pooled(
                            sys,
                            batch,
                            metric,
                            plan,
                            default_shards(),
                            pool,
                        ),
                    )
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("batch worker panicked"));
        }
    })
    .expect("crossbeam scope");
    out
}

/// Which tally field an experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Logical routing hops (Figures 4, 6(a)).
    Hops,
    /// Visited directory nodes (Figures 5, 6(b)).
    Visited,
    /// Resource-information pieces shipped to the requester — the
    /// transfer-volume metric the query plans differ on.
    Matches,
    /// DHT lookups issued (sequential plans skip lookups after an empty
    /// intersection, so this is plan-sensitive too).
    Lookups,
}

impl Metric {
    /// Extract this metric's value from a query tally.
    pub fn of(self, tally: &dht_core::LookupTally) -> f64 {
        match self {
            Metric::Hops => tally.hops as f64,
            Metric::Visited => tally.visited as f64,
            Metric::Matches => tally.matches as f64,
            Metric::Lookups => tally.lookups as f64,
        }
    }
}

pub(crate) fn summary_of<'a>(rows: &'a [(&'static str, Summary)], s: System) -> &'a Summary {
    rows.iter().find(|(n, _)| *n == s.name()).map(|(_, x)| x).expect("system measured")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{SimConfig, TestBed};

    #[test]
    fn parallel_batch_equals_sequential_batch() {
        // run_batch_all fans the systems out over threads (and each system
        // shards its batch); every summary must be bit-identical to a
        // single-threaded, single-shard run.
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 20, 2, 2, QueryMix::Range, 0x77);
        let parallel = run_batch_all(&bed.systems, &batch, Metric::Visited);
        for (name, par) in &parallel {
            let sys = bed.systems.iter().find(|s| s.name() == *name).unwrap();
            let seq = run_batch_sharded(sys.as_ref(), &batch, Metric::Visited, 1);
            assert_eq!(par.count(), seq.count(), "{name}");
            assert_eq!(par.failures(), seq.failures(), "{name}");
            assert_eq!(par.total().to_bits(), seq.total().to_bits(), "{name}");
            assert_eq!(par.mean().to_bits(), seq.mean().to_bits(), "{name}");
            assert_eq!(par.min().to_bits(), seq.min().to_bits(), "{name}");
            assert_eq!(par.max().to_bits(), seq.max().to_bits(), "{name}");
        }
    }

    #[test]
    fn sharded_batch_is_bit_identical_for_every_shard_count() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 15, 3, 3, QueryMix::Range, 0x3A);
        for sys in &bed.systems {
            let seq = run_batch_sharded(sys.as_ref(), &batch, Metric::Hops, 1);
            for shards in [2usize, 3, 4, 7, 16, 64, batch.len(), batch.len() + 5] {
                let par = run_batch_sharded(sys.as_ref(), &batch, Metric::Hops, shards);
                let name = sys.name();
                assert_eq!(par.count(), seq.count(), "{name} shards={shards}");
                assert_eq!(par.failures(), seq.failures(), "{name} shards={shards}");
                assert_eq!(par.total().to_bits(), seq.total().to_bits(), "{name} shards={shards}");
                assert_eq!(par.mean().to_bits(), seq.mean().to_bits(), "{name} shards={shards}");
                assert_eq!(par.min().to_bits(), seq.min().to_bits(), "{name} shards={shards}");
                assert_eq!(par.max().to_bits(), seq.max().to_bits(), "{name} shards={shards}");
            }
        }
    }

    fn assert_summaries_bit_identical(a: &Summary, b: &Summary, ctx: &str) {
        assert_eq!(a.count(), b.count(), "{ctx}");
        assert_eq!(a.failures(), b.failures(), "{ctx}");
        assert_eq!(a.partial(), b.partial(), "{ctx}");
        assert_eq!(a.retries(), b.retries(), "{ctx}");
        assert_eq!(a.dropped_msgs(), b.dropped_msgs(), "{ctx}");
        assert_eq!(a.total().to_bits(), b.total().to_bits(), "{ctx}");
        assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{ctx}");
        assert_eq!(a.min().to_bits(), b.min().to_bits(), "{ctx}");
        assert_eq!(a.max().to_bits(), b.max().to_bits(), "{ctx}");
    }

    #[test]
    fn inert_faulty_batch_is_bit_identical_to_plain_batch() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 15, 3, 2, QueryMix::Range, 0x99);
        let plan = FaultPlan::new(0xFA57, 0.0, 0.0).unwrap();
        for sys in &bed.systems {
            for shards in [1usize, 3] {
                let plain = run_batch_sharded(sys.as_ref(), &batch, Metric::Hops, shards);
                let faulty =
                    run_batch_faulty_sharded(sys.as_ref(), &batch, Metric::Hops, &plan, shards);
                let ctx = format!("{} shards={shards}", sys.name());
                assert_summaries_bit_identical(&faulty, &plain, &ctx);
                assert_eq!(faulty.retries(), 0, "{ctx}");
                assert_eq!(faulty.partial(), 0, "{ctx}");
                assert_eq!(faulty.dropped_msgs(), 0, "{ctx}");
            }
        }
    }

    #[test]
    fn faulty_batch_is_bit_identical_for_every_shard_count() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 15, 3, 3, QueryMix::Range, 0x3B);
        let plan = FaultPlan::new(0xFA58, 0.15, 0.05).unwrap();
        for sys in &bed.systems {
            let seq = run_batch_faulty_sharded(sys.as_ref(), &batch, Metric::Hops, &plan, 1);
            assert!(seq.dropped_msgs() > 0, "{}: 15% loss should drop some messages", sys.name());
            for shards in [2usize, 3, 7, 16] {
                let par =
                    run_batch_faulty_sharded(sys.as_ref(), &batch, Metric::Hops, &plan, shards);
                let ctx = format!("{} shards={shards}", sys.name());
                assert_summaries_bit_identical(&par, &seq, &ctx);
            }
        }
    }

    #[test]
    fn cached_batch_is_bit_identical_to_plain_batch() {
        // The batched executor sorts each micro-chunk and runs through the
        // route cache; the summary must still be bit-identical to the plain
        // executor, for both metrics and at shard counts 1 and 3.
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        for (mix, seed) in [(QueryMix::Range, 0xCA5Eu64), (QueryMix::NonRange, 0xCA5F)] {
            let batch = query_batch(&bed.workload, cfg.nodes, 15, 4, 3, mix, seed);
            for sys in &bed.systems {
                for shards in [1usize, 3] {
                    for metric in [Metric::Hops, Metric::Visited] {
                        let plain = run_batch_sharded(sys.as_ref(), &batch, metric, shards);
                        let mut cache = RouteCache::new();
                        let cached = run_batch_cached_sharded(
                            sys.as_ref(),
                            &batch,
                            metric,
                            shards,
                            &mut cache,
                        );
                        let ctx = format!("{} shards={shards} {metric:?} {mix:?}", sys.name());
                        assert_summaries_bit_identical(&cached, &plain, &ctx);
                    }
                }
            }
        }
    }

    #[test]
    fn cached_batch_is_bit_identical_after_churn() {
        // Epoch invalidation, not cache clearing, is what keeps a persistent
        // cache honest across topology changes: reuse one cache across a
        // pre-churn and a post-churn batch and compare against plain runs.
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let mut bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 12, 4, 2, QueryMix::Range, 0xC4B2);
        let mut caches: Vec<RouteCache> = bed.systems.iter().map(|_| RouteCache::new()).collect();
        for (sys, cache) in bed.systems.iter().zip(caches.iter_mut()) {
            let plain = run_batch_sharded(sys.as_ref(), &batch, Metric::Visited, 1);
            let cached = run_batch_cached_sharded(sys.as_ref(), &batch, Metric::Visited, 1, cache);
            assert_summaries_bit_identical(&cached, &plain, &format!("{} pre-churn", sys.name()));
        }
        for sys in bed.systems.iter_mut() {
            for phys in [5usize, 41, 99] {
                let _ = sys.leave_physical(phys);
            }
            sys.stabilize();
            sys.place_all(&bed.workload.reports);
        }
        for (sys, cache) in bed.systems.iter().zip(caches.iter_mut()) {
            let plain = run_batch_sharded(sys.as_ref(), &batch, Metric::Visited, 1);
            let cached = run_batch_cached_sharded(sys.as_ref(), &batch, Metric::Visited, 1, cache);
            assert_summaries_bit_identical(&cached, &plain, &format!("{} post-churn", sys.name()));
        }
    }

    #[test]
    fn cached_faulty_batch_is_bit_identical_to_plain_faulty_batch() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 15, 3, 3, QueryMix::Range, 0xFCAB);
        // An inert plan short-circuits through the cache; a lossy plan takes
        // the uncached faulty path. Both must match the plain faulty run.
        for (seed, loss, fail) in [(0xFA60u64, 0.0f64, 0.0f64), (0xFA61, 0.15, 0.05)] {
            let plan = FaultPlan::new(seed, loss, fail).unwrap();
            for sys in &bed.systems {
                for shards in [1usize, 3] {
                    let plain =
                        run_batch_faulty_sharded(sys.as_ref(), &batch, Metric::Hops, &plan, shards);
                    let mut cache = RouteCache::new();
                    let cached = run_batch_faulty_cached_sharded(
                        sys.as_ref(),
                        &batch,
                        Metric::Hops,
                        &plan,
                        shards,
                        &mut cache,
                    );
                    let ctx = format!("{} shards={shards} loss={loss}", sys.name());
                    assert_summaries_bit_identical(&cached, &plain, &ctx);
                }
            }
        }
    }

    #[test]
    fn engine_cached_run_batch_all_matches_plain() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 15, 3, 2, QueryMix::Range, 0xE7A1);
        let plain = run_batch_all_with(&bed.systems, &batch, Metric::Visited, Engine::Plain);
        let cached = run_batch_all_with(&bed.systems, &batch, Metric::Visited, Engine::Cached);
        for (name, p) in &plain {
            let c = &cached.iter().find(|(n, _)| n == name).unwrap().1;
            assert_summaries_bit_identical(c, p, name);
        }
    }

    #[test]
    fn planned_batch_is_bit_identical_across_shards_and_caching() {
        // Every plan × metric: sharding (1 vs 3) and the cached executor
        // must both be invisible in the summary bytes.
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 15, 3, 3, QueryMix::Range, 0x9A1);
        for sys in &bed.systems {
            for plan in QueryPlan::ALL {
                for metric in [Metric::Hops, Metric::Visited, Metric::Matches, Metric::Lookups] {
                    let base = run_batch_planned_sharded(sys.as_ref(), &batch, metric, plan, 1);
                    let ctx = format!("{} {plan:?} {metric:?}", sys.name());
                    let sharded = run_batch_planned_sharded(sys.as_ref(), &batch, metric, plan, 3);
                    assert_summaries_bit_identical(&sharded, &base, &ctx);
                    for shards in [1usize, 3] {
                        let mut cache = RouteCache::new();
                        let cached = run_batch_planned_cached_sharded(
                            sys.as_ref(),
                            &batch,
                            metric,
                            plan,
                            shards,
                            &mut cache,
                        );
                        assert_summaries_bit_identical(
                            &cached,
                            &base,
                            &format!("{ctx} cached shards={shards}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_plan_executor_matches_classic_executor() {
        // run_batch_sharded delegates to the planned executor at
        // QueryPlan::Parallel; pin the equivalence explicitly.
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 10, 3, 2, QueryMix::Range, 0x9A2);
        for sys in &bed.systems {
            let classic = run_batch_sharded(sys.as_ref(), &batch, Metric::Hops, 1);
            let planned = run_batch_planned_sharded(
                sys.as_ref(),
                &batch,
                Metric::Hops,
                QueryPlan::Parallel,
                1,
            );
            assert_summaries_bit_identical(&planned, &classic, sys.name());
        }
    }

    #[test]
    fn adaptive_plan_ships_fewer_matches_on_every_system() {
        // ISSUE 10 acceptance: at arity 4 on the quick workload shape,
        // Adaptive ships <= 0.5x Parallel's transfer volume on every
        // system (owner-set equality is pinned by the cross-system
        // proptests in tests/).
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 12, values: 40, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 25, 4, 4, QueryMix::Range, 0x9A3);
        for sys in &bed.systems {
            let par = run_batch_planned_sharded(
                sys.as_ref(),
                &batch,
                Metric::Matches,
                QueryPlan::Parallel,
                1,
            );
            let ada = run_batch_planned_sharded(
                sys.as_ref(),
                &batch,
                Metric::Matches,
                QueryPlan::Adaptive,
                1,
            );
            assert!(
                ada.total() * 2.0 <= par.total(),
                "{}: adaptive should ship <= 0.5x parallel's pieces: {} vs {}",
                sys.name(),
                ada.total(),
                par.total()
            );
            // And adaptive never issues more lookups than parallel.
            let par_l = run_batch_planned_sharded(
                sys.as_ref(),
                &batch,
                Metric::Lookups,
                QueryPlan::Parallel,
                1,
            );
            let ada_l = run_batch_planned_sharded(
                sys.as_ref(),
                &batch,
                Metric::Lookups,
                QueryPlan::Adaptive,
                1,
            );
            assert!(ada_l.total() <= par_l.total(), "{}: lookup count", sys.name());
        }
    }

    #[test]
    fn query_batch_is_deterministic_and_sized() {
        let cfg =
            SimConfig { nodes: 128, dimension: 6, attrs: 8, values: 20, ..SimConfig::default() };
        let bed = TestBed::with_systems(cfg, &[]);
        let a = query_batch(&bed.workload, cfg.nodes, 5, 3, 2, QueryMix::NonRange, 9);
        let b = query_batch(&bed.workload, cfg.nodes, 5, 3, 2, QueryMix::NonRange, 9);
        assert_eq!(a.len(), 15);
        assert_eq!(a, b, "same seed, same batch");
        let c = query_batch(&bed.workload, cfg.nodes, 5, 3, 2, QueryMix::NonRange, 10);
        assert_ne!(a, c, "different seed, different batch");
    }

    #[test]
    fn summary_of_finds_each_system() {
        let rows = vec![("LORM", dht_core::Summary::new()), ("MAAN", dht_core::Summary::new())];
        assert_eq!(summary_of(&rows, analysis::System::Lorm).count(), 0);
        assert_eq!(summary_of(&rows, analysis::System::Maan).count(), 0);
    }
}
