//! One module per paper artifact (figure / theorem) plus ablations.

pub mod ablation;
pub mod chaos;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod hopdist;
pub mod latency;
pub mod maintenance;
pub mod worstcase;

use std::sync::atomic::{AtomicUsize, Ordering};

use analysis::System;
use dht_core::{hashing::splitmix64, FaultPlan, Summary};
use grid_resource::{Query, QueryMix, ResourceDiscovery, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shard-count override for [`run_batch`]; `0` means "auto" (one shard
/// per available core).
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Set the number of shards [`run_batch`] splits each query batch into.
/// `0` restores the default (one shard per available core). Applies
/// process-wide; the `repro` binary wires its `--shards=N` flag here.
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n, Ordering::Relaxed);
}

/// The shard count [`run_batch`] currently uses.
pub fn default_shards() -> usize {
    match DEFAULT_SHARDS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Generate the paper's query batch: `origins` random requester nodes,
/// `per_origin` queries each, all with the given arity and mix.
pub fn query_batch(
    workload: &Workload,
    num_phys: usize,
    origins: usize,
    per_origin: usize,
    arity: usize,
    mix: QueryMix,
    seed: u64,
) -> Vec<(usize, Query)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(origins * per_origin);
    for _ in 0..origins {
        let phys = rng.gen_range(0..num_phys);
        for _ in 0..per_origin {
            batch.push((phys, workload.random_query(arity, mix, &mut rng)));
        }
    }
    batch
}

/// Run a contiguous slice of a batch sequentially on the calling thread.
fn run_shard(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    shard: &[(usize, Query)],
    metric: Metric,
) -> Summary {
    let mut s = Summary::new();
    for (phys, q) in shard {
        match sys.query_from(*phys, q) {
            Ok(out) => {
                let v = match metric {
                    Metric::Hops => out.tally.hops as f64,
                    Metric::Visited => out.tally.visited as f64,
                };
                s.record(v);
            }
            Err(_) => s.record_failure(),
        }
    }
    s
}

/// Reduction granularity of [`run_batch`]: queries are always summarized
/// per `MICRO_CHUNK`-sized slice and the per-slice summaries merged in
/// batch order, whatever the shard count. The merge *sequence* is then a
/// function of the batch alone, which makes every summary field —
/// including the variance, whose merge is not associative in floating
/// point — bit-identical across shard counts.
const MICRO_CHUNK: usize = 64;

/// Run a query batch against one system, summarizing a chosen metric.
/// Failed queries are counted via [`Summary::failures`] instead of being
/// silently dropped.
///
/// The batch is executed on [`default_shards`] scoped worker threads, but
/// reduced deterministically: per fixed-size micro-chunk (`MICRO_CHUNK`,
/// 64 queries), merged in batch order. The result is bit-identical for
/// every shard count.
pub fn run_batch(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
) -> Summary {
    run_batch_sharded(sys, batch, metric, default_shards())
}

/// Fold micro-chunk summaries in order into one batch summary.
fn merge_in_order(parts: impl IntoIterator<Item = Summary>) -> Summary {
    let mut merged = Summary::new();
    for part in parts {
        merged.merge(&part);
    }
    merged
}

/// [`run_batch`] with an explicit shard count (`0` or `1` runs inline on
/// the calling thread). The shard count decides only *which thread*
/// summarizes each micro-chunk, never the reduction order.
pub fn run_batch_sharded(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    shards: usize,
) -> Summary {
    let micro: Vec<&[(usize, Query)]> = batch.chunks(MICRO_CHUNK.max(1)).collect();
    if shards <= 1 || micro.len() <= 1 {
        return merge_in_order(micro.into_iter().map(|c| run_shard(sys, c, metric)));
    }
    // Give each worker a contiguous run of micro-chunks; workers return
    // their per-chunk summaries in order, and the single-threaded merge
    // below walks workers (and chunks within each worker) in batch order.
    let per_worker = micro.len().div_ceil(shards);
    let mut parts: Vec<Summary> = Vec::with_capacity(micro.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = micro
            .chunks(per_worker)
            .map(|chunks| {
                scope.spawn(move |_| {
                    chunks.iter().map(|c| run_shard(sys, c, metric)).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // lint:allow(panic-hygiene): join fails only if the worker
            // panicked; re-raising that panic is the intended behaviour.
            parts.extend(h.join().expect("shard worker panicked"));
        }
    })
    // lint:allow(panic-hygiene): crossbeam scope errs only when a
    // child panicked; re-raising that panic is the intended behaviour.
    .expect("crossbeam scope");
    merge_in_order(parts)
}

/// The fault-coin seed of the query at global batch position `index`: a
/// pure function of the plan seed and the position, so sharding can
/// never change which faults a query draws.
fn msg_seed_at(plan: &FaultPlan, index: usize) -> u64 {
    splitmix64(plan.seed() ^ index as u64)
}

/// Run a contiguous slice of a batch under a fault plan. `base` is the
/// global batch index of the slice's first query.
fn run_shard_faulty(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    shard: &[(usize, Query)],
    metric: Metric,
    plan: &FaultPlan,
    base: usize,
) -> Summary {
    let mut s = Summary::new();
    for (j, (phys, q)) in shard.iter().enumerate() {
        match sys.query_from_faulty(*phys, q, plan, msg_seed_at(plan, base + j)) {
            Ok(f) => {
                let v = match metric {
                    Metric::Hops => f.outcome.tally.hops as f64,
                    Metric::Visited => f.outcome.tally.visited as f64,
                };
                if f.is_failed() {
                    s.record_failure();
                } else if f.is_partial() {
                    s.record_partial(v);
                } else {
                    s.record(v);
                }
                s.add_retries(f.retries);
                s.add_dropped_msgs(f.dropped_msgs);
            }
            Err(_) => s.record_failure(),
        }
    }
    s
}

/// [`run_batch`] under a fault plan, on [`default_shards`] workers.
/// With an inert plan the result is bit-identical to [`run_batch`].
pub fn run_batch_faulty(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    plan: &FaultPlan,
) -> Summary {
    run_batch_faulty_sharded(sys, batch, metric, plan, default_shards())
}

/// [`run_batch_faulty`] with an explicit shard count. Fault coins are a
/// pure function of `(plan seed, global batch position)` and reduction
/// follows the same ordered micro-chunk scheme as [`run_batch_sharded`],
/// so every summary field — including the degradation counters — is
/// bit-identical across shard counts.
pub fn run_batch_faulty_sharded(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
    plan: &FaultPlan,
    shards: usize,
) -> Summary {
    let micro: Vec<(usize, &[(usize, Query)])> =
        batch.chunks(MICRO_CHUNK.max(1)).enumerate().collect();
    if shards <= 1 || micro.len() <= 1 {
        return merge_in_order(
            micro.into_iter().map(|(i, c)| run_shard_faulty(sys, c, metric, plan, i * MICRO_CHUNK)),
        );
    }
    let per_worker = micro.len().div_ceil(shards);
    let mut parts: Vec<Summary> = Vec::with_capacity(micro.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = micro
            .chunks(per_worker)
            .map(|chunks| {
                scope.spawn(move |_| {
                    chunks
                        .iter()
                        .map(|(i, c)| run_shard_faulty(sys, c, metric, plan, i * MICRO_CHUNK))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // lint:allow(panic-hygiene): join fails only if the worker
            // panicked; re-raising that panic is the intended behaviour.
            parts.extend(h.join().expect("shard worker panicked"));
        }
    })
    // lint:allow(panic-hygiene): crossbeam scope errs only when a
    // child panicked; re-raising that panic is the intended behaviour.
    .expect("crossbeam scope");
    merge_in_order(parts)
}

/// Run the same batch against every mounted system in parallel (one thread
/// per system — they are independent and `query_from` is `&self` — each of
/// which shards its batch further, for `systems × shards` total workers).
pub fn run_batch_all(
    systems: &[Box<dyn ResourceDiscovery + Send + Sync>],
    batch: &[(usize, Query)],
    metric: Metric,
) -> Vec<(&'static str, Summary)> {
    let mut out: Vec<(&'static str, Summary)> = Vec::with_capacity(systems.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = systems
            .iter()
            .map(|sys| {
                let sys = sys.as_ref();
                scope.spawn(move |_| (sys.name(), run_batch(sys, batch, metric)))
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("batch worker panicked"));
        }
    })
    .expect("crossbeam scope");
    out
}

/// Which tally field an experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Logical routing hops (Figures 4, 6(a)).
    Hops,
    /// Visited directory nodes (Figures 5, 6(b)).
    Visited,
}

pub(crate) fn summary_of<'a>(rows: &'a [(&'static str, Summary)], s: System) -> &'a Summary {
    rows.iter().find(|(n, _)| *n == s.name()).map(|(_, x)| x).expect("system measured")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{SimConfig, TestBed};

    #[test]
    fn parallel_batch_equals_sequential_batch() {
        // run_batch_all fans the systems out over threads (and each system
        // shards its batch); every summary must be bit-identical to a
        // single-threaded, single-shard run.
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 20, 2, 2, QueryMix::Range, 0x77);
        let parallel = run_batch_all(&bed.systems, &batch, Metric::Visited);
        for (name, par) in &parallel {
            let sys = bed.systems.iter().find(|s| s.name() == *name).unwrap();
            let seq = run_batch_sharded(sys.as_ref(), &batch, Metric::Visited, 1);
            assert_eq!(par.count(), seq.count(), "{name}");
            assert_eq!(par.failures(), seq.failures(), "{name}");
            assert_eq!(par.total().to_bits(), seq.total().to_bits(), "{name}");
            assert_eq!(par.mean().to_bits(), seq.mean().to_bits(), "{name}");
            assert_eq!(par.min().to_bits(), seq.min().to_bits(), "{name}");
            assert_eq!(par.max().to_bits(), seq.max().to_bits(), "{name}");
        }
    }

    #[test]
    fn sharded_batch_is_bit_identical_for_every_shard_count() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 15, 3, 3, QueryMix::Range, 0x3A);
        for sys in &bed.systems {
            let seq = run_batch_sharded(sys.as_ref(), &batch, Metric::Hops, 1);
            for shards in [2usize, 3, 4, 7, 16, 64, batch.len(), batch.len() + 5] {
                let par = run_batch_sharded(sys.as_ref(), &batch, Metric::Hops, shards);
                let name = sys.name();
                assert_eq!(par.count(), seq.count(), "{name} shards={shards}");
                assert_eq!(par.failures(), seq.failures(), "{name} shards={shards}");
                assert_eq!(par.total().to_bits(), seq.total().to_bits(), "{name} shards={shards}");
                assert_eq!(par.mean().to_bits(), seq.mean().to_bits(), "{name} shards={shards}");
                assert_eq!(par.min().to_bits(), seq.min().to_bits(), "{name} shards={shards}");
                assert_eq!(par.max().to_bits(), seq.max().to_bits(), "{name} shards={shards}");
            }
        }
    }

    fn assert_summaries_bit_identical(a: &Summary, b: &Summary, ctx: &str) {
        assert_eq!(a.count(), b.count(), "{ctx}");
        assert_eq!(a.failures(), b.failures(), "{ctx}");
        assert_eq!(a.partial(), b.partial(), "{ctx}");
        assert_eq!(a.retries(), b.retries(), "{ctx}");
        assert_eq!(a.dropped_msgs(), b.dropped_msgs(), "{ctx}");
        assert_eq!(a.total().to_bits(), b.total().to_bits(), "{ctx}");
        assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{ctx}");
        assert_eq!(a.min().to_bits(), b.min().to_bits(), "{ctx}");
        assert_eq!(a.max().to_bits(), b.max().to_bits(), "{ctx}");
    }

    #[test]
    fn inert_faulty_batch_is_bit_identical_to_plain_batch() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 15, 3, 2, QueryMix::Range, 0x99);
        let plan = FaultPlan::new(0xFA57, 0.0, 0.0).unwrap();
        for sys in &bed.systems {
            for shards in [1usize, 3] {
                let plain = run_batch_sharded(sys.as_ref(), &batch, Metric::Hops, shards);
                let faulty =
                    run_batch_faulty_sharded(sys.as_ref(), &batch, Metric::Hops, &plan, shards);
                let ctx = format!("{} shards={shards}", sys.name());
                assert_summaries_bit_identical(&faulty, &plain, &ctx);
                assert_eq!(faulty.retries(), 0, "{ctx}");
                assert_eq!(faulty.partial(), 0, "{ctx}");
                assert_eq!(faulty.dropped_msgs(), 0, "{ctx}");
            }
        }
    }

    #[test]
    fn faulty_batch_is_bit_identical_for_every_shard_count() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 15, 3, 3, QueryMix::Range, 0x3B);
        let plan = FaultPlan::new(0xFA58, 0.15, 0.05).unwrap();
        for sys in &bed.systems {
            let seq = run_batch_faulty_sharded(sys.as_ref(), &batch, Metric::Hops, &plan, 1);
            assert!(seq.dropped_msgs() > 0, "{}: 15% loss should drop some messages", sys.name());
            for shards in [2usize, 3, 7, 16] {
                let par =
                    run_batch_faulty_sharded(sys.as_ref(), &batch, Metric::Hops, &plan, shards);
                let ctx = format!("{} shards={shards}", sys.name());
                assert_summaries_bit_identical(&par, &seq, &ctx);
            }
        }
    }

    #[test]
    fn query_batch_is_deterministic_and_sized() {
        let cfg =
            SimConfig { nodes: 128, dimension: 6, attrs: 8, values: 20, ..SimConfig::default() };
        let bed = TestBed::with_systems(cfg, &[]);
        let a = query_batch(&bed.workload, cfg.nodes, 5, 3, 2, QueryMix::NonRange, 9);
        let b = query_batch(&bed.workload, cfg.nodes, 5, 3, 2, QueryMix::NonRange, 9);
        assert_eq!(a.len(), 15);
        assert_eq!(a, b, "same seed, same batch");
        let c = query_batch(&bed.workload, cfg.nodes, 5, 3, 2, QueryMix::NonRange, 10);
        assert_ne!(a, c, "different seed, different batch");
    }

    #[test]
    fn summary_of_finds_each_system() {
        let rows = vec![("LORM", dht_core::Summary::new()), ("MAAN", dht_core::Summary::new())];
        assert_eq!(summary_of(&rows, analysis::System::Lorm).count(), 0);
        assert_eq!(summary_of(&rows, analysis::System::Maan).count(), 0);
    }
}
