//! One module per paper artifact (figure / theorem) plus ablations.

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod hopdist;
pub mod latency;
pub mod maintenance;
pub mod worstcase;

use analysis::System;
use dht_core::Summary;
use grid_resource::{Query, QueryMix, ResourceDiscovery, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate the paper's query batch: `origins` random requester nodes,
/// `per_origin` queries each, all with the given arity and mix.
pub(crate) fn query_batch(
    workload: &Workload,
    num_phys: usize,
    origins: usize,
    per_origin: usize,
    arity: usize,
    mix: QueryMix,
    seed: u64,
) -> Vec<(usize, Query)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(origins * per_origin);
    for _ in 0..origins {
        let phys = rng.gen_range(0..num_phys);
        for _ in 0..per_origin {
            batch.push((phys, workload.random_query(arity, mix, &mut rng)));
        }
    }
    batch
}

/// Run a query batch against one system, summarizing a chosen metric.
pub(crate) fn run_batch(
    sys: &(dyn ResourceDiscovery + Send + Sync),
    batch: &[(usize, Query)],
    metric: Metric,
) -> Summary {
    let mut s = Summary::new();
    for (phys, q) in batch {
        if let Ok(out) = sys.query_from(*phys, q) {
            let v = match metric {
                Metric::Hops => out.tally.hops as f64,
                Metric::Visited => out.tally.visited as f64,
            };
            s.record(v);
        }
    }
    s
}

/// Run the same batch against every mounted system in parallel (one thread
/// per system — they are independent and `query_from` is `&self`).
pub(crate) fn run_batch_all(
    systems: &[Box<dyn ResourceDiscovery + Send + Sync>],
    batch: &[(usize, Query)],
    metric: Metric,
) -> Vec<(&'static str, Summary)> {
    let mut out: Vec<(&'static str, Summary)> = Vec::with_capacity(systems.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = systems
            .iter()
            .map(|sys| {
                let sys = sys.as_ref();
                scope.spawn(move |_| (sys.name(), run_batch(sys, batch, metric)))
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("batch worker panicked"));
        }
    })
    .expect("crossbeam scope");
    out
}

/// Which tally field an experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Logical routing hops (Figures 4, 6(a)).
    Hops,
    /// Visited directory nodes (Figures 5, 6(b)).
    Visited,
}

pub(crate) fn summary_of<'a>(
    rows: &'a [(&'static str, Summary)],
    s: System,
) -> &'a Summary {
    rows.iter().find(|(n, _)| *n == s.name()).map(|(_, x)| x).expect("system measured")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{SimConfig, TestBed};

    #[test]
    fn parallel_batch_equals_sequential_batch() {
        // run_batch_all fans the systems out over threads; each must
        // produce exactly what a sequential run produces.
        let cfg = SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let batch = query_batch(&bed.workload, cfg.nodes, 20, 2, 2, QueryMix::Range, 0x77);
        let parallel = run_batch_all(&bed.systems, &batch, Metric::Visited);
        for (name, par) in &parallel {
            let sys = bed.systems.iter().find(|s| s.name() == *name).unwrap();
            let seq = run_batch(sys.as_ref(), &batch, Metric::Visited);
            assert_eq!(par.count(), seq.count(), "{name}");
            assert_eq!(par.total(), seq.total(), "{name}");
            assert_eq!(par.mean(), seq.mean(), "{name}");
        }
    }

    #[test]
    fn query_batch_is_deterministic_and_sized() {
        let cfg = SimConfig { nodes: 128, dimension: 6, attrs: 8, values: 20, ..SimConfig::default() };
        let bed = TestBed::with_systems(cfg, &[]);
        let a = query_batch(&bed.workload, cfg.nodes, 5, 3, 2, QueryMix::NonRange, 9);
        let b = query_batch(&bed.workload, cfg.nodes, 5, 3, 2, QueryMix::NonRange, 9);
        assert_eq!(a.len(), 15);
        assert_eq!(a, b, "same seed, same batch");
        let c = query_batch(&bed.workload, cfg.nodes, 5, 3, 2, QueryMix::NonRange, 10);
        assert_ne!(a, c, "different seed, different batch");
    }

    #[test]
    fn summary_of_finds_each_system() {
        let rows = vec![("LORM", dht_core::Summary::new()), ("MAAN", dht_core::Summary::new())];
        assert_eq!(summary_of(&rows, analysis::System::Lorm).count(), 0);
        assert_eq!(summary_of(&rows, analysis::System::Maan).count(), 0);
    }
}
