//! Figure 3 — maintenance overhead.
//!
//! * **3(a)**: average outlinks per node vs network size, for Mercury
//!   (m Chord hubs), the Theorem 4.1 bound "Analysis>LORM" (= Mercury/m),
//!   and LORM (constant-degree Cycloid).
//! * **3(b)**: directory-size avg/p1/p99 — MAAN vs LORM vs the analysis
//!   derived from MAAN (Theorems 4.2/4.3).
//! * **3(c)**: SWORD vs LORM vs analysis (Theorems 4.2/4.4).
//! * **3(d)**: Mercury vs LORM vs analysis (Theorems 4.2/4.5).

use crate::report::Report;
use crate::setup::{SimConfig, TestBed};
use crate::table::Table;
use analysis::{self as th, System};
use chord::{Chord, ChordConfig};
use cycloid::{Cycloid, CycloidConfig};
use dht_core::Overlay;
use std::fmt;

/// One network size in the Figure 3(a) sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3aRow {
    /// Cycloid dimension used for this size.
    pub dimension: u8,
    /// Network size `n = d·2^d`.
    pub n: usize,
    /// Measured average outlinks per physical node in Mercury (`m` hubs).
    pub mercury: f64,
    /// Theorem 4.1's bound: Mercury divided by `m` ("Analysis>LORM").
    pub analysis_gt_lorm: f64,
    /// Measured average outlinks per node in LORM.
    pub lorm: f64,
}

/// The Figure 3(a) series.
#[derive(Debug, Clone)]
pub struct Fig3a {
    /// One row per swept network size.
    pub rows: Vec<Fig3aRow>,
    /// Number of attributes (= Mercury hubs) used.
    pub attrs: usize,
}

/// Run the Figure 3(a) sweep. Mercury's `m × n` node state would not fit
/// in memory at the larger sizes, so hubs are built and measured a few at
/// a time (identical protocol state, streamed accumulation across worker
/// threads — hubs are independent).
pub fn fig3a(dimensions: &[u8], attrs: usize, seed: u64) -> Fig3a {
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8);
    let mut rows = Vec::with_capacity(dimensions.len());
    for &d in dimensions {
        let n = d as usize * (1usize << d);
        // Mercury: sum of per-hub average outlinks over m independent hubs.
        let hub_avg = |hub: usize| {
            let net = Chord::build(
                n,
                ChordConfig {
                    seed: seed ^ (hub as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    ..ChordConfig::default()
                },
            );
            let total: usize = net.live_nodes().iter().map(|&i| net.outlinks(i).unwrap_or(0)).sum();
            total as f64 / n as f64
        };
        let mercury_avg: f64 = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let hub_avg = &hub_avg;
                    scope.spawn(move |_| (w..attrs).step_by(workers).map(hub_avg).sum::<f64>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("hub worker")).sum()
        })
        .expect("crossbeam scope");
        // LORM: one Cycloid of the same size.
        let cy = Cycloid::build(n, CycloidConfig { dimension: d, seed });
        let lorm_total: usize = cy.live_nodes().iter().map(|&i| cy.outlinks(i).unwrap_or(0)).sum();
        let lorm = lorm_total as f64 / n as f64;
        rows.push(Fig3aRow {
            dimension: d,
            n,
            mercury: mercury_avg,
            analysis_gt_lorm: mercury_avg / attrs as f64,
            lorm,
        });
    }
    Fig3a { rows, attrs }
}

impl Fig3a {
    /// Build the structured report.
    pub fn report(&self) -> Report {
        let mut t = Table::new(
            format!("Figure 3(a): outlinks per node vs network size (m = {})", self.attrs),
            &["n", "d", "Mercury", "Analysis>LORM", "LORM"],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                r.dimension.to_string(),
                Table::fmt_f(r.mercury),
                Table::fmt_f(r.analysis_gt_lorm),
                Table::fmt_f(r.lorm),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

impl fmt::Display for Fig3a {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

/// One measured (or derived) directory-size distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DirRow {
    /// Series label as it appears in the figure legend.
    pub label: String,
    /// Average directory size per node.
    pub avg: f64,
    /// 1st percentile.
    pub p1: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Figures 3(b), 3(c), 3(d): directory-size distributions of all four
/// systems plus the three analysis overlays.
#[derive(Debug, Clone)]
pub struct Fig3Directories {
    /// Measured rows for LORM, Mercury, SWORD, MAAN.
    pub measured: Vec<DirRow>,
    /// Analysis overlays: Analysis-LORM (from MAAN), (from SWORD), (from
    /// Mercury) — one per sub-figure.
    pub analysis: Vec<DirRow>,
    /// The configuration measured.
    pub cfg: SimConfig,
}

/// Measure every system's directory distribution and derive the paper's
/// analysis overlays.
pub fn fig3_directories(bed: &TestBed) -> Fig3Directories {
    let p = bed.cfg.params();
    let measured: Vec<DirRow> = System::ALL
        .iter()
        .map(|&s| {
            let loads = bed.system(s).directory_loads();
            DirRow { label: s.name().into(), avg: loads.mean(), p1: loads.p1(), p99: loads.p99() }
        })
        .collect();
    let get = |s: System| measured.iter().find(|r| r.label == s.name()).expect("measured");

    let maan = get(System::Maan);
    let sword = get(System::Sword);
    let mercury = get(System::Mercury);
    let analysis = vec![
        // Fig 3(b): from MAAN — avg via T4.2 (÷2), percentiles via T4.3.
        DirRow {
            label: "Analysis-LORM (from MAAN, T4.2/T4.3)".into(),
            avg: maan.avg / th::t42_maan_total_factor(),
            p1: maan.p1 / th::t43_maan_over_lorm(&p),
            p99: maan.p99 / th::t43_maan_over_lorm(&p),
        },
        // Fig 3(c): from SWORD — equal avg (T4.2), percentiles ÷ d (T4.4).
        DirRow {
            label: "Analysis-LORM (from SWORD, T4.2/T4.4)".into(),
            avg: sword.avg,
            p1: sword.p1 / th::t44_sword_over_lorm(&p),
            p99: sword.p99 / th::t44_sword_over_lorm(&p),
        },
        // Fig 3(d): from Mercury — equal avg, percentiles spread by the
        // balance factor n/(d·m) (T4.5): LORM's p1 sits below Mercury's,
        // its p99 above.
        DirRow {
            label: "Analysis-LORM (from Mercury, T4.2/T4.5)".into(),
            avg: mercury.avg,
            p1: mercury.p1 / th::t45_mercury_balance_factor(&p),
            p99: mercury.p99 * th::t45_mercury_balance_factor(&p),
        },
    ];
    Fig3Directories { measured, analysis, cfg: bed.cfg }
}

impl Fig3Directories {
    /// Build the structured report.
    pub fn report(&self) -> Report {
        let mut t = Table::new(
            format!(
                "Figure 3(b-d): directory size per node (n = {}, m = {}, k = {})",
                self.cfg.nodes, self.cfg.attrs, self.cfg.values
            ),
            &["series", "avg", "p1", "p99"],
        );
        for r in self.measured.iter().chain(self.analysis.iter()) {
            t.row(vec![
                r.label.clone(),
                Table::fmt_f(r.avg),
                Table::fmt_f(r.p1),
                Table::fmt_f(r.p99),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

impl fmt::Display for Fig3Directories {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

/// One (size, system) cell of the directory-size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Cycloid dimension for this size.
    pub dimension: u8,
    /// Network size `n = d·2^d`.
    pub n: usize,
    /// The measured distribution of each system at this size.
    pub dists: Vec<DirRow>,
}

/// Figure 3(b–d) as the paper frames it — "versus network size": the
/// directory-size distribution of every system at a sweep of full
/// Cycloid populations. Systems are built one at a time per size so
/// Mercury's `m × n` state never has to coexist with the others.
pub fn fig3_directory_sweep(dimensions: &[u8], cfg: &SimConfig) -> Vec<SweepRow> {
    let mut rows = Vec::with_capacity(dimensions.len());
    for &d in dimensions {
        let n = d as usize * (1usize << d);
        let size_cfg = SimConfig { nodes: n, dimension: d, ..*cfg };
        let seeds = dht_core::SeedSpawner::new(size_cfg.seed);
        let workload = grid_resource::Workload::generate(
            size_cfg.workload_config(),
            &mut seeds.labelled(0xA0),
        )
        .expect("valid workload config");
        let mut dists = Vec::with_capacity(System::ALL.len());
        for s in System::ALL {
            let sys = crate::setup::build_system(s, &workload, &size_cfg);
            let loads = sys.directory_loads();
            dists.push(DirRow {
                label: s.name().into(),
                avg: loads.mean(),
                p1: loads.p1(),
                p99: loads.p99(),
            });
            // `sys` drops here before the next system is built
        }
        rows.push(SweepRow { dimension: d, n, dists });
    }
    rows
}

/// Build the sweep report (one table, rows = size × system).
pub fn sweep_report(rows: &[SweepRow], cfg: &SimConfig) -> Report {
    let mut t = Table::new(
        format!(
            "Figure 3(b-d) sweep: directory size vs network size (m = {}, k = {})",
            cfg.attrs, cfg.values
        ),
        &["n", "system", "avg", "p1", "p99"],
    );
    for r in rows {
        for dist in &r.dists {
            t.row(vec![
                r.n.to_string(),
                dist.label.clone(),
                Table::fmt_f(dist.avg),
                Table::fmt_f(dist.p1),
                Table::fmt_f(dist.p99),
            ]);
        }
    }
    let mut rep = Report::new();
    rep.table(t);
    rep
}

/// Render the sweep as one table (rows = size × system).
pub fn render_sweep(rows: &[SweepRow], cfg: &SimConfig) -> String {
    sweep_report(rows, cfg).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_small_sweep_shows_the_gap() {
        // Tiny version: 10 attributes, d = 5 and 6.
        let fig = fig3a(&[5, 6], 10, 0xF3A);
        assert_eq!(fig.rows.len(), 2);
        for r in &fig.rows {
            // Mercury pays ~m× what LORM pays (Theorem 4.1)
            assert!(r.mercury > 5.0 * r.lorm, "mercury {} vs lorm {}", r.mercury, r.lorm);
            // the bound holds: LORM is at or below Mercury/m
            assert!(r.lorm <= r.analysis_gt_lorm + 1.0, "{} vs {}", r.lorm, r.analysis_gt_lorm);
        }
        // Mercury grows with n; LORM stays constant
        assert!(fig.rows[1].mercury > fig.rows[0].mercury);
        assert!((fig.rows[1].lorm - fig.rows[0].lorm).abs() < 2.0);
    }

    #[test]
    fn fig3_directories_reproduce_theorem_shapes() {
        // Full population (2048 = 8·2^8) so LORM clusters have all d
        // members — sparse clusters degenerate towards SWORD.
        let cfg = SimConfig { nodes: 2048, attrs: 40, values: 100, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let fig = fig3_directories(&bed);
        let get = |label: &str| fig.measured.iter().find(|r| r.label == label).expect("row");
        let lorm = get("LORM");
        let maan = get("MAAN");
        let sword = get("SWORD");
        let mercury = get("Mercury");
        // T4.2: MAAN's average is ~2x everyone else's.
        assert!((maan.avg / lorm.avg - 2.0).abs() < 0.2, "{} vs {}", maan.avg, lorm.avg);
        assert!((sword.avg - lorm.avg).abs() < 2.0);
        assert!((mercury.avg - lorm.avg).abs() < 2.0);
        // T4.4/T4.6: SWORD concentrates — its p99 far exceeds LORM's.
        assert!(sword.p99 > 2.0 * lorm.p99, "sword p99 {} lorm p99 {}", sword.p99, lorm.p99);
        // T4.5/T4.6: Mercury is the most balanced (lowest p99).
        assert!(mercury.p99 <= lorm.p99, "mercury {} lorm {}", mercury.p99, lorm.p99);
        // display renders all seven series
        let s = fig.to_string();
        assert_eq!(s.lines().filter(|l| l.starts_with('|')).count(), 2 + 7);
    }
    #[test]
    fn directory_sweep_keeps_theorem_shapes_across_sizes() {
        let cfg = SimConfig { attrs: 20, values: 50, ..SimConfig::default() };
        let rows = fig3_directory_sweep(&[5, 6], &cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            let get = |n: &str| r.dists.iter().find(|d| d.label == n).expect("dist");
            assert!((get("MAAN").avg / get("LORM").avg - 2.0).abs() < 0.3, "n={}", r.n);
            assert!(get("SWORD").p99 >= get("LORM").p99, "n={}", r.n);
        }
        // averages shrink as n grows (same mk over more nodes)
        assert!(rows[1].dists[0].avg < rows[0].dists[0].avg);
        let rendered = render_sweep(&rows, &cfg);
        assert!(rendered.contains("sweep"));
    }
}
