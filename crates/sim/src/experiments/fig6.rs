//! Figure 6 — efficiency under churn.
//!
//! The paper models the node join/departure rate `R` as a Poisson process
//! (one join *and* one departure every `1/R` seconds on average), varies
//! `R` from 0.1 to 0.5, issues 10000 resource requests, and reports that
//! the per-query cost barely moves and no queries fail:
//!
//! * **6(a)**: average logical hops of non-range queries vs `R`;
//! * **6(b)**: average visited nodes of range queries vs `R`.
//!
//! Reproduction choices (the paper leaves them implicit): requests are
//! issued at a fixed rate (default 10/s, so 10000 requests span 1000
//! simulated seconds); each system runs its periodic maintenance
//! (stabilize + re-report all resources) every `maintenance_period`
//! simulated seconds, and joins/graceful departures additionally repair
//! their local neighborhood immediately, as the protocols do.

use crate::cache::BedCache;
use crate::experiments::{Engine, Metric};
use crate::report::Report;
use crate::setup::SimConfig;
use crate::table::Table;
use analysis::{self as th, System};
use dht_core::{RouteCache, Summary};
use grid_resource::{ChurnKind, ChurnSchedule, QueryMix, ResourceDiscovery, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Churn experiment parameters.
#[derive(Debug, Clone)]
pub struct ChurnSetup {
    /// Poisson rates `R` to sweep (paper: 0.1 … 0.5).
    pub rates: Vec<f64>,
    /// Total resource requests (paper: 10000).
    pub requests: usize,
    /// Requests issued per simulated second.
    pub request_rate: f64,
    /// Attributes per query.
    pub arity: usize,
    /// Seconds between periodic maintenance rounds.
    pub maintenance_period: f64,
    /// Graceful departures (the paper's model) vs abrupt failures (an
    /// extension: no handoff, stale links until maintenance — queries can
    /// fail or return stale results between rounds).
    pub graceful: bool,
    /// Fraction of scheduled departures handled gracefully; the rest
    /// become [`ChurnKind::Fail`] events. At the default `1.0` the
    /// schedule is byte-identical to the graceful-only model (no extra
    /// RNG draws), so the paper's figures are unchanged.
    pub graceful_ratio: f64,
}

impl Default for ChurnSetup {
    fn default() -> Self {
        Self {
            rates: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            requests: 10_000,
            request_rate: 10.0,
            arity: 5,
            maintenance_period: 50.0,
            graceful: true,
            graceful_ratio: 1.0,
        }
    }
}

impl ChurnSetup {
    /// A scaled-down sweep for tests and quick runs.
    pub fn quick() -> Self {
        Self { rates: vec![0.1, 0.4], requests: 400, ..Self::default() }
    }
}

/// Result of one (rate, system) churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnCell {
    /// Average of the metric per query.
    pub avg: f64,
    /// Full metric summary (count / mean / std / min / max, plus the
    /// failure count) — full precision for the JSON export.
    pub stats: Summary,
    /// Queries that failed to resolve (the paper observed none).
    pub failures: usize,
    /// Queries issued.
    pub queries: usize,
    /// Churn events applied.
    pub events: usize,
    /// Of the completeness-sampled queries, how many returned a *stale*
    /// (incomplete) answer — possible between maintenance rounds when
    /// departures are abrupt.
    pub stale: usize,
    /// Queries sampled for completeness.
    pub sampled: usize,
}

/// One churn-rate row across the four systems.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// The Poisson rate `R`.
    pub rate: f64,
    /// Cells for LORM, Mercury, SWORD, MAAN.
    pub cells: [ChurnCell; 4],
    /// Closed-form expectation per system (Theorems 4.7–4.9).
    pub analysis: [f64; 4],
}

/// The Figure 6 series for one query mix.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Which metric/mix this run used.
    pub mix: QueryMix,
    /// One row per churn rate.
    pub rows: Vec<Fig6Row>,
}

/// Drive one system through one churn run. Returns the metric summary.
pub fn run_churn_one(
    sys: &mut (dyn ResourceDiscovery + Send + Sync),
    workload: &Workload,
    schedule: &ChurnSchedule,
    setup: &ChurnSetup,
    metric: Metric,
    seed: u64,
) -> ChurnCell {
    run_churn_one_with_engine(sys, workload, schedule, setup, metric, seed, Engine::Plain)
}

/// [`run_churn_one`] on a chosen batch [`Engine`]. Under
/// [`Engine::Cached`] the run owns one persistent route cache; churn
/// events bump the overlay epoch, so stale entries miss by construction
/// and the cell is bit-identical to the plain run.
#[allow(clippy::too_many_arguments)] // mirrors run_churn_one plus the engine
pub fn run_churn_one_with_engine(
    sys: &mut (dyn ResourceDiscovery + Send + Sync),
    workload: &Workload,
    schedule: &ChurnSchedule,
    setup: &ChurnSetup,
    metric: Metric,
    seed: u64,
    engine: Engine,
) -> ChurnCell {
    let mut route_cache = RouteCache::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mix = match metric {
        Metric::Hops => QueryMix::NonRange,
        // fig 6 is driven with Hops/Visited only; any other metric rides
        // the range-query leg.
        _ => QueryMix::Range,
    };
    let mut stats = Summary::new();
    let mut events_applied = 0usize;
    let mut stale = 0usize;
    let mut sampled = 0usize;
    let mut event_iter = schedule.events().iter().peekable();
    let mut next_maintenance = setup.maintenance_period;
    let mut max_phys = sys.num_physical();
    let pick_live =
        |sys: &(dyn ResourceDiscovery + Send + Sync), max: usize, rng: &mut SmallRng| {
            for _ in 0..64 {
                let p = rng.gen_range(0..max);
                if sys.is_live(p) {
                    return Some(p);
                }
            }
            None
        };
    for i in 0..setup.requests {
        let now = (i + 1) as f64 / setup.request_rate;
        // apply all churn events up to `now`
        while let Some(e) = event_iter.peek() {
            if e.time > now {
                break;
            }
            let e = event_iter.next().expect("peeked");
            match e.kind {
                ChurnKind::Join => {
                    if sys.join_physical(&mut rng).is_ok() {
                        max_phys += 1;
                    }
                }
                ChurnKind::Leave => {
                    if sys.num_physical() > 2 {
                        if let Some(p) = pick_live(sys, max_phys, &mut rng) {
                            let _ = if setup.graceful {
                                sys.leave_physical(p)
                            } else {
                                sys.fail_physical(p)
                            };
                        }
                    }
                }
                ChurnKind::Fail => {
                    // Scheduled ungraceful failure: no handoff regardless
                    // of the graceful-departure setting.
                    if sys.num_physical() > 2 {
                        if let Some(p) = pick_live(sys, max_phys, &mut rng) {
                            let _ = sys.fail_physical(p);
                        }
                    }
                }
            }
            events_applied += 1;
        }
        // periodic maintenance: repair links, refresh reports
        if now >= next_maintenance {
            sys.stabilize();
            sys.place_all(&workload.reports);
            next_maintenance += setup.maintenance_period;
        }
        // issue one query from a random live node
        let Some(origin) = pick_live(sys, max_phys, &mut rng) else {
            stats.record_failure();
            continue;
        };
        let q = workload.random_query(setup.arity, mix, &mut rng);
        let answer = match engine {
            Engine::Plain => sys.query_from(origin, &q),
            Engine::Cached => sys.query_from_cached(origin, &q, &mut route_cache),
        };
        match answer {
            Ok(out) => {
                stats.record(metric.of(&out.tally));
                // Sample completeness against the ground-truth reports:
                // compare matched-piece counts per sub-query (the joined
                // owner set of a high-arity conjunction is almost always
                // empty, which would mask losses).
                if i % 25 == 0 {
                    sampled += 1;
                    let expected: usize = q
                        .subs
                        .iter()
                        .map(|sub| {
                            workload
                                .reports
                                .iter()
                                .filter(|r| r.attr == sub.attr && sub.target.matches(r.value))
                                .count()
                        })
                        .sum();
                    if out.tally.matches < expected {
                        stale += 1;
                    }
                }
            }
            Err(_) => stats.record_failure(),
        }
    }
    ChurnCell {
        avg: stats.mean(),
        failures: stats.failures() as usize,
        stats,
        queries: setup.requests,
        events: events_applied,
        stale,
        sampled,
    }
}

/// Run the full Figure 6 sweep for one metric, with a transient bed
/// cache: each system is built once and every (rate, system) run starts
/// from a deep clone of that prototype — identical to a fresh build, but
/// the sweep pays construction once per system instead of once per cell.
pub fn fig6(cfg: &SimConfig, setup: &ChurnSetup, metric: Metric) -> Fig6 {
    fig6_cached(cfg, setup, metric, &BedCache::new())
}

/// [`fig6`] against a caller-owned [`BedCache`], so repeated sweeps (both
/// fig6 metrics, the perf kernels) share one set of prototypes.
pub fn fig6_cached(cfg: &SimConfig, setup: &ChurnSetup, metric: Metric, cache: &BedCache) -> Fig6 {
    fig6_with_engine(cfg, setup, metric, cache, Engine::Plain)
}

/// [`fig6_cached`] on a chosen batch [`Engine`]; both engines produce the
/// same figure bit-for-bit (see [`run_churn_one_with_engine`]).
pub fn fig6_with_engine(
    cfg: &SimConfig,
    setup: &ChurnSetup,
    metric: Metric,
    cache: &BedCache,
    engine: Engine,
) -> Fig6 {
    let p = cfg.params();
    let wl_seed = cfg.seed ^ 0xF6;
    let workload = cache.churn_workload(cfg, wl_seed);
    let duration = setup.requests as f64 / setup.request_rate;
    let mut rows = Vec::new();
    for &rate in &setup.rates {
        let mut sched_rng = SmallRng::seed_from_u64(cfg.seed ^ (rate * 1000.0) as u64);
        let schedule = ChurnSchedule::generate_with_failures(
            rate,
            duration,
            setup.graceful_ratio,
            &mut sched_rng,
        );
        let mut cells: Vec<(System, ChurnCell)> = Vec::with_capacity(4);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = System::ALL
                .iter()
                .map(|&s| {
                    let workload = &workload;
                    let schedule = &schedule;
                    scope.spawn(move |_| {
                        // First rate: builds the prototype (misses run in
                        // parallel, one per system). Later rates: a deep
                        // clone, byte-identical to a fresh build.
                        let mut sys = cache.churn_proto(s, cfg, wl_seed);
                        let cell = run_churn_one_with_engine(
                            sys.as_mut(),
                            workload,
                            schedule,
                            setup,
                            metric,
                            cfg.seed ^ 0xC6 ^ (rate * 100.0) as u64,
                            engine,
                        );
                        (s, cell)
                    })
                })
                .collect();
            for h in handles {
                cells.push(h.join().expect("churn worker"));
            }
        })
        .expect("crossbeam scope");
        let cell_of =
            |s: System| cells.iter().find(|(x, _)| *x == s).map(|(_, c)| c.clone()).expect("cell");
        let analysis = System::ALL.map(|s| match metric {
            Metric::Hops => th::nonrange_hops(&p, setup.arity, s),
            // closed forms exist for the paper's two figure metrics only
            _ => th::range_visited(&p, setup.arity, s),
        });
        rows.push(Fig6Row {
            rate,
            cells: [
                cell_of(System::Lorm),
                cell_of(System::Mercury),
                cell_of(System::Sword),
                cell_of(System::Maan),
            ],
            analysis,
        });
    }
    Fig6 {
        mix: match metric {
            Metric::Hops => QueryMix::NonRange,
            _ => QueryMix::Range,
        },
        rows,
    }
}

impl Fig6 {
    /// Build the structured report (the sweep table, the metric note, and
    /// per-system summaries merged over every churn rate).
    pub fn report(&self) -> Report {
        let (title, what) = match self.mix {
            QueryMix::NonRange => {
                ("Figure 6(a): avg logical hops per non-range query under churn", "hops")
            }
            QueryMix::Range => {
                ("Figure 6(b): avg visited nodes per range query under churn", "visited")
            }
        };
        let mut t = Table::new(
            title,
            &[
                "R",
                "LORM",
                "Mercury",
                "SWORD",
                "MAAN",
                "An-LORM",
                "An-Mercury",
                "An-SWORD",
                "An-MAAN",
                "failures",
                "stale%",
            ],
        );
        for r in &self.rows {
            let total_failures: usize = r.cells.iter().map(|c| c.failures).sum();
            let (stale, sampled) =
                r.cells.iter().fold((0usize, 0usize), |(s, n), c| (s + c.stale, n + c.sampled));
            t.row(vec![
                format!("{:.1}", r.rate),
                Table::fmt_f(r.cells[0].avg),
                Table::fmt_f(r.cells[1].avg),
                Table::fmt_f(r.cells[2].avg),
                Table::fmt_f(r.cells[3].avg),
                Table::fmt_f(r.analysis[0]),
                Table::fmt_f(r.analysis[1]),
                Table::fmt_f(r.analysis[2]),
                Table::fmt_f(r.analysis[3]),
                total_failures.to_string(),
                Table::fmt_f(if sampled == 0 {
                    0.0
                } else {
                    100.0 * stale as f64 / sampled as f64
                }),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep.note(format!(
            "(metric: {what} per query; analysis columns are the static closed forms)"
        ));
        let mut summaries: Vec<(&'static str, Summary)> =
            System::ALL.map(|s| (s.name(), Summary::new())).to_vec();
        for r in &self.rows {
            for (i, c) in r.cells.iter().enumerate() {
                summaries[i].1.merge(&c.stats);
            }
        }
        for (name, s) in summaries {
            rep.summary(name, s);
        }
        rep
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::build_system;

    fn small_cfg() -> SimConfig {
        SimConfig { nodes: 384, attrs: 20, values: 50, dimension: 7, ..SimConfig::default() }
    }

    #[test]
    fn churn_run_completes_without_failures() {
        let cfg = small_cfg();
        let mut wl_rng = SmallRng::seed_from_u64(1);
        let workload = Workload::generate(cfg.workload_config(), &mut wl_rng).unwrap();
        let setup = ChurnSetup { requests: 150, ..ChurnSetup::quick() };
        let mut sched_rng = SmallRng::seed_from_u64(2);
        let schedule = ChurnSchedule::generate(0.4, 15.0, &mut sched_rng);
        let mut sys = build_system(System::Lorm, &workload, &cfg);
        let cell = run_churn_one(sys.as_mut(), &workload, &schedule, &setup, Metric::Hops, 3);
        assert_eq!(cell.failures, 0, "graceful churn must not fail queries");
        assert!(cell.avg > 1.0, "avg hops {}", cell.avg);
        assert!(cell.events > 0, "schedule should produce events");
    }

    #[test]
    fn cached_engine_reproduces_churn_run_bit_for_bit() {
        // Same system prototype, same schedule, Plain vs Cached: the
        // persistent route cache rides through joins, graceful departures
        // and failures on epoch invalidation alone.
        let cfg = small_cfg();
        let mut wl_rng = SmallRng::seed_from_u64(11);
        let workload = Workload::generate(cfg.workload_config(), &mut wl_rng).unwrap();
        let setup = ChurnSetup { requests: 200, graceful_ratio: 0.5, ..ChurnSetup::quick() };
        let mut sched_rng = SmallRng::seed_from_u64(12);
        let schedule = ChurnSchedule::generate_with_failures(0.4, 20.0, 0.5, &mut sched_rng);
        for s in [System::Lorm, System::Mercury] {
            let mut plain_sys = build_system(s, &workload, &cfg);
            let plain = run_churn_one_with_engine(
                plain_sys.as_mut(),
                &workload,
                &schedule,
                &setup,
                Metric::Visited,
                13,
                Engine::Plain,
            );
            let mut cached_sys = build_system(s, &workload, &cfg);
            let cached = run_churn_one_with_engine(
                cached_sys.as_mut(),
                &workload,
                &schedule,
                &setup,
                Metric::Visited,
                13,
                Engine::Cached,
            );
            assert_eq!(plain, cached, "{}", s.name());
        }
    }

    #[test]
    fn churn_metric_close_to_static_analysis_for_sword() {
        // SWORD's hops under churn should stay near arity × log2(n)/2.
        let cfg = small_cfg();
        let mut wl_rng = SmallRng::seed_from_u64(4);
        let workload = Workload::generate(cfg.workload_config(), &mut wl_rng).unwrap();
        let setup = ChurnSetup { requests: 200, arity: 3, ..ChurnSetup::quick() };
        let mut sched_rng = SmallRng::seed_from_u64(5);
        let schedule = ChurnSchedule::generate(0.3, 20.0, &mut sched_rng);
        let mut sys = build_system(System::Sword, &workload, &cfg);
        let cell = run_churn_one(sys.as_mut(), &workload, &schedule, &setup, Metric::Hops, 6);
        let expect = 3.0 * (384.0f64).log2() / 2.0;
        assert!((cell.avg - expect).abs() < expect * 0.35, "avg {} vs analysis {expect}", cell.avg);
    }
}
