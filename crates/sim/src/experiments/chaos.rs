//! Chaos sweep — success rate and hop inflation under injected faults.
//!
//! Not a paper figure: a robustness experiment over the same four
//! systems. A fixed range-query batch is replayed under every
//! combination of message-loss rate × ungraceful-failure fraction from a
//! seeded [`FaultPlan`], and each cell summarizes the degraded outcomes
//! (successes, partial results, outright failures, retries, dropped
//! messages, hop inflation versus the fault-free baseline).
//!
//! Two invariants the suite (and CI) pin down:
//!
//! * the zero-fault cell is **bit-identical** to the fault-free baseline
//!   run, for every shard count;
//! * success rates degrade **monotonically** in the loss rate at fixed
//!   failure fraction (guaranteed by the fault-coin construction, see
//!   `dht_core::fault`).

use crate::experiments::{query_batch, run_batch, run_batch_faulty, Metric};
use crate::report::Report;
use crate::setup::TestBed;
use crate::table::Table;
use dht_core::{FaultPlan, Summary};
use grid_resource::QueryMix;
use std::fmt;

/// Sweep configuration for the chaos experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSetup {
    /// Message-loss rates to sweep (must include `0.0` for the parity
    /// cell to exist).
    pub loss_rates: Vec<f64>,
    /// Ungraceful node-failure fractions to sweep.
    pub fail_fracs: Vec<f64>,
    /// Requester nodes in the query batch.
    pub origins: usize,
    /// Queries per requester.
    pub per_origin: usize,
    /// Attributes per query.
    pub arity: usize,
    /// Seed of every [`FaultPlan`] in the sweep (the batch itself draws
    /// from the test bed's seed).
    pub fault_seed: u64,
}

impl Default for ChaosSetup {
    fn default() -> Self {
        Self {
            loss_rates: vec![0.0, 0.05, 0.1, 0.2],
            fail_fracs: vec![0.0, 0.1],
            origins: 100,
            per_origin: 4,
            arity: 3,
            fault_seed: 0xC4A0_5EED,
        }
    }
}

impl ChaosSetup {
    /// A scaled-down sweep for quick runs and CI.
    pub fn quick() -> Self {
        Self { loss_rates: vec![0.0, 0.05, 0.2], origins: 40, per_origin: 3, ..Self::default() }
    }
}

/// One (loss, failure-fraction) cell of one system's sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Message-loss rate of this cell's fault plan.
    pub loss: f64,
    /// Ungraceful-failure fraction of this cell's fault plan.
    pub fail_frac: f64,
    /// Degraded hop summary of the replayed batch.
    pub summary: Summary,
}

impl ChaosCell {
    /// Queries issued in this cell (successes + partial + failures).
    pub fn total_queries(&self) -> u64 {
        self.summary.count() + self.summary.failures()
    }

    /// Fraction of queries that fully resolved.
    pub fn success_rate(&self) -> f64 {
        let total = self.total_queries();
        if total == 0 {
            return f64::NAN;
        }
        self.summary.successes() as f64 / total as f64
    }

    /// Mean hops of this cell over the fault-free baseline's mean hops.
    pub fn hop_inflation(&self, baseline: &Summary) -> f64 {
        self.summary.mean() / baseline.mean()
    }
}

/// One system's sweep: the fault-free baseline plus every cell.
#[derive(Debug, Clone)]
pub struct ChaosSystem {
    /// System name ("LORM", "Mercury", "SWORD", "MAAN").
    pub name: &'static str,
    /// The fault-free run of the same batch (the parity reference).
    pub baseline: Summary,
    /// Cells in sweep order: failure fractions outer, loss rates inner.
    pub cells: Vec<ChaosCell>,
}

/// The full chaos sweep over all mounted systems.
#[derive(Debug, Clone)]
pub struct Chaos {
    /// The sweep configuration.
    pub setup: ChaosSetup,
    /// Queries in the replayed batch.
    pub queries: usize,
    /// One sweep per mounted system, in mount order.
    pub systems: Vec<ChaosSystem>,
}

/// Run the chaos sweep on a mounted test bed.
///
/// Every cell replays the *same* batch under a [`FaultPlan`] seeded with
/// `setup.fault_seed`, so cells differ only in the configured rates —
/// which is what makes the per-query monotonicity argument (and hence
/// monotone success-rate curves) hold exactly, not just in expectation.
pub fn chaos(bed: &TestBed, setup: ChaosSetup) -> Chaos {
    let batch = query_batch(
        &bed.workload,
        bed.cfg.nodes,
        setup.origins,
        setup.per_origin,
        setup.arity,
        QueryMix::Range,
        bed.seeds.seed() ^ 0xC4A0,
    );
    let mut systems = Vec::with_capacity(bed.systems.len());
    for sys in &bed.systems {
        let baseline = run_batch(sys.as_ref(), &batch, Metric::Hops);
        let mut cells = Vec::with_capacity(setup.fail_fracs.len() * setup.loss_rates.len());
        for &fail_frac in &setup.fail_fracs {
            for &loss in &setup.loss_rates {
                let plan = FaultPlan::new(setup.fault_seed, loss, fail_frac)
                    // lint:allow(panic-hygiene): sweep rates come from the setup literal; out-of-range rates are a harness bug
                    .expect("sweep rates must be probabilities");
                let summary = run_batch_faulty(sys.as_ref(), &batch, Metric::Hops, &plan);
                cells.push(ChaosCell { loss, fail_frac, summary });
            }
        }
        systems.push(ChaosSystem { name: sys.name(), baseline, cells });
    }
    Chaos { setup, queries: batch.len(), systems }
}

impl Chaos {
    /// Build the structured report: one success-rate table and one
    /// hop-inflation table per failure fraction.
    pub fn report(&self) -> Report {
        let mut rep = Report::new();
        let names: Vec<&str> = self.systems.iter().map(|s| s.name).collect();
        for &fail_frac in &self.setup.fail_fracs {
            let mut cols = vec!["loss".to_string()];
            cols.extend(names.iter().map(|n| n.to_string()));
            let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
            let mut succ = Table::new(
                format!("Chaos: query success rate (failure fraction {fail_frac})"),
                &cols,
            );
            let mut infl = Table::new(
                format!("Chaos: hop inflation vs fault-free (failure fraction {fail_frac})"),
                &cols,
            );
            for &loss in &self.setup.loss_rates {
                let mut srow = vec![format!("{loss}")];
                let mut irow = vec![format!("{loss}")];
                for sys in &self.systems {
                    let cell = sys
                        .cells
                        .iter()
                        .find(|c| c.loss == loss && c.fail_frac == fail_frac)
                        .expect("swept cell");
                    srow.push(format!("{:.3}", cell.success_rate()));
                    irow.push(format!("{:.3}", cell.hop_inflation(&sys.baseline)));
                }
                succ.row(srow);
                infl.row(irow);
            }
            rep.table(succ).table(infl);
        }
        for sys in &self.systems {
            rep.summary(format!("{} baseline", sys.name), sys.baseline.clone());
        }
        rep.note(format!(
            "({} range queries per cell, arity {}, fault seed {:#x})",
            self.queries, self.setup.arity, self.setup.fault_seed
        ));
        rep
    }
}

impl fmt::Display for Chaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SimConfig;

    fn tiny_setup() -> ChaosSetup {
        ChaosSetup {
            loss_rates: vec![0.0, 0.2],
            fail_fracs: vec![0.0],
            origins: 10,
            per_origin: 3,
            arity: 2,
            ..ChaosSetup::default()
        }
    }

    #[test]
    fn zero_fault_cell_is_bit_identical_to_baseline() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let c = chaos(&bed, tiny_setup());
        assert_eq!(c.queries, 30);
        for sys in &c.systems {
            let zero = &sys.cells[0];
            assert_eq!(zero.loss, 0.0);
            assert_eq!(zero.summary.count(), sys.baseline.count(), "{}", sys.name);
            assert_eq!(zero.summary.failures(), sys.baseline.failures(), "{}", sys.name);
            assert_eq!(
                zero.summary.total().to_bits(),
                sys.baseline.total().to_bits(),
                "{}",
                sys.name
            );
            assert_eq!(
                zero.summary.mean().to_bits(),
                sys.baseline.mean().to_bits(),
                "{}",
                sys.name
            );
            assert_eq!(zero.summary.partial(), 0, "{}", sys.name);
            assert_eq!(zero.summary.retries(), 0, "{}", sys.name);
            assert_eq!(zero.summary.dropped_msgs(), 0, "{}", sys.name);
            assert_eq!(zero.success_rate(), 1.0, "{}", sys.name);
            assert_eq!(zero.hop_inflation(&sys.baseline), 1.0, "{}", sys.name);
        }
    }

    #[test]
    fn lossy_cell_degrades_and_accounts_every_query() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let c = chaos(&bed, tiny_setup());
        for sys in &c.systems {
            let lossy = &sys.cells[1];
            assert_eq!(lossy.loss, 0.2);
            assert_eq!(lossy.total_queries(), 30, "{}", sys.name);
            assert!(lossy.success_rate() <= 1.0, "{}", sys.name);
            assert!(lossy.summary.dropped_msgs() > 0, "{}", sys.name);
        }
        // the report renders both tables and the note
        let s = c.to_string();
        assert!(s.contains("success rate"), "{s}");
        assert!(s.contains("hop inflation"), "{s}");
        assert!(s.contains("30 range queries"), "{s}");
    }

    #[test]
    fn quick_setup_includes_the_parity_cell() {
        let q = ChaosSetup::quick();
        assert!(q.loss_rates.contains(&0.0));
        assert!(q.fail_fracs.contains(&0.0));
        assert!(q.origins * q.per_origin <= 200, "quick sweep must stay small");
    }
}
