//! Figure 5 — visited nodes of range queries.
//!
//! The paper issues 1000 range queries per arity and reports the total
//! number of *visited nodes* (nodes that receive the query and check
//! their directory) per system, next to the Theorem 4.9 closed forms:
//! `m(1 + n/4)` Mercury, `m(2 + n/4)` MAAN, `m(1 + d/4)` LORM, `m` SWORD
//! (513m / 514m / 3m / m for the paper's parameters).

use crate::experiments::{
    query_batch, run_batch_all_cached_planned, run_batch_all_planned, summary_of, CachePool,
    Engine, Metric,
};
use crate::report::Report;
use crate::setup::TestBed;
use crate::table::Table;
use analysis::{self as th, System};
use dht_core::Summary;
use grid_resource::{QueryMix, QueryPlan};
use std::fmt;

/// One arity's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Attributes per query.
    pub arity: usize,
    /// Total visited nodes over the batch: LORM, Mercury, SWORD, MAAN.
    pub total: [f64; 4],
    /// Average visited nodes per query, same order.
    pub avg: [f64; 4],
    /// Theorem 4.9 closed-form totals for the batch, same order.
    pub analysis_total: [f64; 4],
    /// Queries in the batch.
    pub queries: usize,
}

/// The Figure 5 series (5(a) plots the system-wide methods on a log axis,
/// 5(b) zooms into SWORD vs LORM; both come from this measurement).
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// One row per arity.
    pub rows: Vec<Fig5Row>,
    /// Per-system visited-node summaries merged over every arity batch
    /// (`System::ALL` order) — full precision for the JSON export.
    pub summaries: Vec<(&'static str, Summary)>,
}

/// Run the Figure 5 experiment.
pub fn fig5(bed: &TestBed, arities: impl IntoIterator<Item = usize>, queries: usize) -> Fig5 {
    fig5_with_engine(bed, arities, queries, Engine::Plain)
}

/// [`fig5`] on a chosen batch [`Engine`]; both engines produce the same
/// figure bit-for-bit.
pub fn fig5_with_engine(
    bed: &TestBed,
    arities: impl IntoIterator<Item = usize>,
    queries: usize,
    engine: Engine,
) -> Fig5 {
    fig5_planned(bed, arities, queries, engine, QueryPlan::Parallel)
}

/// [`fig5_with_engine`] under an explicit [`QueryPlan`]. The parallel plan
/// reproduces the paper's figure exactly; the adaptive plan visits at most
/// as many nodes (empty intermediate candidate sets short-circuit the
/// remaining sub-query walks).
pub fn fig5_planned(
    bed: &TestBed,
    arities: impl IntoIterator<Item = usize>,
    queries: usize,
    engine: Engine,
    plan: QueryPlan,
) -> Fig5 {
    let p = bed.cfg.params();
    let mut rows = Vec::new();
    let mut summaries: Vec<(&'static str, Summary)> =
        System::ALL.map(|s| (s.name(), Summary::new())).to_vec();
    // Cache pools persist across the arity sweep (see `fig4_with_engine`):
    // range walks anchored at the same segment heads recur across arities.
    let mut pools: Vec<CachePool> = bed.systems.iter().map(|_| CachePool::new()).collect();
    for arity in arities {
        let batch = query_batch(
            &bed.workload,
            bed.cfg.nodes,
            queries,
            1,
            arity,
            QueryMix::Range,
            bed.seeds.seed() ^ 0xF500 ^ arity as u64,
        );
        let measured = match engine {
            Engine::Plain => {
                run_batch_all_planned(&bed.systems, &batch, Metric::Visited, plan, engine)
            }
            Engine::Cached => run_batch_all_cached_planned(
                &bed.systems,
                &batch,
                Metric::Visited,
                plan,
                &mut pools,
            ),
        };
        for (i, s) in System::ALL.iter().enumerate() {
            summaries[i].1.merge(summary_of(&measured, *s));
        }
        let total = System::ALL.map(|s| summary_of(&measured, s).total());
        let avg = System::ALL.map(|s| summary_of(&measured, s).mean());
        let analysis_total =
            System::ALL.map(|s| th::range_visited(&p, arity, s) * batch.len() as f64);
        rows.push(Fig5Row { arity, total, avg, analysis_total, queries: batch.len() });
    }
    Fig5 { rows, summaries }
}

impl Fig5 {
    /// Build the structured report (both sub-figure tables plus the
    /// full-precision per-system summaries).
    pub fn report(&self) -> Report {
        let mut a = Table::new(
            "Figure 5(a): total visited nodes, range queries (system-wide methods)",
            &["attrs", "queries", "Mercury", "MAAN", "Analysis-Mercury", "Analysis-MAAN"],
        );
        for r in &self.rows {
            a.row(vec![
                r.arity.to_string(),
                r.queries.to_string(),
                Table::fmt_f(r.total[1]),
                Table::fmt_f(r.total[3]),
                Table::fmt_f(r.analysis_total[1]),
                Table::fmt_f(r.analysis_total[3]),
            ]);
        }
        let mut b = Table::new(
            "Figure 5(b): total visited nodes, range queries (SWORD vs LORM)",
            &["attrs", "queries", "SWORD", "LORM", "Analysis-SWORD", "Analysis-LORM"],
        );
        for r in &self.rows {
            b.row(vec![
                r.arity.to_string(),
                r.queries.to_string(),
                Table::fmt_f(r.total[2]),
                Table::fmt_f(r.total[0]),
                Table::fmt_f(r.analysis_total[2]),
                Table::fmt_f(r.analysis_total[0]),
            ]);
        }
        let mut rep = Report::new();
        rep.table(a).table(b);
        for (name, s) in &self.summaries {
            rep.summary(*name, s.clone());
        }
        rep
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SimConfig;

    #[test]
    fn fig5_reproduces_visited_ordering() {
        let cfg =
            SimConfig { nodes: 896, attrs: 30, values: 60, dimension: 7, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let fig = fig5(&bed, [1, 4], 60);
        for r in &fig.rows {
            let [lorm, mercury, sword, maan] = r.avg;
            // Theorem 4.9 ordering: MAAN ≈ Mercury (the paper plots them
            // overlapped; MAAN's +1/attr is below walk-length noise),
            // both >> LORM > SWORD.
            assert!(maan > mercury * 0.9, "MAAN {maan} ~ Mercury {mercury}");
            assert!(mercury > 10.0 * lorm, "Mercury {mercury} >> LORM {lorm}");
            assert!(lorm > sword, "LORM {lorm} > SWORD {sword}");
            // SWORD visits exactly one node per attribute.
            assert!((sword - r.arity as f64).abs() < 1e-9);
            // LORM ≈ 1 + d/4 per attribute (d = 7 here -> 2.75/attr).
            let per_attr = lorm / r.arity as f64;
            assert!((1.8..3.8).contains(&per_attr), "LORM visits/attr {per_attr}");
            // Mercury ≈ 1 + n/4 per attribute within a factor ~2.
            let merc_expect = 1.0 + 896.0 / 4.0;
            assert!(
                (mercury / r.arity as f64) > merc_expect * 0.5
                    && (mercury / r.arity as f64) < merc_expect * 1.6,
                "Mercury visits/attr {}",
                mercury / r.arity as f64
            );
        }
    }

    #[test]
    fn cached_engine_reproduces_fig5_bit_for_bit() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 8, values: 20, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let plain = fig5_with_engine(&bed, [1, 3], 25, Engine::Plain);
        let cached = fig5_with_engine(&bed, [1, 3], 25, Engine::Cached);
        assert_eq!(plain.rows, cached.rows);
        assert_eq!(plain.report().to_json(), cached.report().to_json());
    }

    #[test]
    fn analysis_totals_are_closed_form_times_batch_size() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 8, values: 20, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let fig = fig5(&bed, [2], 25);
        let r = &fig.rows[0];
        let p = cfg.params();
        for (i, s) in System::ALL.iter().enumerate() {
            let expect = th::range_visited(&p, 2, *s) * r.queries as f64;
            assert!((r.analysis_total[i] - expect).abs() < 1e-9, "{}", s.name());
        }
        assert!(fig.to_string().contains("Figure 5(b)"));
    }
}
