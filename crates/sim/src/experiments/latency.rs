//! Wall-clock latency — replaying logical traces through a network model.
//!
//! The paper's metrics are logical (hops, probes). This extension assigns
//! every overlay hop a sampled delay ([`dht_core::LatencyModel`]) and
//! replays the query traces:
//!
//! * a sub-query's latency = lookup path + range-walk forwards + one
//!   response hop;
//! * a multi-attribute query resolved **in parallel** (§III) completes at
//!   the *max* of its sub-query latencies;
//! * resolved **sequentially** (`lorm::QueryPlan::Sequential`) it pays the
//!   *sum* — the latency side of the transfer-vs-latency trade the
//!   query-planning ablation measures.

use crate::experiments::query_batch;
use crate::report::Report;
use crate::setup::TestBed;
use crate::table::Table;
use analysis::System;
use dht_core::{LatencyModel, Percentiles, Summary};
use grid_resource::{Query, QueryMix};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Per-system query-latency statistics, milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// System name (or plan label for the LORM plan comparison).
    pub label: String,
    /// Mean query latency.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
}

/// The latency experiment result.
#[derive(Debug, Clone)]
pub struct Latency {
    /// One row per system (parallel resolution, the paper's model).
    pub systems: Vec<LatencyRow>,
    /// Per-system latency summaries (`System::ALL` order) — full
    /// precision, including the count of sub-queries that errored.
    pub summaries: Vec<(&'static str, Summary)>,
    /// LORM under both query plans.
    pub lorm_plans: Vec<LatencyRow>,
    /// The hop-delay model used.
    pub model: LatencyModel,
    /// Queries per series.
    pub queries: usize,
    /// Attributes per query.
    pub arity: usize,
}

fn stats(label: impl Into<String>, samples: Vec<f64>) -> LatencyRow {
    let mean =
        if samples.is_empty() { 0.0 } else { samples.iter().sum::<f64>() / samples.len() as f64 };
    let p = Percentiles::from_samples(samples);
    LatencyRow {
        label: label.into(),
        mean_ms: mean,
        p50_ms: p.median(),
        p95_ms: p.percentile(95.0),
    }
}

/// Replay `queries` range queries of the given arity through the model.
pub fn latency(bed: &TestBed, queries: usize, arity: usize, model: LatencyModel) -> Latency {
    let batch = query_batch(
        &bed.workload,
        bed.cfg.nodes,
        queries,
        1,
        arity,
        QueryMix::Range,
        bed.cfg.seed ^ 0x1A7E,
    );
    let mut rng = SmallRng::seed_from_u64(bed.cfg.seed ^ 0x1A7F);

    // Per-sub-query costs: issue each sub alone, then combine per plan.
    let mut per_system: Vec<(String, Vec<f64>)> =
        System::ALL.iter().map(|s| (s.name().to_string(), Vec::new())).collect();
    let mut summaries: Vec<(&'static str, Summary)> =
        System::ALL.map(|s| (s.name(), Summary::new())).to_vec();
    let mut lorm_parallel: Vec<f64> = Vec::new();
    let mut lorm_sequential: Vec<f64> = Vec::new();

    for (phys, q) in &batch {
        let mut lorm_subs: Vec<f64> = Vec::new();
        for (si, s) in System::ALL.iter().enumerate() {
            let sys = bed.system(*s);
            let mut sub_latencies = Vec::with_capacity(q.subs.len());
            for sub in &q.subs {
                let single = Query { subs: vec![*sub] };
                match sys.query_from(*phys, &single) {
                    Ok(out) => {
                        // lookup hops + walk forwards + one response hop
                        let hops = out.tally.hops + out.tally.visited.saturating_sub(1) + 1;
                        sub_latencies.push(model.sample_path(hops, &mut rng));
                    }
                    Err(_) => summaries[si].1.record_failure(),
                }
            }
            let parallel = sub_latencies.iter().copied().fold(0.0f64, f64::max);
            per_system[si].1.push(parallel);
            summaries[si].1.record(parallel);
            if *s == System::Lorm {
                lorm_subs = sub_latencies;
            }
        }
        lorm_parallel.push(lorm_subs.iter().copied().fold(0.0f64, f64::max));
        lorm_sequential.push(lorm_subs.iter().sum());
    }

    Latency {
        systems: per_system.into_iter().map(|(l, v)| stats(l, v)).collect(),
        summaries,
        lorm_plans: vec![
            stats("LORM parallel (max of subs)", lorm_parallel),
            stats("LORM sequential (sum of subs)", lorm_sequential),
        ],
        model,
        queries: batch.len(),
        arity,
    }
}

impl Latency {
    /// Build the structured report.
    pub fn report(&self) -> Report {
        let mut t = Table::new(
            format!(
                "Extension: query latency, {}-attribute range queries ({} queries, {:?})",
                self.arity, self.queries, self.model
            ),
            &["series", "mean ms", "p50 ms", "p95 ms"],
        );
        for r in self.systems.iter().chain(self.lorm_plans.iter()) {
            t.row(vec![
                r.label.clone(),
                Table::fmt_f(r.mean_ms),
                Table::fmt_f(r.p50_ms),
                Table::fmt_f(r.p95_ms),
            ]);
        }
        let mut rep = Report::new();
        rep.table(t);
        for (name, s) in &self.summaries {
            rep.summary(*name, s.clone());
        }
        rep
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SimConfig;

    #[test]
    fn latency_ordering_follows_probe_counts() {
        let cfg =
            SimConfig { nodes: 896, dimension: 7, attrs: 20, values: 50, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let lat = latency(&bed, 60, 3, LatencyModel::Constant { ms: 10.0 });
        let get = |n: &str| lat.systems.iter().find(|r| r.label == n).expect("row");
        // Mercury/MAAN walk ~n/4 nodes per attribute: far slower than LORM
        assert!(get("Mercury").mean_ms > 5.0 * get("LORM").mean_ms);
        assert!(get("MAAN").mean_ms > 5.0 * get("LORM").mean_ms);
        // SWORD (no walk) is the fastest
        assert!(get("SWORD").mean_ms <= get("LORM").mean_ms);
        // sequential LORM is slower than parallel LORM but of the same scale
        let par = &lat.lorm_plans[0];
        let seq = &lat.lorm_plans[1];
        assert!(seq.mean_ms > par.mean_ms);
        assert!(seq.mean_ms < par.mean_ms * 3.5, "sum of 3 subs vs their max");
    }

    #[test]
    fn constant_model_makes_latency_proportional_to_hops() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() };
        let bed = TestBed::new(cfg);
        let a = latency(&bed, 30, 1, LatencyModel::Constant { ms: 10.0 });
        let b = latency(&bed, 30, 1, LatencyModel::Constant { ms: 20.0 });
        for (ra, rb) in a.systems.iter().zip(b.systems.iter()) {
            assert!((rb.mean_ms - 2.0 * ra.mean_ms).abs() < 1e-6, "{}", ra.label);
        }
    }
}
