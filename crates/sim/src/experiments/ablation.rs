//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Locality-preserving vs hashed value placement** in LORM
//!    (`ablate_placement`): hashing values uniformly balances load exactly
//!    as well, but destroys Proposition 3.1 — every range query must probe
//!    the whole cluster.
//! 2. **Value-distribution skew** (`ablate_value_skew`): the paper
//!    generates values with a Bounded Pareto; this ablation shows how the
//!    LPH load balance of LORM (and Mercury/MAAN) degrades as the skew
//!    grows, which is why the default workload is the uniform grid (see
//!    DESIGN.md's substitution table).
//! 3. **Chord successor-list length** (`ablate_succ_list`): lookup
//!    exactness under abrupt failures as a function of `r`.
//! 4. **Cycloid dimension** (`ablate_dimension`): LORM's hop count and
//!    range-probe count grow with `d` while per-node state stays constant
//!    — the trade the paper's `d = 8` sits on.

use super::{run_batch_planned_sharded, Metric};
use crate::report::Report;
use crate::setup::{build_system, SimConfig};
use crate::table::Table;
use analysis::System;
use baselines::{CompositeConfig, CompositeFlat};
use chord::{Chord, ChordConfig};
use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::{Overlay, SeedSpawner, Summary};
use grid_resource::ValueTarget;
use grid_resource::{
    AttrPopularity, Query, QueryMix, QueryPlan, ResourceDiscovery, ValueDist, Workload,
    WorkloadConfig,
};
use lorm::{Lorm, LormConfig, Placement};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Result row shared by the ablation tables.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The swept setting, rendered.
    pub setting: String,
    /// Metric values, matching the table's columns.
    pub values: Vec<f64>,
}

/// A generic ablation result.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Table title.
    pub title: String,
    /// Column names after the setting column.
    pub columns: Vec<&'static str>,
    /// The rows.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// Build the structured report.
    pub fn report(&self) -> Report {
        let mut header = vec!["setting"];
        header.extend(self.columns.iter());
        let mut t = Table::new(self.title.clone(), &header);
        for r in &self.rows {
            let mut cells = vec![r.setting.clone()];
            cells.extend(r.values.iter().map(|&v| Table::fmt_f(v)));
            t.row(cells);
        }
        let mut rep = Report::new();
        rep.table(t);
        rep
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report().fmt(f)
    }
}

/// Ablation 1: LPH vs hashed placement — range-probe counts and balance.
pub fn ablate_placement(cfg: &SimConfig, queries: usize) -> Ablation {
    let seeds = SeedSpawner::new(cfg.seed ^ 0xAB1);
    let workload =
        Workload::generate(cfg.workload_config(), &mut seeds.labelled(1)).expect("valid config");
    let mut rows = Vec::new();
    for (label, placement) in
        [("LPH (paper)", Placement::Lph), ("hashed (ablation)", Placement::Hashed)]
    {
        let mut sys = Lorm::new(
            cfg.nodes,
            &workload.space,
            LormConfig { dimension: cfg.dimension, seed: cfg.seed, placement },
        );
        sys.place_all(&workload.reports);
        let mut rng = seeds.labelled(2);
        let mut visited = Summary::new();
        let mut complete = 0usize;
        for _ in 0..queries {
            let q = workload.random_query(1, QueryMix::Range, &mut rng);
            let sub = q.subs[0];
            if let Ok(out) = sys.query_from(rng.gen_range(0..cfg.nodes), &q) {
                visited.record(out.tally.visited as f64);
                let mut expected: Vec<usize> = workload
                    .reports
                    .iter()
                    .filter(|r| r.attr == sub.attr && sub.target.matches(r.value))
                    .map(|r| r.owner)
                    .collect();
                expected.sort_unstable();
                expected.dedup();
                let mut got = out.owners.clone();
                got.sort_unstable();
                if got == expected {
                    complete += 1;
                }
            }
        }
        let loads = sys.directory_loads();
        rows.push(AblationRow {
            setting: label.into(),
            values: vec![
                visited.mean(),
                complete as f64 / queries as f64 * 100.0,
                loads.p99(),
                loads.cv(),
            ],
        });
    }
    Ablation {
        title: "Ablation: locality-preserving vs hashed value placement (LORM range queries)"
            .into(),
        columns: vec!["avg probes", "complete %", "dir p99", "dir cv"],
        rows,
    }
}

/// Ablation 2: value-distribution skew vs LORM directory balance.
pub fn ablate_value_skew(cfg: &SimConfig) -> Ablation {
    let dists = [
        ("uniform", ValueDist::Uniform),
        ("pareto a=0.25", ValueDist::BoundedPareto { alpha: 0.25 }),
        ("pareto a=0.5", ValueDist::BoundedPareto { alpha: 0.5 }),
        ("pareto a=1.0", ValueDist::BoundedPareto { alpha: 1.0 }),
    ];
    let mut rows = Vec::new();
    for (label, dist) in dists {
        let wl_cfg = WorkloadConfig { value_dist: dist, ..cfg.workload_config() };
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xAB2);
        let workload = Workload::generate(wl_cfg, &mut rng).expect("valid config");
        let mut sys = Lorm::new(
            cfg.nodes,
            &workload.space,
            LormConfig { dimension: cfg.dimension, seed: cfg.seed, ..LormConfig::default() },
        );
        sys.place_all(&workload.reports);
        let loads = sys.directory_loads();
        rows.push(AblationRow {
            setting: label.into(),
            values: vec![loads.mean(), loads.p99(), loads.max(), loads.cv()],
        });
    }
    Ablation {
        title: "Ablation: value-distribution skew vs LORM directory balance".into(),
        columns: vec!["avg", "p99", "max", "cv"],
        rows,
    }
}

/// Ablation 3: Chord successor-list length vs lookup exactness under
/// abrupt, unrepaired failures.
pub fn ablate_succ_list(n: usize, fail_fraction: f64, lookups: usize, seed: u64) -> Ablation {
    let mut rows = Vec::new();
    for r in [1usize, 2, 4, 8] {
        let mut net = Chord::build(n, ChordConfig { succ_list_len: r, seed });
        let mut rng = SmallRng::seed_from_u64(seed ^ r as u64);
        let kill = ((n as f64) * fail_fraction) as usize;
        for _ in 0..kill {
            if let Some(v) = net.random_node(&mut rng) {
                let _ = net.fail(v);
            }
        }
        let mut exact = 0usize;
        let mut completed = 0usize;
        let mut hops = Summary::new();
        for _ in 0..lookups {
            let from = net.random_node(&mut rng).expect("live node");
            let key: u64 = rng.gen();
            if let Ok(route) = net.route_stats(from, key) {
                completed += 1;
                hops.record(route.hops as f64);
                if route.exact {
                    exact += 1;
                }
            }
        }
        rows.push(AblationRow {
            setting: format!("r = {r}"),
            values: vec![
                completed as f64 / lookups as f64 * 100.0,
                exact as f64 / lookups as f64 * 100.0,
                hops.mean(),
            ],
        });
    }
    Ablation {
        title: format!(
            "Ablation: Chord successor-list length under {:.0}% abrupt failures (n = {n})",
            fail_fraction * 100.0
        ),
        columns: vec!["completed %", "exact %", "avg hops"],
        rows,
    }
}

/// Ablation 4: Cycloid dimension — hops, probes and state per node.
pub fn ablate_dimension(dims: &[u8], lookups: usize, seed: u64) -> Ablation {
    let mut rows = Vec::new();
    for &d in dims {
        let n = d as usize * (1usize << d);
        let net = Cycloid::build(n, CycloidConfig { dimension: d, seed });
        let mut rng = SmallRng::seed_from_u64(seed ^ d as u64);
        let mut hops = Summary::new();
        for _ in 0..lookups {
            let from = net.random_node(&mut rng).expect("live");
            let key = CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d);
            if let Ok(route) = net.route_stats(from, key) {
                hops.record(route.hops as f64);
            }
        }
        let links: usize = net.live_nodes().iter().map(|&i| net.outlinks(i).unwrap_or(0)).sum();
        rows.push(AblationRow {
            setting: format!("d = {d} (n = {n})"),
            values: vec![
                hops.mean(),
                1.0 + d as f64 / 4.0, // expected range probes (T4.9)
                links as f64 / n as f64,
            ],
        });
    }
    Ablation {
        title: "Ablation: Cycloid dimension vs lookup cost and node state".into(),
        columns: vec!["avg hops", "range probes (1+d/4)", "outlinks/node"],
        rows,
    }
}

/// Ablation 6: multi-attribute query planning across all four systems —
/// parallel (§III) vs sequential document-order vs adaptive
/// selective-first resolution. Same answers on every system; the plans
/// trade result-transfer volume (matches shipped to the requester) and
/// lookup traffic against serialized latency. One shared query batch
/// drives every (system, plan) cell so the columns are comparable.
pub fn ablate_query_plan(cfg: &SimConfig, queries: usize, arity: usize) -> Ablation {
    let seeds = SeedSpawner::new(cfg.seed ^ 0xAB6);
    let workload =
        Workload::generate(cfg.workload_config(), &mut seeds.labelled(1)).expect("valid config");
    let mut rng = seeds.labelled(2);
    let batch: Vec<(usize, Query)> = (0..queries)
        .map(|_| {
            let q = workload.random_query(arity, QueryMix::Range, &mut rng);
            (rng.gen_range(0..cfg.nodes), q)
        })
        .collect();
    let mut rows = Vec::new();
    for &system in System::ALL.iter() {
        let sys = build_system(system, &workload, cfg);
        for plan in QueryPlan::ALL {
            let cell = |metric| run_batch_planned_sharded(sys.as_ref(), &batch, metric, plan, 1);
            rows.push(AblationRow {
                setting: format!("{}/{}", system.name(), plan.name()),
                values: vec![
                    cell(Metric::Matches).mean(),
                    cell(Metric::Lookups).mean(),
                    cell(Metric::Visited).mean(),
                    cell(Metric::Hops).mean(),
                ],
            });
        }
    }
    Ablation {
        title: format!(
            "Ablation: query plan x system, {arity}-attribute range queries (transfer vs latency)"
        ),
        columns: vec!["pieces shipped", "lookups", "probes", "hops"],
        rows,
    }
}

/// Ablation 7: does LORM need Cycloid's hierarchy? Compare LORM against
/// [`CompositeFlat`] — the same two-level index (attribute prefix +
/// locality-preserved value suffix) emulated on a *flat* Chord — on the
/// three axes where the hierarchy could matter: maintenance state, average
/// range probing, and the worst-case (full-domain) probe count, where only
/// the real cluster gives a hard `d` cap.
pub fn ablate_flat_lorm(cfg: &SimConfig, queries: usize) -> Ablation {
    let seeds = SeedSpawner::new(cfg.seed ^ 0xAB7);
    let workload =
        Workload::generate(cfg.workload_config(), &mut seeds.labelled(1)).expect("valid config");
    let mut lorm = Lorm::new(
        cfg.nodes,
        &workload.space,
        LormConfig { dimension: cfg.dimension, seed: cfg.seed, ..LormConfig::default() },
    );
    lorm.place_all(&workload.reports);
    // prefix bits so that segment population ~= cluster size d
    let prefix_bits = (cfg.nodes as f64 / cfg.dimension as f64).log2().round() as u8;
    let mut flat = CompositeFlat::new(
        cfg.nodes,
        &workload.space,
        CompositeConfig { seed: cfg.seed, prefix_bits: prefix_bits.clamp(1, 20) },
    );
    flat.place_all(&workload.reports);

    let measure = |sys: &dyn ResourceDiscovery, label: &str| {
        let mut rng = seeds.labelled(2);
        let mut probes = Summary::new();
        for _ in 0..queries {
            let q = workload.random_query(1, QueryMix::Range, &mut rng);
            if let Ok(out) = sys.query_from(rng.gen_range(0..cfg.nodes), &q) {
                probes.record(out.tally.visited as f64);
            }
        }
        // worst case: full-domain ranges over every attribute
        let (dmin, dmax) = workload.space.domain();
        let mut worst = 0usize;
        for attr in workload.space.ids() {
            let q = grid_resource::Query::new(vec![grid_resource::SubQuery {
                attr,
                target: ValueTarget::Range { low: dmin, high: dmax },
            }])
            .expect("valid range");
            if let Ok(out) = sys.query_from(0, &q) {
                worst = worst.max(out.tally.visited);
            }
        }
        AblationRow {
            setting: label.into(),
            values: vec![
                sys.outlinks_per_node().mean(),
                sys.directory_loads().p99(),
                probes.mean(),
                worst as f64,
            ],
        }
    };
    let rows = vec![
        measure(&lorm, "LORM (Cycloid)"),
        measure(&flat, &format!("flat composite (Chord, P={prefix_bits})")),
    ];
    Ablation {
        title: "Ablation: Cycloid hierarchy vs flat composite keys".into(),
        columns: vec!["outlinks", "dir p99", "avg range probes", "worst-case probes"],
        rows,
    }
}

/// Ablation 5: attribute popularity — real grids query a few hot
/// attributes far more than others. Zipf-skewed attribute selection
/// concentrates query load on the hot attributes' directory nodes; this
/// measures the per-node probe hotspot (max probes on one node) for each
/// system as the skew grows.
pub fn ablate_attr_popularity(cfg: &SimConfig, queries: usize) -> Ablation {
    use analysis::System;
    let mut rows = Vec::new();
    for (label, pop) in [
        ("uniform", AttrPopularity::Uniform),
        ("zipf s=0.8", AttrPopularity::Zipf { exponent: 0.8 }),
        ("zipf s=1.5", AttrPopularity::Zipf { exponent: 1.5 }),
    ] {
        let wl_cfg = WorkloadConfig { attr_popularity: pop, ..cfg.workload_config() };
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xAB5);
        let workload = Workload::generate(wl_cfg, &mut rng).expect("valid config");
        let mut maxima = Vec::with_capacity(System::ALL.len());
        for s in System::ALL {
            let sys = crate::setup::build_system(s, &workload, cfg);
            let mut counts: Vec<usize> = vec![0; cfg.nodes];
            for _ in 0..queries {
                let q = workload.random_query(1, QueryMix::Range, &mut rng);
                let origin = rng.gen_range(0..cfg.nodes);
                if let Ok(out) = sys.query_from(origin, &q) {
                    for n in out.probed {
                        if counts.len() <= n.0 {
                            counts.resize(n.0 + 1, 0);
                        }
                        counts[n.0] += 1;
                    }
                }
            }
            maxima.push(counts.iter().copied().max().unwrap_or(0) as f64);
        }
        rows.push(AblationRow { setting: label.into(), values: maxima });
    }
    Ablation {
        title: "Ablation: attribute popularity (Zipf) vs per-node probe hotspot (max probes)"
            .into(),
        columns: vec!["LORM", "Mercury", "SWORD", "MAAN"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SimConfig {
        // full population so clusters have all d members
        SimConfig { nodes: 2048, attrs: 20, values: 60, dimension: 8, ..SimConfig::default() }
    }

    #[test]
    fn placement_ablation_shows_lph_wins_probes() {
        let ab = ablate_placement(&small_cfg(), 120);
        assert_eq!(ab.rows.len(), 2);
        let lph = &ab.rows[0];
        let hashed = &ab.rows[1];
        // both stay complete...
        assert_eq!(lph.values[1], 100.0, "LPH completeness");
        assert_eq!(hashed.values[1], 100.0, "hashed completeness");
        // ...but hashing probes more nodes per range query
        assert!(
            hashed.values[0] > lph.values[0] * 1.2,
            "hashed probes {} vs lph {}",
            hashed.values[0],
            lph.values[0]
        );
    }

    #[test]
    fn skew_ablation_degrades_balance() {
        let ab = ablate_value_skew(&small_cfg());
        assert_eq!(ab.rows.len(), 4);
        let uniform_max = ab.rows[0].values[2];
        let pareto1_max = ab.rows[3].values[2];
        assert!(
            pareto1_max > 2.0 * uniform_max,
            "skew must pile load onto few nodes: max {uniform_max} -> {pareto1_max}"
        );
        let uniform_cv = ab.rows[0].values[3];
        let pareto1_cv = ab.rows[3].values[3];
        assert!(pareto1_cv > 1.2 * uniform_cv, "cv {uniform_cv} -> {pareto1_cv}");
        // averages stay equal — skew moves the tail, not the mean
        assert!((ab.rows[0].values[0] - ab.rows[3].values[0]).abs() < 1.0);
    }

    #[test]
    fn succ_list_ablation_improves_with_r() {
        let ab = ablate_succ_list(300, 0.15, 300, 0x5CC);
        let exact_r1 = ab.rows[0].values[1];
        let exact_r8 = ab.rows[3].values[1];
        assert!(exact_r8 >= exact_r1, "longer lists cannot hurt: {exact_r1} -> {exact_r8}");
        assert!(exact_r8 > 90.0, "r=8 should make nearly all lookups exact: {exact_r8}");
    }

    #[test]
    fn dimension_ablation_hops_grow_with_d() {
        let ab = ablate_dimension(&[5, 7], 400, 0xD1);
        assert!(ab.rows[1].values[0] > ab.rows[0].values[0]);
        // constant state
        assert!((ab.rows[1].values[2] - ab.rows[0].values[2]).abs() < 2.0);
        // renders
        assert!(ab.to_string().contains("d = 5"));
    }

    #[test]
    fn attr_popularity_skew_hits_sword_hardest() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 15, values: 40, ..SimConfig::default() };
        let ab = ablate_attr_popularity(&cfg, 150);
        assert_eq!(ab.rows.len(), 3);
        // SWORD's hotspot (column index 2) grows sharply under zipf 1.5
        let uniform_sword = ab.rows[0].values[2];
        let zipf_sword = ab.rows[2].values[2];
        assert!(
            zipf_sword > 1.5 * uniform_sword,
            "SWORD hotspot should grow with popularity skew: {uniform_sword} -> {zipf_sword}"
        );
        // Mercury's hotspot stays comparatively flat
        let uniform_merc = ab.rows[0].values[1];
        let zipf_merc = ab.rows[2].values[1];
        assert!(zipf_merc < 2.0 * uniform_merc.max(1.0));
    }

    #[test]
    fn query_plan_ablation_shows_transfer_savings() {
        let cfg =
            SimConfig { nodes: 384, dimension: 6, attrs: 15, values: 40, ..SimConfig::default() };
        let ab = ablate_query_plan(&cfg, 100, 4);
        // 4 systems x 3 plans, in System::ALL x QueryPlan::ALL order
        assert_eq!(ab.rows.len(), 12);
        for (s, system) in System::ALL.iter().enumerate() {
            let parallel = &ab.rows[3 * s];
            let sequential = &ab.rows[3 * s + 1];
            let adaptive = &ab.rows[3 * s + 2];
            assert!(parallel.setting.starts_with(system.name()));
            assert!(adaptive.setting.ends_with("adaptive"));
            // the ISSUE acceptance bar: adaptive ships <= 0.5x parallel's
            // transfer volume on every system at arity 4
            assert!(
                adaptive.values[0] * 2.0 <= parallel.values[0],
                "{}: adaptive transfer {} vs parallel {}",
                system.name(),
                adaptive.values[0],
                parallel.values[0]
            );
            // adaptive never ships more than document-order sequential
            assert!(adaptive.values[0] <= sequential.values[0] + 1e-9);
            // probes can only be fewer (short-circuits), never more
            assert!(adaptive.values[2] <= parallel.values[2] + 1e-9);
        }
    }

    #[test]
    fn flat_lorm_ablation_shows_what_hierarchy_buys() {
        let cfg =
            SimConfig { nodes: 896, dimension: 7, attrs: 25, values: 60, ..SimConfig::default() };
        let ab = ablate_flat_lorm(&cfg, 150);
        let lorm = &ab.rows[0].values;
        let flat = &ab.rows[1].values;
        // constant degree vs log n state
        assert!(lorm[0] < flat[0], "LORM outlinks {} < flat {}", lorm[0], flat[0]);
        // average range probes comparable (both segment-scale) ...
        assert!(flat[2] < 20.0, "flat avg probes {}", flat[2]);
        // ... but only the real cluster caps the worst case at d
        assert!(lorm[3] <= cfg.dimension as f64 + 1.0, "LORM worst {}", lorm[3]);
        assert!(flat[3] > lorm[3], "flat worst {} should exceed LORM {}", flat[3], lorm[3]);
    }
}
