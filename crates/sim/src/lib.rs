//! # sim — the experiment engine
//!
//! Mounts the four discovery systems (LORM, Mercury, SWORD, MAAN) on a
//! shared synthetic grid population, drives the paper's workloads and
//! churn schedules against them, and collects exactly the metrics each
//! figure of the evaluation section reports:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`experiments::fig3`] | Fig. 3(a) outlinks vs size; Fig. 3(b–d) directory-size distributions |
//! | [`experiments::fig4`] | Fig. 4(a,b) logical hops of non-range multi-attribute queries |
//! | [`experiments::fig5`] | Fig. 5(a,b) visited nodes of range queries |
//! | [`experiments::fig6`] | Fig. 6(a,b) both metrics under Poisson churn |
//! | [`experiments::worstcase`] | Theorem 4.10's worst-case contacted-node bound |
//! | [`experiments::ablation`] | design-choice ablations (value skew, LPH vs modulo, leaf sets) |
//! | [`experiments::chaos`] | (extension) success rate / hop inflation under injected faults |
//!
//! Every experiment returns a plain result struct whose `Display` renders
//! the same rows/series the paper plots, alongside the matching
//! "Analysis-…" overlay derived from the `analysis` crate — the repro
//! binary in `crates/bench` just prints them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod experiments;
pub mod report;
pub mod setup;
pub mod table;

pub use cache::BedCache;
pub use report::Report;
pub use setup::{build_system, build_system_with_mode, SimConfig, TestBed};
pub use table::Table;
