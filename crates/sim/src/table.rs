//! Minimal fixed-width table rendering for experiment reports.
//!
//! Every experiment's `Display` goes through [`Table`] so the repro binary
//! and EXPERIMENTS.md get uniformly formatted, diff-friendly output.

use std::fmt;

/// A simple text table: header plus rows of equally many cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Serialize as a JSON object:
    /// `{"title": ..., "header": [...], "rows": [[...], ...]}`.
    pub fn to_json(&self) -> String {
        use crate::report::json_str;
        let mut out = String::from("{\"title\":");
        out.push_str(&json_str(&self.title));
        out.push_str(",\"header\":[");
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(h));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, c) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(c));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Format a float with sensible precision for report tables.
    pub fn fmt_f(x: f64) -> String {
        if !x.is_finite() {
            "-".to_string()
        } else if x == 0.0 {
            "0".to_string()
        } else if x.abs() >= 1000.0 {
            format!("{x:.0}")
        } else if x.abs() >= 10.0 {
            format!("{x:.1}")
        } else {
            format!("{x:.2}")
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate().take(cols) {
                write!(f, " {:>w$} |", cells.get(i).map(String::as_str).unwrap_or(""), w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["200".into(), "3.5".into()]);
        let s = t.to_string();
        assert!(s.starts_with("## demo"));
        assert!(s.contains("|   x | value |"), "got:\n{s}");
        assert!(s.contains("| 200 |   3.5 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(Table::fmt_f(0.0), "0");
        assert_eq!(Table::fmt_f(1.2345), "1.23");
        assert_eq!(Table::fmt_f(48.83), "48.8");
        assert_eq!(Table::fmt_f(2200.4), "2200");
        assert_eq!(Table::fmt_f(f64::NAN), "-");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("empty", &["a", "b"]);
        assert!(t.is_empty());
        let s = t.to_string();
        assert!(s.contains("## empty"));
        assert!(s.contains("| a | b |"));
        assert_eq!(s.lines().count(), 3, "title + header + rule");
    }

    #[test]
    fn wide_cells_stretch_columns() {
        let mut t = Table::new("w", &["x"]);
        t.row(vec!["a-very-long-cell".into()]);
        let s = t.to_string();
        assert!(s.contains("| a-very-long-cell |"));
        assert!(s.contains("|                x |"), "header right-aligns to widest cell");
    }

    #[test]
    fn json_round_trips_structure() {
        let mut t = Table::new("ti\"tle", &["a", "b"]);
        t.row(vec!["1".into(), "x y".into()]);
        t.row(vec!["2".into(), "z".into()]);
        let j = t.to_json();
        assert_eq!(
            j,
            "{\"title\":\"ti\\\"tle\",\"header\":[\"a\",\"b\"],\
             \"rows\":[[\"1\",\"x y\"],[\"2\",\"z\"]]}"
        );
        assert_eq!(t.title(), "ti\"tle");
        assert_eq!(t.header(), ["a", "b"]);
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn negative_numbers_format() {
        assert_eq!(Table::fmt_f(-3.456), "-3.46");
        assert_eq!(Table::fmt_f(-12345.0), "-12345");
    }
}
