//! Bed snapshot cache — build each stabilized bed once, reuse everywhere.
//!
//! After the routing fast path (PR 3), the dominant wall-clock cost of
//! every `repro` pipeline is *bed construction*: overlay join +
//! stabilization + report placement, repeated at every sweep point even
//! when the configuration is identical. The paper's metrics are pure
//! functions of a stabilized bed plus a workload, so a bed built once can
//! be shared (read-only experiments) or deep-cloned (churn experiments)
//! wherever seeds and config match.
//!
//! Two kinds of entry:
//!
//! * **Shared beds** ([`BedCache::bed`]): an `Arc<TestBed>` per distinct
//!   [`SimConfig`] fingerprint. Safe to share because every static
//!   experiment takes `&TestBed` and [`dht_core::SeedSpawner`] hands out
//!   streams without interior mutability — a shared bed is
//!   indistinguishable from a fresh one.
//! * **Churn prototypes** ([`BedCache::churn_proto`]): per `(config,
//!   workload-seed, system)` master copies that hand out deep clones via
//!   [`ResourceDiscovery::clone_box`]. A clone carries *all* state
//!   including RNGs, so driving it through a churn schedule is
//!   byte-identical to driving a freshly built system.
//!
//! Determinism contract (enforced by `crates/sim/tests/determinism.rs`
//! and the snapshot proptests): cache hits must produce **byte-identical**
//! Report JSON to cache misses. This holds because construction is a pure
//! function of `(System, Workload, SimConfig)` and clones are deep.

use crate::setup::{build_system, SimConfig, TestBed};
use analysis::System;
use grid_resource::{ResourceDiscovery, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Collision-resistant fingerprint of every field that influences bed
/// construction. Two configs with equal fingerprints build byte-identical
/// beds; floats enter by bit pattern so `-0.0` vs `0.0` (different bits)
/// are conservatively treated as distinct.
pub fn fingerprint(cfg: &SimConfig) -> u64 {
    let mut h = 0xBED0_5EED_u64;
    let mut mix = |v: u64| h = splitmix64(h ^ v);
    mix(cfg.nodes as u64);
    mix(cfg.attrs as u64);
    mix(cfg.values as u64);
    mix(cfg.dimension as u64);
    mix(cfg.seed);
    match cfg.value_dist {
        grid_resource::ValueDist::Uniform => mix(1),
        grid_resource::ValueDist::BoundedPareto { alpha } => {
            mix(2);
            mix(alpha.to_bits());
        }
    }
    h
}

type BoxedSystem = Box<dyn ResourceDiscovery + Send + Sync>;

/// Build-once cache of stabilized beds and churn prototypes.
///
/// Interior-mutable and `Sync`: one cache instance serves a whole `repro`
/// invocation, including the `systems × shards` thread fan-out. Misses
/// build *outside* the map lock so concurrent first builds of different
/// entries still run in parallel; a lost insert race simply discards one
/// of two identical builds (construction is deterministic).
#[derive(Default)]
pub struct BedCache {
    beds: Mutex<BTreeMap<u64, Arc<TestBed>>>,
    workloads: Mutex<BTreeMap<(u64, u64), Arc<Workload>>>,
    protos: Mutex<BTreeMap<(u64, u64, usize), Arc<BoxedSystem>>>,
    builds: AtomicUsize,
}

impl BedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Full beds and churn prototypes constructed so far (cache misses).
    /// Tests assert hit/miss behaviour through this counter.
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// The shared stabilized bed for `cfg`, building it on first use.
    pub fn bed(&self, cfg: SimConfig) -> Arc<TestBed> {
        let key = fingerprint(&cfg);
        if let Some(bed) = self.beds.lock().ok().and_then(|m| m.get(&key).cloned()) {
            return bed;
        }
        let built = Arc::new(TestBed::new(cfg));
        self.builds.fetch_add(1, Ordering::Relaxed);
        match self.beds.lock() {
            Ok(mut m) => m.entry(key).or_insert(built).clone(),
            // A poisoned map only means another thread panicked mid-insert;
            // the freshly built bed is still valid to hand out.
            Err(_) => built,
        }
    }

    /// Insert an externally assembled bed as the shared entry for its
    /// configuration, returning the shared handle. The perf harness uses
    /// this after timing each `build_system` call individually, so the
    /// pipeline kernels reuse the very beds whose construction was
    /// measured. If an entry already exists it wins (builds are
    /// deterministic, so both are identical).
    pub fn prime(&self, bed: TestBed) -> Arc<TestBed> {
        let key = fingerprint(&bed.cfg);
        let built = Arc::new(bed);
        match self.beds.lock() {
            Ok(mut m) => m.entry(key).or_insert(built).clone(),
            Err(_) => built,
        }
    }

    /// The workload generated from `SmallRng::seed_from_u64(wl_seed)` over
    /// `cfg`'s attribute space — the churn experiments draw their workload
    /// from their own seed rather than the bed's labelled stream, so it is
    /// cached under its provenance, not under the bed.
    pub fn churn_workload(&self, cfg: &SimConfig, wl_seed: u64) -> Arc<Workload> {
        let key = (fingerprint(cfg), wl_seed);
        if let Some(w) = self.workloads.lock().ok().and_then(|m| m.get(&key).cloned()) {
            return w;
        }
        let mut rng = SmallRng::seed_from_u64(wl_seed);
        let built = Arc::new(
            // lint:allow(panic-hygiene): every SimConfig constructible
            // here yields a valid workload config (positive counts).
            Workload::generate(cfg.workload_config(), &mut rng).expect("valid workload config"),
        );
        match self.workloads.lock() {
            Ok(mut m) => m.entry(key).or_insert(built).clone(),
            Err(_) => built,
        }
    }

    /// A deep clone of the stabilized `(system, cfg, workload-seed)`
    /// prototype, building the master copy on first use. The clone is the
    /// caller's to mutate (churn, faults); the master is never touched
    /// after construction.
    pub fn churn_proto(&self, system: System, cfg: &SimConfig, wl_seed: u64) -> BoxedSystem {
        let key = (fingerprint(cfg), wl_seed, system as usize);
        if let Some(p) = self.protos.lock().ok().and_then(|m| m.get(&key).cloned()) {
            return p.clone_box();
        }
        let workload = self.churn_workload(cfg, wl_seed);
        let built: Arc<BoxedSystem> = Arc::new(build_system(system, &workload, cfg));
        self.builds.fetch_add(1, Ordering::Relaxed);
        match self.protos.lock() {
            Ok(mut m) => m.entry(key).or_insert(built).clone_box(),
            Err(_) => built.clone_box(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::query_batch;
    use crate::experiments::{run_batch, Metric};
    use grid_resource::QueryMix;

    fn tiny() -> SimConfig {
        SimConfig { nodes: 64, attrs: 4, values: 8, dimension: 5, ..SimConfig::default() }
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = tiny();
        let fields: Vec<SimConfig> = vec![
            SimConfig { nodes: 65, ..a },
            SimConfig { attrs: 5, ..a },
            SimConfig { values: 9, ..a },
            SimConfig { dimension: 6, ..a },
            SimConfig { seed: a.seed ^ 1, ..a },
            SimConfig { value_dist: grid_resource::ValueDist::BoundedPareto { alpha: 1.5 }, ..a },
        ];
        let base = fingerprint(&a);
        for (i, c) in fields.iter().enumerate() {
            assert_ne!(base, fingerprint(c), "field {i} must perturb the fingerprint");
        }
        assert_eq!(base, fingerprint(&tiny()), "fingerprint is a pure function");
    }

    #[test]
    fn bed_is_built_once_and_shared() {
        let cache = BedCache::new();
        let a = cache.bed(tiny());
        let b = cache.bed(tiny());
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        assert_eq!(cache.builds(), 1);
        let other = cache.bed(SimConfig { seed: 7, ..tiny() });
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn cached_bed_queries_match_fresh_bed() {
        let cfg = tiny();
        let cache = BedCache::new();
        let cached = cache.bed(cfg);
        let fresh = TestBed::new(cfg);
        let batch = query_batch(
            &fresh.workload,
            cfg.nodes,
            8,
            2,
            2,
            QueryMix::Range,
            fresh.seeds.seed() ^ 0xBED,
        );
        for (c, f) in cached.systems.iter().zip(&fresh.systems) {
            let sc = run_batch(c.as_ref(), &batch, Metric::Hops);
            let sf = run_batch(f.as_ref(), &batch, Metric::Hops);
            assert_eq!(sc, sf, "{}", f.name());
        }
    }

    #[test]
    fn churn_proto_clones_are_independent_and_identical() {
        let cfg = tiny();
        let cache = BedCache::new();
        let wl_seed = cfg.seed ^ 0xF6;
        let mut a = cache.churn_proto(System::Sword, &cfg, wl_seed);
        let b = cache.churn_proto(System::Sword, &cfg, wl_seed);
        assert_eq!(cache.builds(), 1, "one master build serves every clone");
        assert_eq!(a.total_pieces(), b.total_pieces());
        // Mutating one clone must not leak into the other or the master.
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = a.join_physical(&mut rng);
        assert_eq!(a.num_physical(), b.num_physical() + 1);
        let c = cache.churn_proto(System::Sword, &cfg, wl_seed);
        assert_eq!(c.num_physical(), b.num_physical(), "master stays pristine");
    }

    #[test]
    fn churn_proto_matches_fresh_build() {
        let cfg = tiny();
        let cache = BedCache::new();
        let wl_seed = cfg.seed ^ 0xF6;
        let proto = cache.churn_proto(System::Maan, &cfg, wl_seed);
        let mut rng = SmallRng::seed_from_u64(wl_seed);
        let workload = Workload::generate(cfg.workload_config(), &mut rng).unwrap();
        let fresh = build_system(System::Maan, &workload, &cfg);
        let batch = query_batch(&workload, cfg.nodes, 8, 2, 2, QueryMix::Range, cfg.seed ^ 0xBED);
        assert_eq!(
            run_batch(proto.as_ref(), &batch, Metric::Visited),
            run_batch(fresh.as_ref(), &batch, Metric::Visited),
        );
    }
}
