//! End-to-end determinism regression: the exported `Report` JSON must be
//! a pure function of the experiment seed — identical across repeated
//! runs *and* across shard counts. This is the contract `cargo xtask
//! lint` enforces statically; here it is checked dynamically on a real
//! figure pipeline.
//!
//! Kept in its own integration-test binary because `set_default_shards`
//! is a process-wide override.

use sim::experiments::fig4::fig4;
use sim::experiments::set_default_shards;
use sim::setup::{SimConfig, TestBed};

fn fig4_json(shards: usize) -> String {
    set_default_shards(shards);
    let cfg = SimConfig { nodes: 256, attrs: 12, values: 50, dimension: 6, ..SimConfig::default() };
    let bed = TestBed::new(cfg);
    let json = fig4(&bed, [1, 3], 16, 4).report().to_json();
    set_default_shards(0); // restore auto
    json
}

#[test]
fn fig4_report_is_bit_identical_across_runs_and_shard_counts() {
    let once = fig4_json(1);
    let again = fig4_json(1);
    assert_eq!(once, again, "same seed, same shard count must give identical JSON");

    let sharded = fig4_json(3);
    assert_eq!(once, sharded, "shard count is an execution detail and must not leak into results");
}
