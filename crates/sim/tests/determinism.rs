//! End-to-end determinism regression: the exported `Report` JSON must be
//! a pure function of the experiment seed — identical across repeated
//! runs *and* across shard counts. This is the contract `cargo xtask
//! lint` enforces statically; here it is checked dynamically on a real
//! figure pipeline.
//!
//! Kept in its own integration-test binary because `set_default_shards`
//! is a process-wide override.

use sim::experiments::fig4::fig4;
use sim::experiments::set_default_shards;
use sim::setup::{SimConfig, TestBed};

fn fig4_json(shards: usize) -> String {
    set_default_shards(shards);
    let cfg = SimConfig { nodes: 256, attrs: 12, values: 50, dimension: 6, ..SimConfig::default() };
    let bed = TestBed::new(cfg);
    let json = fig4(&bed, [1, 3], 16, 4).report().to_json();
    set_default_shards(0); // restore auto
    json
}

#[test]
fn fig4_report_is_bit_identical_across_runs_and_shard_counts() {
    let once = fig4_json(1);
    let again = fig4_json(1);
    assert_eq!(once, again, "same seed, same shard count must give identical JSON");

    let sharded = fig4_json(3);
    assert_eq!(once, sharded, "shard count is an execution detail and must not leak into results");
}

#[test]
fn cached_bed_fig4_is_byte_identical_to_fresh_build() {
    // The BedCache's determinism contract: a report produced from a
    // cached (shared) bed must be byte-for-byte the report a freshly
    // built bed produces — at every shard count.
    use sim::BedCache;
    let cfg = SimConfig { nodes: 256, attrs: 12, values: 50, dimension: 6, ..SimConfig::default() };
    for shards in [1usize, 3] {
        set_default_shards(shards);
        let cache = BedCache::new();
        let cached = cache.bed(cfg);
        let cached_json = fig4(&cached, [1, 3], 16, 4).report().to_json();
        let fresh_json = fig4(&TestBed::new(cfg), [1, 3], 16, 4).report().to_json();
        let reused_json = fig4(&cache.bed(cfg), [1, 3], 16, 4).report().to_json();
        set_default_shards(0);
        assert_eq!(cached_json, fresh_json, "cached vs fresh at shards={shards}");
        assert_eq!(cached_json, reused_json, "second cache hit at shards={shards}");
        assert_eq!(cache.builds(), 1, "one build serves every consumer");
    }
}

#[test]
fn cached_churn_prototypes_leave_fig6_byte_identical() {
    // fig6 clones cached prototypes instead of rebuilding per churn
    // rate; the clones must behave exactly like fresh builds, and a
    // second run off the same cache must reproduce the first.
    use sim::cache::BedCache;
    use sim::experiments::fig6::{fig6, fig6_cached, ChurnSetup};
    use sim::experiments::Metric;
    let cfg = SimConfig { nodes: 256, attrs: 12, values: 50, dimension: 6, ..SimConfig::default() };
    let setup = ChurnSetup { requests: 150, rates: vec![0.2, 0.5], ..ChurnSetup::quick() };
    let fresh = fig6(&cfg, &setup, Metric::Hops).report().to_json();
    let cache = BedCache::new();
    let cached = fig6_cached(&cfg, &setup, Metric::Hops, &cache).report().to_json();
    let again = fig6_cached(&cfg, &setup, Metric::Hops, &cache).report().to_json();
    assert_eq!(fresh, cached, "cached prototypes vs fresh builds");
    assert_eq!(cached, again, "prototype clones are reusable");
}

#[test]
fn graceful_ratio_one_leaves_fig6_byte_identical() {
    // The failure-enabled schedule generator draws zero extra RNG at
    // ratio 1.0, so threading `graceful_ratio` through the churn
    // pipeline must not perturb the paper's figures at the default.
    use sim::experiments::fig6::{fig6, ChurnSetup};
    use sim::experiments::Metric;
    let cfg = SimConfig { nodes: 256, attrs: 12, values: 50, dimension: 6, ..SimConfig::default() };
    let setup = ChurnSetup { requests: 200, rates: vec![0.2], ..ChurnSetup::quick() };
    assert_eq!(setup.graceful_ratio, 1.0, "default is graceful-only");
    let explicit = ChurnSetup { graceful_ratio: 1.0, ..setup.clone() };
    let default_json = fig6(&cfg, &setup, Metric::Hops).report().to_json();
    let explicit_json = fig6(&cfg, &explicit, Metric::Hops).report().to_json();
    assert_eq!(default_json, explicit_json);
}

#[test]
fn failure_schedule_generation_is_deterministic() {
    // Same seed, same ratio → the interleaved ChurnKind::Fail events
    // land at identical times in identical order.
    use grid_resource::ChurnSchedule;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let gen = || {
        let mut rng = SmallRng::seed_from_u64(0xF41D);
        ChurnSchedule::generate_with_failures(0.4, 100.0, 0.5, &mut rng)
    };
    let (a, b) = (gen(), gen());
    assert_eq!(a.events(), b.events());
    assert!(
        a.events().iter().any(|e| e.kind == grid_resource::ChurnKind::Fail),
        "ratio 0.5 over 100s must schedule some abrupt failures"
    );
}
