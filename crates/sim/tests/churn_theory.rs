//! Krishnamurthy closed-form validation (the durability sweep's theory
//! suite, run standalone): a bare Chord ring under windowed Poisson
//! churn must reproduce the master-equation predictions of
//! Krishnamurthy et al., "A statistical theory of Chord under churn"
//! (IPTPS'05), within the stated tolerance bands.
//!
//! The model: failures arrive Poisson at aggregate rate `λ` on `n` live
//! nodes; repair runs every `T` seconds and resets every list to ground
//! truth. A node alive at a window's start is dead at its end with
//! probability `p = 1 − exp(−λT/n)`, so sampled *just before* repair:
//!
//! | estimator                  | closed form | band        |
//! |----------------------------|-------------|-------------|
//! | first successor dead       | `p`         | 35% + 0.01  |
//! | dead successor entries     | `p`         | 35% + 0.01  |
//! | whole list of `s` dead     | `p^s`       | 50% + 0.015 |
//! | key owner dead (lookup     | `p`         | 35% + 0.015 |
//! | failure fraction)          |             |             |
//!
//! Bands are wide because the closed forms idealize (independent deaths,
//! fixed `n`, no joins) what the simulator draws exactly (uniform kills
//! from a drifting live set, joins interleaved); they are still tight
//! enough that an estimator off by 2x, or an exhaustion probability
//! scaling like `p` instead of `p^s`, fails. The exhaustion row uses a
//! wider relative band since a relative error `ε` on `p` compounds to
//! `s·ε` on `p^s`.

use sim::experiments::durability::{churn_theory_checks, TheorySetup};

#[test]
fn closed_forms_hold_across_seeds() {
    for seed in [0x1C99u64, 7, 42] {
        let checks = churn_theory_checks(&TheorySetup::default_with_seed(seed));
        assert_eq!(checks.len(), 8, "4 estimators x 2 rates");
        for c in &checks {
            assert!(
                c.ok,
                "seed {seed}: {} @ R={} simulated {} vs predicted {} (band {}% + {})",
                c.name,
                c.rate,
                c.simulated,
                c.predicted,
                c.tol_rel * 100.0,
                c.tol_abs
            );
        }
    }
}

#[test]
fn estimators_measure_something_at_heavy_churn() {
    // A check that never observes its event passes any band trivially;
    // the default setting must be aggressive enough that every estimator
    // has a strictly positive simulated fraction at the heavy rate.
    let checks = churn_theory_checks(&TheorySetup::default_with_seed(0x1C99));
    for c in checks.iter().filter(|c| c.rate > 1.0) {
        assert!(c.simulated > 0.0, "{} @ R={} observed nothing", c.name, c.rate);
        assert!(c.predicted > 0.0, "{} @ R={} predicts nothing", c.name, c.rate);
    }
}

#[test]
fn staleness_grows_with_the_churn_rate() {
    // Sanity on the family of predictions and simulations alike: both
    // the simulated and predicted stale-first fractions must be larger
    // at the heavy rate than at the light one.
    let checks = churn_theory_checks(&TheorySetup::default_with_seed(11));
    let stale: Vec<_> = checks.iter().filter(|c| c.name == "stale_first_successor").collect();
    assert_eq!(stale.len(), 2);
    let (light, heavy) = (stale[0], stale[1]);
    assert!(light.rate < heavy.rate);
    assert!(heavy.simulated > light.simulated, "{} !> {}", heavy.simulated, light.simulated);
    assert!(heavy.predicted > light.predicted);
}

#[test]
fn exhaustion_scales_like_p_to_the_s_not_p() {
    // The discriminating power of the p^s row: at the heavy rate the
    // exhausted fraction must sit well below the single-entry staleness
    // (p^2 << p), refuting any estimator that conflates the two.
    let checks = churn_theory_checks(&TheorySetup::default_with_seed(0x1C99));
    let heavy_stale = checks
        .iter()
        .find(|c| c.name == "stale_first_successor" && c.rate > 1.0)
        .expect("heavy stale-first check");
    let heavy_exh = checks
        .iter()
        .find(|c| c.name == "successor_list_exhausted" && c.rate > 1.0)
        .expect("heavy exhaustion check");
    assert!(
        heavy_exh.simulated < heavy_stale.simulated * 0.6,
        "exhaustion {} not well below staleness {}",
        heavy_exh.simulated,
        heavy_stale.simulated
    );
}
