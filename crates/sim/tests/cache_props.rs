//! Property tests for the route cache: for any batch shape, any fault
//! plan, and any churn interleaving, the cache-on and cache-off runs must
//! render byte-identical Report JSON at shard counts 1 and 3. The cache
//! is supposed to be semantically invisible — these tests make "invisible"
//! mean *every byte of the export*, not just the headline means.

use analysis::System;
use dht_core::{FaultPlan, RouteCache};
use grid_resource::QueryMix;
use proptest::prelude::*;
use sim::experiments::{
    query_batch, run_batch_cached_sharded, run_batch_faulty_cached_sharded,
    run_batch_faulty_sharded, run_batch_sharded, Metric,
};
use sim::report::Report;
use sim::setup::{SimConfig, TestBed};

fn cfg() -> SimConfig {
    SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() }
}

proptest! {
    // Each case builds a fresh two-system bed and runs eight batches
    // through it; a handful of cases already sweeps batch shape, fault
    // coins and churn interleavings.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cache-on vs cache-off Report JSON is byte-identical across a
    /// churn/fault interleaving, at shards 1 and 3, with the cached run
    /// keeping ONE persistent cache per system across the whole
    /// interleaving (epoch invalidation, not cache clearing, carries it
    /// over the churn boundary).
    #[test]
    fn report_json_is_byte_identical_cache_on_vs_off(
        origins in 1usize..8,
        per_origin in 1usize..4,
        arity in 1usize..4,
        seed in any::<u32>(),
        churn in prop::collection::vec((0usize..384, 0u8..3), 1..5),
        lossy in any::<bool>(),
    ) {
        let cfg = cfg();
        let mut bed = TestBed::with_systems(cfg, &[System::Lorm, System::Mercury]);
        let batch = query_batch(
            &bed.workload,
            cfg.nodes,
            origins,
            per_origin,
            arity,
            QueryMix::Range,
            seed as u64,
        );
        let plan = if lossy {
            FaultPlan::new(seed as u64 ^ 0xFA, 0.15, 0.05).unwrap()
        } else {
            FaultPlan::new(seed as u64 ^ 0xFB, 0.0, 0.0).unwrap()
        };
        let mut plain_rep = Report::new();
        let mut cached_rep = Report::new();
        let mut caches: Vec<RouteCache> =
            bed.systems.iter().map(|_| RouteCache::new()).collect();
        for phase in 0..2 {
            if phase == 1 {
                // the churn interleaving: mutate between the two batch
                // rounds, then repair and re-place reports
                for sys in bed.systems.iter_mut() {
                    for &(pick, kind) in &churn {
                        let phys = pick % cfg.nodes;
                        match kind {
                            0 => {
                                let _ = sys.leave_physical(phys);
                            }
                            1 => {
                                let _ = sys.fail_physical(phys);
                            }
                            _ => sys.stabilize(),
                        }
                    }
                    sys.stabilize();
                    sys.place_all(&bed.workload.reports);
                }
            }
            for (sys, cache) in bed.systems.iter().zip(caches.iter_mut()) {
                for shards in [1usize, 3] {
                    let label = format!("{} phase{phase} shards{shards}", sys.name());
                    let p = run_batch_sharded(sys.as_ref(), &batch, Metric::Visited, shards);
                    let c = run_batch_cached_sharded(
                        sys.as_ref(),
                        &batch,
                        Metric::Visited,
                        shards,
                        cache,
                    );
                    plain_rep.summary(label.clone(), p);
                    cached_rep.summary(label.clone(), c);
                    let pf = run_batch_faulty_sharded(
                        sys.as_ref(),
                        &batch,
                        Metric::Visited,
                        &plan,
                        shards,
                    );
                    let cf = run_batch_faulty_cached_sharded(
                        sys.as_ref(),
                        &batch,
                        Metric::Visited,
                        &plan,
                        shards,
                        cache,
                    );
                    plain_rep.summary(format!("{label} faulty"), pf);
                    cached_rep.summary(format!("{label} faulty"), cf);
                }
            }
        }
        prop_assert_eq!(plain_rep.to_json(), cached_rep.to_json());
    }
}
