//! Property tests for the bed snapshot/restore pair: after arbitrary
//! seeded churn, [`TestBed::restore`] must rewind every system to a
//! state *observationally identical* to a bed that was never churned —
//! same live population, same stored pieces, same query results. This
//! is the contract that lets the `BedCache` hand one stabilized build
//! to many consumers.

use grid_resource::QueryMix;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim::experiments::{query_batch, run_batch, Metric};
use sim::setup::{SimConfig, TestBed};
use std::sync::OnceLock;

fn cfg() -> SimConfig {
    SimConfig { nodes: 256, dimension: 6, attrs: 8, values: 20, ..SimConfig::default() }
}

/// One shared pristine bed: construction dominates the test budget, and
/// every case starts from a fresh deep clone of it.
fn pristine() -> &'static TestBed {
    static BED: OnceLock<TestBed> = OnceLock::new();
    BED.get_or_init(|| TestBed::new(cfg()))
}

/// Everything observable about a bed that churn can perturb: per-system
/// live population, stored piece count, and the exact query summaries of
/// a fixed batch.
fn observe(bed: &TestBed) -> Vec<(usize, usize, dht_core::Summary)> {
    let c = bed.cfg;
    let batch = query_batch(&bed.workload, c.nodes, 12, 2, 2, QueryMix::Range, c.seed ^ 0x5AFE);
    bed.systems
        .iter()
        .map(|s| {
            (s.num_physical(), s.total_pieces(), run_batch(s.as_ref(), &batch, Metric::Visited))
        })
        .collect()
}

/// Drive every system through `steps` random join/leave/fail events.
fn churn(bed: &mut TestBed, seed: u64, steps: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for sys in &mut bed.systems {
        for _ in 0..steps {
            match rng.gen_range(0..3u8) {
                0 => {
                    let _ = sys.join_physical(&mut rng);
                }
                kind => {
                    let p = rng.gen_range(0..sys.num_physical());
                    if sys.is_live(p) && sys.num_physical() > 2 {
                        let _ =
                            if kind == 1 { sys.leave_physical(p) } else { sys.fail_physical(p) };
                    }
                }
            }
        }
        sys.stabilize();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// snapshot → churn → restore is a no-op: the restored bed observes
    /// exactly what a never-churned bed observes, for any churn seed and
    /// length.
    #[test]
    fn snapshot_restore_erases_arbitrary_churn(seed in any::<u64>(), steps in 1usize..10) {
        let baseline = observe(pristine());
        let mut bed = pristine().clone();
        let snap = bed.snapshot();
        churn(&mut bed, seed, steps);
        bed.restore(snap);
        prop_assert_eq!(observe(&bed), baseline);
    }

    /// The churned clone never leaks into the pristine original: deep
    /// clones share no mutable state.
    #[test]
    fn churned_clone_leaves_original_untouched(seed in any::<u64>(), steps in 1usize..10) {
        let baseline = observe(pristine());
        let mut clone = pristine().clone();
        churn(&mut clone, seed, steps);
        prop_assert_eq!(observe(pristine()), baseline);
    }
}

#[test]
fn churn_actually_perturbs_observations() {
    // Guard against the properties passing vacuously: a churned bed must
    // observe *differently* before restore (joins alone change the live
    // population).
    let baseline = observe(pristine());
    let mut bed = pristine().clone();
    let snap = bed.snapshot();
    churn(&mut bed, 0xC0FFEE, 8);
    assert_ne!(observe(&bed), baseline, "churn must be visible before restore");
    bed.restore(snap);
    assert_eq!(observe(&bed), baseline);
}
