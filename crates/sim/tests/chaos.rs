//! Chaos soak: the seeded fault sweep on a 1024-node bed, all four
//! systems. Pins the three dynamic guarantees of the fault layer that
//! the unit tests only check on small beds:
//!
//! * success rates degrade **monotonically** in the loss rate at fixed
//!   failure fraction (the fault-coin firing sets are nested by rate);
//! * every query is accounted for: `failures + partial + successes ==
//!   total`, in every cell, for every system;
//! * a zero-fault [`FaultPlan`] leaves the exported `Report` JSON
//!   **byte-identical** to the fault-free path, at 1 and 3 shards.

use dht_core::FaultPlan;
use grid_resource::QueryMix;
use sim::experiments::chaos::{chaos, ChaosSetup};
use sim::experiments::{query_batch, run_batch_faulty_sharded, run_batch_sharded, Metric};
use sim::setup::{SimConfig, TestBed};
use sim::Report;
use std::sync::OnceLock;

/// One shared 1024-node bed: building the four systems dominates the
/// soak budget, and every test here replays batches against it.
fn bed() -> &'static TestBed {
    static BED: OnceLock<TestBed> = OnceLock::new();
    BED.get_or_init(|| {
        TestBed::new(SimConfig {
            nodes: 1024,
            dimension: 8,
            attrs: 20,
            values: 60,
            ..SimConfig::default()
        })
    })
}

#[test]
fn soak_sweep_degrades_monotonically_and_accounts_every_query() {
    let setup = ChaosSetup {
        loss_rates: vec![0.0, 0.05, 0.2],
        fail_fracs: vec![0.0, 0.1],
        origins: 50,
        per_origin: 4,
        arity: 3,
        ..ChaosSetup::default()
    };
    let c = chaos(bed(), setup.clone());
    let total = (setup.origins * setup.per_origin) as u64;
    assert_eq!(c.queries as u64, total);
    assert_eq!(c.systems.len(), 4, "all four systems swept");
    for sys in &c.systems {
        for &ff in &setup.fail_fracs {
            let mut prev = f64::INFINITY;
            for &loss in &setup.loss_rates {
                let cell = sys
                    .cells
                    .iter()
                    .find(|cl| cl.loss == loss && cl.fail_frac == ff)
                    .expect("swept cell");
                // every query lands in exactly one bucket
                assert_eq!(cell.total_queries(), total, "{} loss {loss}", sys.name);
                assert_eq!(
                    cell.summary.successes() + cell.summary.partial() + cell.summary.failures(),
                    total,
                    "{} loss {loss} fail {ff}",
                    sys.name
                );
                // monotone degradation in the loss rate at fixed failure
                // fraction — exact, not just statistical: the fault-coin
                // firing set at a higher rate is a superset
                let rate = cell.success_rate();
                assert!(
                    rate <= prev,
                    "{} success rate not monotone: {rate} after {prev} (loss {loss}, fail {ff})",
                    sys.name
                );
                prev = rate;
            }
        }
        // the zero-fault anchor cell is perfect
        let anchor = &sys.cells[0];
        assert_eq!((anchor.loss, anchor.fail_frac), (0.0, 0.0));
        assert_eq!(anchor.success_rate(), 1.0, "{}", sys.name);
        assert_eq!(anchor.summary.dropped_msgs(), 0, "{}", sys.name);
        // and the 20%-loss cells actually exercised the fault layer
        let lossy =
            sys.cells.iter().find(|cl| cl.loss == 0.2 && cl.fail_frac == 0.0).expect("lossy cell");
        assert!(lossy.summary.dropped_msgs() > 0, "{}", sys.name);
    }
}

#[test]
fn zero_fault_plan_report_json_is_byte_identical_to_fault_free() {
    let bed = bed();
    let batch = query_batch(&bed.workload, bed.cfg.nodes, 30, 3, 3, QueryMix::Range, 0xFA117);
    let plan = FaultPlan::none();
    for metric in [Metric::Hops, Metric::Visited] {
        let mut plain = Report::new();
        let mut faulty_seq = Report::new();
        let mut faulty_par = Report::new();
        for sys in &bed.systems {
            plain.summary(sys.name(), run_batch_sharded(sys.as_ref(), &batch, metric, 1));
            faulty_seq.summary(
                sys.name(),
                run_batch_faulty_sharded(sys.as_ref(), &batch, metric, &plan, 1),
            );
            faulty_par.summary(
                sys.name(),
                run_batch_faulty_sharded(sys.as_ref(), &batch, metric, &plan, 3),
            );
        }
        assert_eq!(plain.to_json(), faulty_seq.to_json(), "{metric:?} shards=1");
        assert_eq!(plain.to_json(), faulty_par.to_json(), "{metric:?} shards=3");
    }
}

#[test]
fn faulty_sweep_is_a_pure_function_of_the_seeds() {
    // Same bed, same batch, same plan — the degraded summaries must be
    // bit-identical across repeated runs (the chaos-v1 export contract).
    let bed = bed();
    let batch = query_batch(&bed.workload, bed.cfg.nodes, 20, 3, 3, QueryMix::Range, 0x50AC);
    let plan = FaultPlan::new(0xC4A0_5EED, 0.2, 0.1).unwrap();
    for sys in &bed.systems {
        let a = run_batch_faulty_sharded(sys.as_ref(), &batch, Metric::Hops, &plan, 3);
        let b = run_batch_faulty_sharded(sys.as_ref(), &batch, Metric::Hops, &plan, 3);
        assert_eq!(a.count(), b.count(), "{}", sys.name());
        assert_eq!(a.failures(), b.failures(), "{}", sys.name());
        assert_eq!(a.partial(), b.partial(), "{}", sys.name());
        assert_eq!(a.retries(), b.retries(), "{}", sys.name());
        assert_eq!(a.dropped_msgs(), b.dropped_msgs(), "{}", sys.name());
        assert_eq!(a.total().to_bits(), b.total().to_bits(), "{}", sys.name());
    }
}

#[test]
fn churn_with_interleaved_ungraceful_failures_stays_sound() {
    // ChurnKind::Fail events interleaved mid-schedule (half the
    // departures abrupt): the figure pipeline must survive the stale
    // routing state — cluster collapses, dead successor-list entries —
    // without panicking, and stay deterministic.
    use sim::experiments::fig6::{fig6, ChurnSetup};
    let cfg = SimConfig {
        nodes: 384,
        dimension: 6,
        attrs: 10,
        values: 30,
        seed: 0xFA11,
        ..SimConfig::default()
    };
    let setup =
        ChurnSetup { graceful_ratio: 0.5, requests: 200, rates: vec![0.4], ..ChurnSetup::quick() };
    let once = fig6(&cfg, &setup, Metric::Hops).report().to_json();
    let again = fig6(&cfg, &setup, Metric::Hops).report().to_json();
    assert_eq!(once, again, "ungraceful churn must stay deterministic");
    for name in ["LORM", "Mercury", "SWORD", "MAAN"] {
        assert!(once.contains(name), "{name} missing from report: {once}");
    }
}

#[test]
fn soak_data_loss_is_monotone_in_replication_degree() {
    // The durability sweep on the soak-scale 1024-node configuration:
    // at every churn rate and for every system, the number of surviving
    // piece identities must be non-decreasing in the replication degree
    // k. The guarantee is pathwise, not statistical — every degree
    // replays the identical churn sample and both placement rules
    // (successor-list and leaf-set/cluster) are prefix rules in k — so
    // the assertion is exact, on integer counts.
    use sim::experiments::durability::{durability_cached, DurabilitySetup};
    use sim::BedCache;
    let cfg =
        SimConfig { nodes: 1024, dimension: 8, attrs: 20, values: 60, ..SimConfig::default() };
    let setup = DurabilitySetup {
        rates: vec![0.2, 0.6],
        degrees: vec![1, 2, 3],
        duration: 100.0,
        graceful_ratio: 0.0, // every departure abrupt: worst case for durability
        probe_origins: 10,
        probe_per_origin: 2,
        ..DurabilitySetup::quick()
    };
    let d = durability_cached(&cfg, &setup, &BedCache::new());
    assert_eq!(d.rows.len(), 6, "2 rates x 3 degrees");
    let violations = d.k_monotonicity_violations();
    assert!(violations.is_empty(), "{violations:?}");
    // The soak must measure something: fully abrupt churn at the heavy
    // rate has to lose pieces somewhere at k = 1...
    let heavy_k1 = d.rows.iter().find(|r| r.rate == 0.6 && r.k == 1).expect("heavy-churn k=1 row");
    assert!(
        heavy_k1.cells.iter().any(|c| c.loss > 0.0),
        "no system lost anything at k=1 under abrupt churn"
    );
    // ...and replication has to repair: every system moves pieces at k=3.
    let heavy_k3 = d.rows.iter().find(|r| r.rate == 0.6 && r.k == 3).expect("heavy-churn k=3 row");
    for (i, c) in heavy_k3.cells.iter().enumerate() {
        assert!(c.repair_transfers() > 0, "system {i} repaired nothing at k=3");
        assert!(c.repair_rounds > 0, "system {i} ran no repair rounds");
    }
}
