//! Property tests for sharded batch execution (observation equivalence
//! with the sequential path for *any* shard count) and for the
//! `Summary::merge` reduction it relies on (associativity, identity,
//! failure accounting).

use dht_core::Summary;
use proptest::prelude::*;
use sim::experiments::{run_batch_sharded, Metric};
use sim::setup::{SimConfig, TestBed};
use std::sync::OnceLock;

/// One shared small bed: building the four systems dominates the test
/// budget, and the properties only vary the batch and shard count.
fn bed() -> &'static TestBed {
    static BED: OnceLock<TestBed> = OnceLock::new();
    BED.get_or_init(|| {
        TestBed::new(SimConfig {
            nodes: 384,
            dimension: 6,
            attrs: 10,
            values: 30,
            ..SimConfig::default()
        })
    })
}

/// Build a Summary from observations plus a failure count.
fn summarize(obs: &[f64], failures: u64) -> Summary {
    let mut s = Summary::new();
    for &x in obs {
        s.record(x);
    }
    for _ in 0..failures {
        s.record_failure();
    }
    s
}

/// The stats the sharding contract promises bit-identical: count, total,
/// mean, min, max, and the failure count.
fn exact_stats(s: &Summary) -> (u64, u64, u64, u64, u64, u64) {
    (
        s.count(),
        s.failures(),
        s.total().to_bits(),
        s.mean().to_bits(),
        s.min().to_bits(),
        s.max().to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any batch shape and any shard count, the sharded run observes
    /// exactly what the sequential run observes, on every system.
    fn sharded_run_batch_equals_sequential(
        origins in 1usize..10,
        per_origin in 1usize..4,
        arity in 1usize..4,
        shards in 1usize..48,
        seed in any::<u32>(),
    ) {
        let bed = bed();
        let batch = sim::experiments::query_batch(
            &bed.workload,
            bed.cfg.nodes,
            origins,
            per_origin,
            arity,
            grid_resource::QueryMix::Range,
            seed as u64,
        );
        for sys in &bed.systems {
            let seq = run_batch_sharded(sys.as_ref(), &batch, Metric::Visited, 1);
            let par = run_batch_sharded(sys.as_ref(), &batch, Metric::Visited, shards);
            prop_assert_eq!(
                exact_stats(&par),
                exact_stats(&seq),
                "{} diverged at {} shards over {} queries",
                sys.name(),
                shards,
                batch.len()
            );
        }
    }

    /// Summary::merge is associative on the exact stats: reducing shard
    /// summaries in any grouping gives the same result. Query metrics are
    /// integer-valued (hops, visited counts), where f64 partial sums are
    /// exact — truncate the generated observations to match.
    fn summary_merge_is_associative(
        a in prop::collection::vec(0.0f64..1000.0, 0..20),
        b in prop::collection::vec(0.0f64..1000.0, 0..20),
        c in prop::collection::vec(0.0f64..1000.0, 0..20),
        fa in 0u64..3,
        fb in 0u64..3,
        fc in 0u64..3,
    ) {
        let trunc = |v: Vec<f64>| v.into_iter().map(f64::trunc).collect::<Vec<_>>();
        let (a, b, c) = (trunc(a), trunc(b), trunc(c));
        let (sa, sb, sc) = (summarize(&a, fa), summarize(&b, fb), summarize(&c, fc));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(exact_stats(&left), exact_stats(&right));
        // variance is merged with a parallel-Welford update: not exactly
        // associative in floating point, but it must agree closely
        if left.count() >= 2 {
            let (l, r) = (left.std_dev(), right.std_dev());
            prop_assert!((l - r).abs() <= 1e-9 * (1.0 + l.abs()), "std {l} vs {r}");
        }
    }

    /// Splitting any observation sequence into contiguous shards and
    /// merging in order reconstructs the unsharded summary exactly —
    /// the scalar model of `run_batch_sharded`.
    fn contiguous_shard_merge_reconstructs_summary(
        obs in prop::collection::vec(0.0f64..4096.0, 1..60),
        chunk in 1usize..20,
        failures in 0u64..4,
    ) {
        // map observations to integers, as query metrics are
        let obs: Vec<f64> = obs.into_iter().map(f64::trunc).collect();
        let mut whole = summarize(&obs, 0);
        for _ in 0..failures {
            whole.record_failure();
        }
        let mut merged = Summary::new();
        for shard in obs.chunks(chunk) {
            merged.merge(&summarize(shard, 0));
        }
        for _ in 0..failures {
            merged.record_failure();
        }
        prop_assert_eq!(exact_stats(&merged), exact_stats(&whole));
    }

    /// The empty summary is a two-sided identity for merge, and failures
    /// survive merging with empty summaries in either direction.
    fn empty_summary_is_merge_identity(
        obs in prop::collection::vec(0.0f64..100.0, 0..20),
        failures in 0u64..3,
    ) {
        let s = summarize(&obs, failures);
        let mut left = Summary::new();
        left.merge(&s);
        let mut right = s.clone();
        right.merge(&Summary::new());
        prop_assert_eq!(exact_stats(&left), exact_stats(&s));
        prop_assert_eq!(exact_stats(&right), exact_stats(&s));
    }
}
