//! Determinism contract of the durability layer:
//!
//! * the durability `Report` JSON is **byte-identical** across probe
//!   shard counts (1 vs 3) for any (seed, rate, degree) — replication
//!   and repair live entirely outside the sharded reduction;
//! * `set_replication(1)` is a strict no-op: a Figure 6 churn cell run
//!   on a system that passed through `set_replication(1)` reproduces the
//!   unreplicated cell's report **bytes** exactly;
//! * replaying the identical churn/fault interleaving twice produces
//!   byte-identical durability JSON (no hidden global state).

use grid_resource::{ChurnSchedule, Workload};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sim::experiments::durability::{run_durability_one, DurabilitySetup};
use sim::experiments::fig6::{run_churn_one, ChurnSetup};
use sim::experiments::Metric;
use sim::report::summary_json;
use sim::setup::{build_system, SimConfig};
use sim::{BedCache, Report};
use std::sync::OnceLock;

fn small_cfg() -> SimConfig {
    SimConfig { nodes: 384, dimension: 6, attrs: 10, values: 30, ..SimConfig::default() }
}

/// One shared cache: the four churn prototypes dominate the budget and
/// every property replays deep clones of them.
fn cache() -> &'static BedCache {
    static CACHE: OnceLock<BedCache> = OnceLock::new();
    CACHE.get_or_init(BedCache::new)
}

/// Render one durability cell as a `Report` JSON string — the byte-level
/// artifact the determinism contract covers.
fn cell_json(
    system: analysis::System,
    setup: &DurabilitySetup,
    rate: f64,
    k: usize,
    seed: u64,
) -> String {
    let cfg = SimConfig { seed, ..small_cfg() };
    let wl_seed = seed ^ 0xD7;
    let workload = cache().churn_workload(&cfg, wl_seed);
    let mut sched_rng = SmallRng::seed_from_u64(seed ^ 0xDB ^ (rate * 1000.0) as u64);
    let schedule = ChurnSchedule::generate_with_failures(
        rate,
        setup.duration,
        setup.graceful_ratio,
        &mut sched_rng,
    );
    let mut sys = cache().churn_proto(system, &cfg, wl_seed);
    let cell = run_durability_one(sys.as_mut(), &workload, &schedule, setup, k, seed ^ 0xD6);
    let mut rep = Report::new();
    rep.summary(system.name(), cell.probe.clone());
    rep.note(format!(
        "initial={} surviving={} loss={} events={} rounds={} copies={} promotions={} dropped={}",
        cell.initial,
        cell.surviving,
        cell.loss,
        cell.events,
        cell.repair_rounds,
        cell.repair_copies,
        cell.repair_promotions,
        cell.repair_dropped,
    ));
    rep.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Byte-identical durability JSON at probe shard counts 1 and 3, and
    /// across two replays of the same interleaving, for any seed, churn
    /// rate, and replication degree, on the systems with both placement
    /// rules (successor-list and leaf-set/cluster).
    #[test]
    fn durability_json_is_byte_identical_across_shards(
        seed in 0u64..1000,
        rate_pct in 1u32..8,
        k in 1usize..4,
    ) {
        let rate = rate_pct as f64 / 10.0;
        let base = DurabilitySetup {
            duration: 100.0,
            graceful_ratio: 0.5,
            probe_origins: 6,
            probe_per_origin: 2,
            ..DurabilitySetup::quick()
        };
        for system in [analysis::System::Sword, analysis::System::Lorm] {
            let one = cell_json(system, &DurabilitySetup { shards: 1, ..base.clone() }, rate, k, seed);
            let three = cell_json(system, &DurabilitySetup { shards: 3, ..base.clone() }, rate, k, seed);
            prop_assert_eq!(&one, &three, "shard count changed durability bytes");
            let replay = cell_json(system, &DurabilitySetup { shards: 3, ..base.clone() }, rate, k, seed);
            prop_assert_eq!(&three, &replay, "replay changed durability bytes");
        }
    }
}

#[test]
fn set_replication_one_reproduces_unreplicated_churn_bytes() {
    // The k = 1 guard must make replication invisible: the same churn
    // cell, on a system that passed through set_replication(1), renders
    // the exact same summary bytes as one that never heard of
    // replication.
    let cfg = small_cfg();
    let mut wl_rng = SmallRng::seed_from_u64(31);
    let workload = Workload::generate(cfg.workload_config(), &mut wl_rng).unwrap();
    let setup = ChurnSetup { requests: 150, graceful_ratio: 0.5, ..ChurnSetup::quick() };
    let mut sched_rng = SmallRng::seed_from_u64(32);
    let schedule = ChurnSchedule::generate_with_failures(0.4, 15.0, 0.5, &mut sched_rng);
    for system in analysis::System::ALL {
        let mut pristine = build_system(system, &workload, &cfg);
        let baseline =
            run_churn_one(pristine.as_mut(), &workload, &schedule, &setup, Metric::Visited, 33);
        let mut wired = build_system(system, &workload, &cfg);
        wired.set_replication(1);
        assert_eq!(wired.replication(), 1);
        let cell = run_churn_one(wired.as_mut(), &workload, &schedule, &setup, Metric::Visited, 33);
        assert_eq!(
            summary_json(system.name(), &cell.stats),
            summary_json(system.name(), &baseline.stats),
            "{}: set_replication(1) changed churn bytes",
            system.name()
        );
        assert_eq!(cell, baseline, "{}", system.name());
        assert_eq!(wired.repair_stats().rounds(), 0, "{}: k=1 ran repair", system.name());
    }
}
