//! Bulk-construction equivalence: a bed assembled through the O(n log n)
//! sorted bulk constructors must be *observationally identical* to one
//! assembled through the per-node ordered-insert reference path — pinned
//! end-to-end by comparing the bytes of a full figure report produced
//! from each. This is the dynamic contract backing the `BuildMode`
//! documentation (and the reason the bed cache keys on the config alone).

use dht_core::BuildMode;
use proptest::prelude::*;
use sim::experiments::fig5::fig5;
use sim::setup::{SimConfig, TestBed};

/// Render the same fig5 report from a bulk-built and an incrementally
/// built bed and return both JSON strings.
fn fig5_both_modes(cfg: SimConfig) -> (String, String) {
    let render = |mode: BuildMode| {
        let bed = TestBed::new_with_mode(cfg, mode);
        fig5(&bed, [1, 3], 12).report().to_json()
    };
    (render(BuildMode::Bulk), render(BuildMode::Incremental))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seed, small bed: bulk and incremental construction produce
    /// byte-identical reports.
    fn bulk_bed_equals_incremental_bed_any_seed(seed in 0u64..1_000_000) {
        let cfg = SimConfig {
            nodes: 256,
            dimension: 6,
            attrs: 8,
            values: 20,
            seed,
            ..SimConfig::default()
        };
        let (bulk, incremental) = fig5_both_modes(cfg);
        prop_assert_eq!(bulk, incremental);
    }
}

#[test]
fn bulk_bed_equals_incremental_bed_1k() {
    let cfg = SimConfig { nodes: 1024, dimension: 8, attrs: 6, values: 25, ..SimConfig::default() };
    let (bulk, incremental) = fig5_both_modes(cfg);
    assert_eq!(bulk, incremental);
}

#[test]
fn bulk_bed_equals_incremental_bed_4k() {
    // d = 9 gives 4608 Cycloid slots; 6 attributes keep Mercury at six
    // 4096-node hubs, which the incremental reference path can still
    // assemble in test time.
    let cfg = SimConfig { nodes: 4096, dimension: 9, attrs: 6, values: 25, ..SimConfig::default() };
    let (bulk, incremental) = fig5_both_modes(cfg);
    assert_eq!(bulk, incremental);
}

/// Soak: a 100k-node bed builds through the bulk path and answers
/// queries. Ignored by default (minutes of work in debug builds); run
/// explicitly with `cargo test -p sim --test bulk_equivalence -- --ignored`.
#[test]
#[ignore = "100k-node soak; run explicitly"]
fn soak_100k_bed_builds_and_answers() {
    let cfg = SimConfig {
        nodes: 100_000,
        dimension: 13, // 13·2^13 = 106496 slots ≥ 100k
        attrs: 2,
        values: 50,
        ..SimConfig::default()
    };
    let bed = TestBed::new(cfg);
    let json = fig5(&bed, [1, 2], 8).report().to_json();
    assert!(json.contains("\"tables\""), "report must render");
    for sys in &bed.systems {
        assert!(sys.total_pieces() > 0, "{} placed no reports", sys.name());
        assert_eq!(sys.num_physical(), 100_000);
    }
}
