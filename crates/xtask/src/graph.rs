//! The workspace call graph and reachability from simulation entry points.
//!
//! Built on the item trees of every scanned file, the graph resolves
//! calls by name within the workspace:
//!
//! - `foo(...)` and `path::foo(...)` resolve to every workspace function
//!   named `foo` (free functions and methods alike);
//! - `Type::method(...)` narrows to the impls of `Type` when `Type` is a
//!   workspace type, falling back to the name-wide set otherwise;
//! - `recv.method(...)` narrows through a per-function local type
//!   environment (`recv: Type` parameters, `let recv: Type` bindings,
//!   `let recv = Type::ctor(...)`, and `self`); trait-object and generic
//!   receivers fall back to every function of that name, which unions the
//!   trait's impls and its default methods.
//!
//! Unresolvable calls therefore *over*-approximate: code can be reported
//! reachable when it is not, but never the reverse (within workspace
//! name resolution). `#[cfg(test)]` functions are excluded as both
//! sources and targets. Reachability is a BFS from the entry points in
//! [`ENTRY_POINTS`], keeping parent pointers so every finding can carry
//! an entry-point → call-path → site trace.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{is_keyword, ItemTree};
use crate::lexer::{Tok, TokKind};
use crate::lints::FileCtx;

/// The functions the reproducibility contract is anchored to: the sharded
/// query engines, the chaos sweep, the scale sweep, and the durability
/// sweep. A sim-purity violation matters exactly when it can flow into
/// these.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("sim", "run_batch_sharded"),
    ("sim", "run_batch_faulty_sharded"),
    ("sim", "run_batch_cached_sharded"),
    ("sim", "run_batch_faulty_cached_sharded"),
    ("sim", "run_batch_planned_sharded"),
    ("sim", "run_batch_planned_cached_sharded"),
    ("bench", "run_chaos"),
    ("bench", "run_chaos_cached"),
    ("bench", "run_scale"),
    ("bench", "run_scale_at"),
    ("bench", "run_durability"),
];

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Crate directory (`sim`, `chord`, ...).
    pub crate_dir: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Impl/trait-qualified display name (`Chord::route_from`).
    pub qualified: String,
    /// Line span of the item.
    pub line: u32,
    /// Last line of the item.
    pub end_line: u32,
}

impl FnNode {
    /// Fully-qualified display form used in traces: `crate::Type::fn`.
    pub fn display(&self) -> String {
        format!("{}::{}", self.crate_dir, self.qualified)
    }
}

/// The assembled graph plus its reachability analysis.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All indexed (non-test) functions.
    pub nodes: Vec<FnNode>,
    /// Adjacency: callee ids per node.
    edges: Vec<Vec<usize>>,
    /// Total directed edge count.
    pub edge_count: usize,
    /// BFS result: reachable from any entry point.
    reachable: Vec<bool>,
    /// BFS parent pointers (toward an entry point), for traces.
    parent: Vec<Option<usize>>,
    /// Node ids of the resolved entry points.
    pub entries: Vec<usize>,
    /// Per-file line index: `file -> [(start, end, node)]`.
    span_index: BTreeMap<String, Vec<(u32, u32, usize)>>,
}

impl CallGraph {
    /// Number of functions reachable from the entry points.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }

    /// Innermost indexed function containing `line` of `file`, if any.
    pub fn enclosing_fn(&self, file: &str, line: u32) -> Option<usize> {
        let spans = self.span_index.get(file)?;
        spans
            .iter()
            .filter(|&&(s, e, _)| s <= line && line <= e)
            .min_by_key(|&&(s, e, _)| e - s)
            .map(|&(_, _, id)| id)
    }

    /// Is node `id` reachable from an entry point?
    pub fn is_reachable(&self, id: usize) -> bool {
        self.reachable[id]
    }

    /// The resolved callees of node `id`.
    pub fn callees(&self, id: usize) -> &[usize] {
        &self.edges[id]
    }

    /// Entry-point → ... → `id` call path (display names), present only
    /// for reachable nodes.
    pub fn trace(&self, id: usize) -> Option<Vec<String>> {
        if !self.reachable[id] {
            return None;
        }
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path.into_iter().map(|n| self.nodes[n].display()).collect())
    }

    /// Build the graph over `(ctx, toks, items)` triples — one per scanned
    /// source file, in scan order.
    pub fn build(files: &[(&FileCtx, &[Tok], &ItemTree)]) -> CallGraph {
        let mut g = CallGraph::default();
        // (file index, fn index) per node, for the edge pass.
        let mut origins: Vec<(usize, usize)> = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut workspace_types: BTreeSet<&str> = BTreeSet::new();

        for (fi, (ctx, _, items)) in files.iter().enumerate() {
            for ty in &items.types {
                workspace_types.insert(ty.as_str());
            }
            for (ii, f) in items.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let id = g.nodes.len();
                g.nodes.push(FnNode {
                    crate_dir: ctx.crate_dir.clone(),
                    file: ctx.rel_path.clone(),
                    name: f.name.clone(),
                    qualified: f.qualified(),
                    line: f.line,
                    end_line: f.end_line,
                });
                origins.push((fi, ii));
                by_name.entry(&f.name).or_default().push(id);
                if let Some(ty) = &f.self_type {
                    by_type_method.entry((ty, &f.name)).or_default().push(id);
                }
                if let Some(tr) = &f.trait_name {
                    by_type_method.entry((tr, &f.name)).or_default().push(id);
                }
                g.span_index
                    .entry(ctx.rel_path.clone())
                    .or_default()
                    .push((f.line, f.end_line, id));
            }
        }

        // Edge extraction per node.
        g.edges = vec![Vec::new(); g.nodes.len()];
        for (id, &(fi, ii)) in origins.iter().enumerate() {
            let (_, toks, items) = files[fi];
            let f = &items.fns[ii];
            let Some((body_start, body_end)) = f.body else { continue };
            let env = local_types(toks, f.sig_start, body_end, f.self_type.as_deref());
            let mut targets: BTreeSet<usize> = BTreeSet::new();
            // Scan the body only: the signature holds no calls, and the
            // fn's own name token would otherwise edge to same-named
            // siblings across the workspace.
            for i in body_start..body_end.min(toks.len()) {
                let t = &toks[i];
                if t.kind != TokKind::Ident
                    || is_keyword(&t.text)
                    || i + 1 >= toks.len()
                    || !toks[i + 1].is_punct('(')
                {
                    continue;
                }
                let name = t.text.as_str();
                let after_dot = i >= 1 && toks[i - 1].is_punct('.');
                let after_path = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
                let resolved: Option<&Vec<usize>> = if after_dot {
                    // `recv.name(...)` — narrow via the local type env.
                    let recv_ty = if i >= 2 && toks[i - 2].is_ident("self") {
                        f.self_type.as_deref()
                    } else if i >= 2 && toks[i - 2].kind == TokKind::Ident {
                        env.get(toks[i - 2].text.as_str()).map(|s| s.as_str())
                    } else {
                        None
                    };
                    recv_ty.and_then(|ty| by_type_method.get(&(ty, name)))
                } else if after_path {
                    // `Base::name(...)` — narrow when `Base` is a type.
                    let base = if i >= 3 && toks[i - 3].kind == TokKind::Ident {
                        Some(toks[i - 3].text.as_str())
                    } else {
                        None
                    };
                    match base {
                        Some("Self") => {
                            f.self_type.as_deref().and_then(|ty| by_type_method.get(&(ty, name)))
                        }
                        Some(b) if workspace_types.contains(b) => by_type_method.get(&(b, name)),
                        _ => None,
                    }
                } else {
                    None
                };
                match resolved {
                    Some(ids) if !ids.is_empty() => targets.extend(ids.iter().copied()),
                    // Unknown receiver/base (or free call): every function
                    // of that name — the over-approximation that makes
                    // trait dispatch and generics safe.
                    _ => {
                        if let Some(ids) = by_name.get(name) {
                            targets.extend(ids.iter().copied());
                        }
                    }
                }
            }
            targets.remove(&id); // self-recursion adds nothing to reachability
            g.edge_count += targets.len();
            g.edges[id] = targets.into_iter().collect();
        }

        // Entry points and BFS.
        for (crate_dir, name) in ENTRY_POINTS {
            for (id, n) in g.nodes.iter().enumerate() {
                if n.crate_dir == *crate_dir && n.name == *name && n.qualified == *name {
                    g.entries.push(id);
                }
            }
        }
        g.reachable = vec![false; g.nodes.len()];
        g.parent = vec![None; g.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = g.entries.iter().copied().collect();
        for &e in &g.entries {
            g.reachable[e] = true;
        }
        while let Some(u) = queue.pop_front() {
            for i in 0..g.edges[u].len() {
                let v = g.edges[u][i];
                if !g.reachable[v] {
                    g.reachable[v] = true;
                    g.parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        g
    }
}

/// Local name → type bindings inside one function: typed parameters and
/// lets (`x: Type`), and constructor lets (`let x = Type::ctor(...)`).
/// The last binding for a name wins — flow-insensitive but adequate for
/// receiver narrowing.
fn local_types(
    toks: &[Tok],
    sig_start: usize,
    body_end: usize,
    _self_type: Option<&str>,
) -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    let end = body_end.min(toks.len());
    for i in sig_start..end {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `let [mut] name = Type::...` — checked before the keyword
        // guard, which would otherwise skip `let` itself.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < end && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 4 < end
                && toks[j].kind == TokKind::Ident
                && toks[j + 1].is_punct('=')
                && toks[j + 2].kind == TokKind::Ident
                && toks[j + 2].text.chars().next().is_some_and(|c| c.is_uppercase())
                && toks[j + 3].is_punct(':')
                && toks[j + 4].is_punct(':')
            {
                env.insert(toks[j].text.clone(), toks[j + 2].text.clone());
            }
            continue;
        }
        if is_keyword(&toks[i].text) {
            continue;
        }
        // `name : [&]* [mut|dyn|impl]* Type`
        if i + 2 < end && toks[i + 1].is_punct(':') && !toks[i + 2].is_punct(':') {
            let mut j = i + 2;
            while j < end
                && (toks[j].is_punct('&')
                    || toks[j].kind == TokKind::Lifetime
                    || toks[j].is_ident("mut")
                    || toks[j].is_ident("dyn")
                    || toks[j].is_ident("impl"))
            {
                j += 1;
            }
            if j < end && toks[j].kind == TokKind::Ident && !is_keyword(&toks[j].text) {
                env.insert(toks[i].text.clone(), toks[j].text.clone());
            }
            continue;
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;
    use crate::lints::FileClass;

    fn ctx(crate_dir: &str, rel: &str) -> FileCtx {
        FileCtx { crate_dir: crate_dir.into(), class: FileClass::Lib, rel_path: rel.into() }
    }

    fn build(files: &[(&FileCtx, &str)]) -> (CallGraph, Vec<(crate::lexer::Lexed, ItemTree)>) {
        let parsed: Vec<_> = files
            .iter()
            .map(|(_, src)| {
                let l = lex(src);
                let items = parse_items(&l.toks);
                (l, items)
            })
            .collect();
        let triples: Vec<_> = files
            .iter()
            .zip(parsed.iter())
            .map(|((c, _), (l, it))| (*c, l.toks.as_slice(), it))
            .collect();
        (CallGraph::build(&triples), parsed)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes.iter().position(|n| n.name == name).unwrap()
    }

    #[test]
    fn free_fn_calls_resolve_cross_crate() {
        let a = ctx("sim", "crates/sim/src/lib.rs");
        let b = ctx("chord", "crates/chord/src/lib.rs");
        let (g, _) = build(&[
            (&a, "pub fn run_batch_sharded() { helper(); }"),
            (&b, "pub fn helper() { leaf(); } pub fn leaf() {} pub fn orphan() {}"),
        ]);
        assert!(g.is_reachable(node(&g, "helper")));
        assert!(g.is_reachable(node(&g, "leaf")));
        assert!(!g.is_reachable(node(&g, "orphan")));
        let trace = g.trace(node(&g, "leaf")).unwrap();
        assert_eq!(trace, ["sim::run_batch_sharded", "chord::helper", "chord::leaf"]);
    }

    #[test]
    fn typed_receivers_narrow_method_edges() {
        let a = ctx("sim", "crates/sim/src/lib.rs");
        let b = ctx("chord", "crates/chord/src/lib.rs");
        let (g, _) = build(&[
            (&a, "pub fn run_batch_sharded(net: &Chord) { net.step(); }"),
            (
                &b,
                "pub struct Chord; pub struct Other;\n\
                 impl Chord { pub fn step(&self) {} }\n\
                 impl Other { pub fn step(&self) {} }",
            ),
        ]);
        let chord_step = g.nodes.iter().position(|n| n.qualified == "Chord::step").unwrap();
        let other_step = g.nodes.iter().position(|n| n.qualified == "Other::step").unwrap();
        assert!(g.is_reachable(chord_step));
        assert!(!g.is_reachable(other_step), "typed receiver must not union all methods");
    }

    #[test]
    fn trait_object_receivers_union_impls_and_defaults() {
        let a = ctx("sim", "crates/sim/src/lib.rs");
        let b = ctx("dht-core", "crates/dht-core/src/lib.rs");
        let (g, _) = build(&[
            (&a, "pub fn run_batch_sharded(o: &dyn Overlay) { o.route_stats(); }"),
            (
                &b,
                "pub trait Overlay {\n\
                     fn route(&self);\n\
                     fn route_stats(&self) { self.route(); }\n\
                 }\n\
                 pub struct Chord;\n\
                 impl Overlay for Chord { fn route(&self) {} fn route_stats(&self) {} }",
            ),
        ]);
        let default_m = g.nodes.iter().position(|n| n.qualified == "Overlay::route_stats").unwrap();
        let impl_m = g.nodes.iter().position(|n| n.qualified == "Chord::route_stats").unwrap();
        assert!(g.is_reachable(default_m), "trait default method reachable via dyn receiver");
        assert!(g.is_reachable(impl_m), "impl override reachable via dyn receiver");
        assert!(g.is_reachable(node(&g, "route")), "default body reaches trait siblings");
    }

    #[test]
    fn cfg_test_fns_are_not_indexed() {
        let a = ctx("sim", "crates/sim/src/lib.rs");
        let (g, _) = build(&[(
            &a,
            "pub fn run_batch_sharded() { helper(); }\n\
             pub fn helper() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { super::run_batch_sharded(); }\n}",
        )]);
        assert_eq!(
            g.nodes.iter().filter(|n| n.name == "helper").count(),
            1,
            "test double must not be indexed: {:?}",
            g.nodes
        );
    }

    #[test]
    fn enclosing_fn_lookup_uses_innermost_span() {
        let a = ctx("sim", "crates/sim/src/lib.rs");
        let (g, _) = build(&[(
            &a,
            "pub fn run_batch_sharded() {\n    helper();\n}\npub fn helper() {\n    leaf();\n}\npub fn leaf() {}\n",
        )]);
        let id = g.enclosing_fn("crates/sim/src/lib.rs", 5).unwrap();
        assert_eq!(g.nodes[id].name, "helper");
        let id = g.enclosing_fn("crates/sim/src/lib.rs", 7).unwrap();
        assert_eq!(g.nodes[id].name, "leaf");
        assert!(g.enclosing_fn("crates/sim/src/lib.rs", 8).is_none());
    }

    #[test]
    fn ctor_lets_bind_receiver_types() {
        let a = ctx("sim", "crates/sim/src/lib.rs");
        let b = ctx("chord", "crates/chord/src/lib.rs");
        let (g, _) = build(&[
            (&a, "pub fn run_batch_sharded() { let net = Chord::build(); net.step(); }"),
            (
                &b,
                "pub struct Chord; pub struct Other;\n\
                 impl Chord { pub fn build() -> Self { Chord } pub fn step(&self) {} }\n\
                 impl Other { pub fn step(&self) {} }",
            ),
        ]);
        assert!(g.is_reachable(g.nodes.iter().position(|n| n.qualified == "Chord::step").unwrap()));
        assert!(!g.is_reachable(g.nodes.iter().position(|n| n.qualified == "Other::step").unwrap()));
    }
}
