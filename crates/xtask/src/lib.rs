//! Workspace determinism & soundness analyzer.
//!
//! `cargo xtask lint` walks every non-vendored `.rs` file in the
//! workspace through a string/comment-aware lexer and a registry of
//! named lints that enforce the simulator's reproducibility contract.
//! See `docs/LINTS.md` for the catalogue and the suppression syntax.

pub mod lexer;
pub mod lints;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lints::{Diagnostic, FileClass, FileCtx};

/// The aggregated outcome of linting the workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, lint).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `lint:allow` directives that suppressed a finding.
    pub suppressions_used: usize,
}

impl LintReport {
    /// True when no lint fired.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never descended into, by name.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Workspace-relative path prefixes excluded from analysis: vendored
/// stand-in crates and the lint engine's own violating fixtures.
const SKIP_PREFIXES: &[&str] = &["crates/vendored/", "crates/xtask/tests/fixtures/"];

/// Classify a workspace-relative (`/`-separated) path into its crate
/// directory and file class. Returns `None` for files outside any
/// recognised source layout.
pub fn classify(rel: &str) -> Option<(String, FileClass)> {
    let (crate_dir, tail) = if let Some(rest) = rel.strip_prefix("crates/") {
        let (dir, tail) = rest.split_once('/')?;
        (dir.to_string(), tail)
    } else {
        // The root facade package (`lorm-repro`).
        ("lorm-repro".to_string(), rel)
    };
    let class = if tail == "src/main.rs" || tail.starts_with("src/bin/") {
        FileClass::Bin
    } else if tail == "build.rs" || tail.starts_with("src/") {
        FileClass::Lib
    } else if tail.starts_with("tests/") {
        FileClass::TestDir
    } else if tail.starts_with("examples/") {
        FileClass::Example
    } else if tail.starts_with("benches/") {
        FileClass::Bench
    } else {
        return None;
    };
    Some((crate_dir, class))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> =
        fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every eligible `.rs` file under `root` (the workspace root).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut report = LintReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let Some((crate_dir, class)) = classify(&rel) else { continue };
        let src = fs::read_to_string(&path)?;
        let ctx = FileCtx { crate_dir, class, rel_path: rel };
        let file_report = lints::lint_file(&ctx, &src);
        report.files_scanned += 1;
        report.suppressions_used += file_report.suppressions_used;
        report.diagnostics.extend(file_report.diagnostics);
    }
    report.diagnostics.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Ok(report)
}

/// Render the report as `lorm-repro/lint-v1` JSON (same hand-rolled
/// style as the bench harness's `bench-v1` export).
pub fn render_json(report: &LintReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"lorm-repro/lint-v1\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"suppressions_used\": {},\n", report.suppressions_used));
    s.push_str(&format!("  \"clean\": {},\n", report.clean()));
    s.push_str("  \"findings\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"lint\": {}, ", json_str(&d.lint)));
        s.push_str(&format!("\"file\": {}, ", json_str(&d.file)));
        s.push_str(&format!("\"line\": {}, ", d.line));
        s.push_str(&format!("\"message\": {}", json_str(&d.message)));
        s.push('}');
    }
    if !report.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Minimal JSON string escaping (control chars, quote, backslash).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_layouts() {
        assert_eq!(classify("crates/sim/src/report.rs"), Some(("sim".into(), FileClass::Lib)));
        assert_eq!(
            classify("crates/bench/src/bin/repro.rs"),
            Some(("bench".into(), FileClass::Bin))
        );
        assert_eq!(
            classify("crates/chord/tests/routing.rs"),
            Some(("chord".into(), FileClass::TestDir))
        );
        assert_eq!(classify("src/lib.rs"), Some(("lorm-repro".into(), FileClass::Lib)));
        assert_eq!(classify("examples/demo.rs"), Some(("lorm-repro".into(), FileClass::Example)));
        assert_eq!(classify("crates/sim/Cargo.toml"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_renders_clean() {
        let r = LintReport::default();
        let j = render_json(&r);
        assert!(j.contains("\"clean\": true"));
        assert!(j.contains("\"findings\": []"));
    }
}
