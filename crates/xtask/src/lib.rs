//! Workspace determinism & soundness analyzer.
//!
//! `cargo xtask lint` walks every non-vendored `.rs` file in the
//! workspace through a string/comment-aware lexer, an item-tree parser,
//! and a workspace call graph, then runs a registry of named lints that
//! enforce the simulator's reproducibility contract. Reachability-scoped
//! lints fire only in functions reachable from the sim entry points
//! ([`graph::ENTRY_POINTS`]); each such finding carries a call-path
//! trace. See `docs/LINTS.md` for the catalogue and the suppression
//! syntax, and `docs/SCHEMAS.md` for the JSON schema catalogue the
//! `schema-drift` lint checks against.

#![forbid(unsafe_code)]

pub mod graph;
pub mod items;
pub mod lexer;
pub mod lints;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use graph::CallGraph;
use lexer::Lexed;

pub use lints::{Diagnostic, FileClass, FileCtx};

/// The aggregated outcome of linting the workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, lint).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `lint:allow` directives that suppressed a finding.
    pub suppressions_used: usize,
    /// The sim entry points the call graph was rooted at (`crate::fn`).
    pub entry_points: Vec<String>,
    /// Functions indexed in the call graph.
    pub functions_indexed: usize,
    /// Resolved call edges.
    pub call_edges: usize,
    /// Functions reachable from the entry points.
    pub reachable_functions: usize,
}

impl LintReport {
    /// True when no lint fired.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never descended into, by name.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Workspace-relative path prefixes excluded from analysis: vendored
/// stand-in crates and the lint engine's own violating fixtures.
const SKIP_PREFIXES: &[&str] = &["crates/vendored/", "crates/xtask/tests/fixtures/"];

/// Classify a workspace-relative (`/`-separated) path into its crate
/// directory and file class. Returns `None` for files outside any
/// recognised source layout.
pub fn classify(rel: &str) -> Option<(String, FileClass)> {
    let (crate_dir, tail) = if let Some(rest) = rel.strip_prefix("crates/") {
        let (dir, tail) = rest.split_once('/')?;
        (dir.to_string(), tail)
    } else {
        // The root facade package (`lorm-repro`).
        ("lorm-repro".to_string(), rel)
    };
    let class = if tail == "src/main.rs" || tail.starts_with("src/bin/") {
        FileClass::Bin
    } else if tail == "build.rs" || tail.starts_with("src/") {
        FileClass::Lib
    } else if tail.starts_with("tests/") {
        FileClass::TestDir
    } else if tail.starts_with("examples/") {
        FileClass::Example
    } else if tail.starts_with("benches/") {
        FileClass::Bench
    } else {
        return None;
    };
    Some((crate_dir, class))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> =
        fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One fully-analyzed source file (pass 1 of the workspace lint).
struct SourceFile {
    ctx: FileCtx,
    lexed: Lexed,
    items: items::ItemTree,
}

/// Lint every eligible `.rs` file under `root` (the workspace root).
///
/// Two passes: first every file is lexed and item-parsed and the
/// workspace call graph is built; then per-file lints run, the
/// reachability-scoped ones are filtered through the graph (findings in
/// functions unreachable from the sim entry points are dropped, and the
/// survivors gain an entry→site trace), the graph-level `schema-drift`
/// pass runs against `docs/SCHEMAS.md`, and suppressions are resolved
/// last — so a suppression whose finding was dropped as unreachable
/// reports `unused-suppression` and must be removed.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    walk(root, &mut files)?;

    let mut srcs: Vec<SourceFile> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let Some((crate_dir, class)) = classify(&rel) else { continue };
        let src = fs::read_to_string(&path)?;
        let lexed = lexer::lex(&src);
        let items = items::parse_items(&lexed.toks);
        srcs.push(SourceFile { ctx: FileCtx { crate_dir, class, rel_path: rel }, lexed, items });
    }

    let triples: Vec<(&FileCtx, &[lexer::Tok], &items::ItemTree)> =
        srcs.iter().map(|s| (&s.ctx, &s.lexed.toks[..], &s.items)).collect();
    let graph = CallGraph::build(&triples);

    let mut report = LintReport {
        entry_points: graph.entries.iter().map(|&e| graph.nodes[e].display()).collect(),
        functions_indexed: graph.nodes.len(),
        call_edges: graph.edge_count,
        reachable_functions: graph.reachable_count(),
        ..LintReport::default()
    };

    // Graph-level pass: schema drift, grouped by the file each finding
    // anchors in so suppressions there can match; doc-anchored findings
    // (docs/SCHEMAS.md is not a scanned source file) pass through.
    let drift_files: Vec<(&FileCtx, &Lexed, &items::ItemTree)> =
        srcs.iter().map(|s| (&s.ctx, &s.lexed, &s.items)).collect();
    let doc = fs::read_to_string(root.join("docs/SCHEMAS.md")).ok();
    let mut drift_by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for d in lints::schema_drift(&drift_files, &graph, doc.as_deref()) {
        drift_by_file.entry(d.file.clone()).or_default().push(d);
    }

    for s in &srcs {
        let mut raw = lints::raw_lints(&s.ctx, &s.lexed, &s.items);
        raw.retain_mut(|d| {
            if !lints::REACH_SCOPED.contains(&d.lint.as_str()) {
                return true;
            }
            match graph.enclosing_fn(&d.file, d.line) {
                // Findings in unreachable functions are dropped; their
                // suppressions (if any) then report as unused.
                Some(id) if !graph.is_reachable(id) => false,
                Some(id) => {
                    d.trace = graph.trace(id);
                    true
                }
                // Top-level code has no enclosing fn: keep conservatively.
                None => true,
            }
        });
        if let Some(drift) = drift_by_file.remove(&s.ctx.rel_path) {
            raw.extend(drift);
        }
        let file_report = lints::resolve_suppressions(&s.ctx, &s.lexed, raw);
        report.files_scanned += 1;
        report.suppressions_used += file_report.suppressions_used;
        report.diagnostics.extend(file_report.diagnostics);
    }
    // Findings anchored outside scanned sources (docs/SCHEMAS.md).
    for (_, diags) in drift_by_file {
        report.diagnostics.extend(diags);
    }
    report.diagnostics.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Ok(report)
}

/// Render the report as `lorm-repro/lint-v1` JSON (same hand-rolled
/// style as the bench harness's `bench-v1` export). Kept as a compat
/// format; traces are omitted.
pub fn render_json(report: &LintReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"lorm-repro/lint-v1\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"suppressions_used\": {},\n", report.suppressions_used));
    s.push_str(&format!("  \"clean\": {},\n", report.clean()));
    s.push_str("  \"findings\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"lint\": {}, ", json_str(&d.lint)));
        s.push_str(&format!("\"file\": {}, ", json_str(&d.file)));
        s.push_str(&format!("\"line\": {}, ", d.line));
        s.push_str(&format!("\"message\": {}", json_str(&d.message)));
        s.push('}');
    }
    if !report.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Render the report as `lorm-repro/lint-v2` JSON: v1 plus the call
/// graph's shape and a per-finding reachability `trace` (entry → … →
/// enclosing function; `null` for lexical findings).
pub fn render_json_v2(report: &LintReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"lorm-repro/lint-v2\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"suppressions_used\": {},\n", report.suppressions_used));
    s.push_str(&format!("  \"clean\": {},\n", report.clean()));
    s.push_str("  \"entry_points\": [");
    for (i, e) in report.entry_points.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(e));
    }
    s.push_str("],\n");
    s.push_str(&format!("  \"functions_indexed\": {},\n", report.functions_indexed));
    s.push_str(&format!("  \"call_edges\": {},\n", report.call_edges));
    s.push_str(&format!("  \"reachable_functions\": {},\n", report.reachable_functions));
    s.push_str("  \"findings\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"lint\": {}, ", json_str(&d.lint)));
        s.push_str(&format!("\"file\": {}, ", json_str(&d.file)));
        s.push_str(&format!("\"line\": {}, ", d.line));
        s.push_str(&format!("\"message\": {}, ", json_str(&d.message)));
        s.push_str("\"trace\": ");
        match &d.trace {
            None => s.push_str("null"),
            Some(steps) => {
                s.push('[');
                for (j, step) in steps.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&json_str(step));
                }
                s.push(']');
            }
        }
        s.push('}');
    }
    if !report.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Minimal JSON string escaping (control chars, quote, backslash).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_layouts() {
        assert_eq!(classify("crates/sim/src/report.rs"), Some(("sim".into(), FileClass::Lib)));
        assert_eq!(
            classify("crates/bench/src/bin/repro.rs"),
            Some(("bench".into(), FileClass::Bin))
        );
        assert_eq!(
            classify("crates/chord/tests/routing.rs"),
            Some(("chord".into(), FileClass::TestDir))
        );
        assert_eq!(classify("src/lib.rs"), Some(("lorm-repro".into(), FileClass::Lib)));
        assert_eq!(classify("examples/demo.rs"), Some(("lorm-repro".into(), FileClass::Example)));
        assert_eq!(classify("crates/sim/Cargo.toml"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_renders_clean() {
        let r = LintReport::default();
        let j = render_json(&r);
        assert!(j.contains("\"clean\": true"));
        assert!(j.contains("\"findings\": []"));
        let j = render_json_v2(&r);
        assert!(j.contains("\"schema\": \"lorm-repro/lint-v2\""));
        assert!(j.contains("\"entry_points\": []"));
    }

    #[test]
    fn v2_renders_traces() {
        let r = LintReport {
            diagnostics: vec![Diagnostic {
                lint: "wall-clock".into(),
                file: "crates/sim/src/x.rs".into(),
                line: 7,
                message: "m".into(),
                trace: Some(vec!["sim::run_batch_sharded".into(), "sim::helper".into()]),
            }],
            ..LintReport::default()
        };
        let j = render_json_v2(&r);
        assert!(j.contains("\"trace\": [\"sim::run_batch_sharded\", \"sim::helper\"]"), "{j}");
    }
}
