//! `cargo xtask` — workspace automation. Currently one subcommand:
//! `lint`, the determinism & soundness analyzer (see `docs/LINTS.md`).
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{lint_workspace, lints, render_json, render_json_v2};

const USAGE: &str = "\
usage: cargo xtask lint [options]

options:
  --json <path>    also write machine-readable JSON (see --format)
  --format <v1|v2> JSON schema for --json: lorm-repro/lint-v2 with
                   reachability traces (default), or the lint-v1 compat format
  --root <dir>     workspace root to scan (default: auto-detected)
  --list           print the lint catalogue and exit
";

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask, so the root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "lint" {
        eprintln!("unknown subcommand `{cmd}`\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut json_path: Option<PathBuf> = None;
    let mut format_v1 = false;
    let mut root = workspace_root();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("v1") => format_v1 = true,
                Some("v2") => format_v1 = false,
                other => {
                    eprintln!("--format requires `v1` or `v2`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for (name, desc) in lints::LINTS {
                    println!("{name:20} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        let payload = if format_v1 { render_json(&report) } else { render_json_v2(&report) };
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("xtask lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for d in &report.diagnostics {
        println!("{}:{}: [{}] {}", d.file, d.line, d.lint, d.message);
        if let Some(trace) = &d.trace {
            println!("    reachable via {}", trace.join(" -> "));
        }
    }
    println!(
        "xtask lint: {} file(s) scanned, {} finding(s), {} suppression(s) used",
        report.files_scanned,
        report.diagnostics.len(),
        report.suppressions_used
    );
    println!(
        "xtask lint: call graph: {} fn(s), {} edge(s), {} reachable from {} entry point(s)",
        report.functions_indexed,
        report.call_edges,
        report.reachable_functions,
        report.entry_points.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
