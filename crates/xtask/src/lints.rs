//! The lint registry: each named lint enforces one clause of the
//! simulator's reproducibility contract (see `docs/LINTS.md`).
//!
//! Lints run in two modes. [`lint_file`] is the standalone lexical mode
//! (fixtures, unit tests): every applicable lint fires on its pattern
//! wherever it appears. The workspace driver in `lib.rs` instead runs
//! [`raw_lints`] per file, filters the reachability-scoped lints through
//! the call graph (a finding stands only when its enclosing function is
//! reachable from a sim entry point — see [`crate::graph::ENTRY_POINTS`]),
//! adds the graph-level [`schema_drift`] pass, and then resolves
//! suppressions with [`resolve_suppressions`].

use std::collections::BTreeMap;

use crate::graph::CallGraph;
use crate::items::ItemTree;
use crate::lexer::{in_regions, lex, test_regions, Comment, Lexed, Tok, TokKind};

/// Directory names (under `crates/`) of the simulation-path crates: code
/// whose behaviour flows into exported figures, so iteration order,
/// wall-clock time, and ambient entropy are forbidden there.
pub const SIM_CRATES: &[&str] =
    &["dht-core", "cycloid", "chord", "core", "resource", "baselines", "sim"];

/// Files blessed to accumulate floats: the `Summary` / `Report` merge
/// paths whose accumulation order is itself part of the contract (PR 1
/// documented the last-ULP variance-merge caveat there).
pub const FLOAT_BLESSED: &[&str] = &["crates/dht-core/src/stats.rs", "crates/sim/src/report.rs"];

/// Files blessed to call the traced `.route(...)` (and the cloning
/// `.live_nodes_cloned()`) in simulation-path library code: the hop-
/// distribution experiment and trace tooling consume full paths, so the
/// per-lookup `Vec` is the product there, not an accident.
pub const ROUTE_BLESSED: &[&str] = &["crates/sim/src/experiments/hopdist.rs"];

/// Files blessed to construct beds, overlays, and systems freely: the
/// construction modules themselves. Everywhere else in simulation-path
/// library code, building inside a loop is the exact cost the
/// `BedCache` exists to amortize (one stabilized build per distinct
/// configuration, cloned or shared thereafter). `mercury.rs` is blessed
/// because its bulk constructor legitimately stands up one `ChordHost`
/// per hub (`m` overlays per system is Mercury's defining cost).
pub const BED_BLESSED: &[&str] =
    &["crates/sim/src/setup.rs", "crates/sim/src/cache.rs", "crates/baselines/src/mercury.rs"];

/// Every lint name with a one-line description (the `--list` catalogue).
pub const LINTS: &[(&str, &str)] = &[
    (
        "hash-collections",
        "std HashMap/HashSet in simulation-path crates — iteration order can leak into results; \
         use BTreeMap/BTreeSet",
    ),
    (
        "wall-clock",
        "wall-clock time or ambient entropy (Instant, SystemTime, thread_rng, rand::random, \
         std::env) in simulation-path crates — results must be a pure function of the seed",
    ),
    (
        "panic-hygiene",
        ".unwrap()/.expect()/panic! in library code — propagate DhtError, or annotate the \
         invariant",
    ),
    (
        "float-accumulate",
        "raw `+=` onto a float outside the blessed Summary/Report merge paths — accumulation \
         order changes last-ULP results",
    ),
    (
        "route-path-alloc",
        "traced `.route(...)` or cloning `.live_nodes_cloned()` in simulation-path library code \
         outside the trace allowlist — hot paths must use `.route_stats(...)` / borrowed \
         `.live_nodes()`",
    ),
    (
        "bed-rebuild",
        "overlay/system construction inside a loop in simulation-path library code outside the \
         blessed construction modules — build once via the BedCache and clone/share snapshots",
    ),
    (
        "cast-truncation",
        "lossy `as u8/u16/u32/...` cast on an index/count-named value in library code — at \
         n = 10^6-scale a silent wrap corrupts results; use `try_from` + documented invariant \
         or widen the type",
    ),
    (
        "sentinel-guard",
        "indexing the `fingers`/`succs`/`preds` arenas in a function that never mentions \
         `NO_LINK` — stride-table slots hold the sentinel and must be checked before use",
    ),
    (
        "schema-drift",
        "string-literal JSON keys emitted by a serializer (and its callees) must exactly match \
         the `docs/SCHEMAS.md` catalogue, both directions",
    ),
    (
        "epoch-bump",
        "overlay-state mutation (finger/successor/cluster arenas, liveness flags) in a \
         chord/cycloid function that never calls `bump_epoch` — the route cache invalidates on \
         the epoch, so an unbumped write serves stale cached routes",
    ),
    ("unused-suppression", "a lint:allow comment that suppressed nothing"),
    ("bad-suppression", "a malformed lint:allow comment (unknown lint or missing reason)"),
];

/// Names that a `lint:allow(...)` directive may reference.
const SUPPRESSIBLE: &[&str] = &[
    "hash-collections",
    "wall-clock",
    "panic-hygiene",
    "float-accumulate",
    "route-path-alloc",
    "bed-rebuild",
    "cast-truncation",
    "sentinel-guard",
    "schema-drift",
    "epoch-bump",
];

/// Lints whose workspace-mode findings are scoped by reachability: a
/// finding stands only when its enclosing function is reachable from a
/// sim entry point. `float-accumulate` stays purely lexical (merge-order
/// bugs matter wherever the accumulator is later consumed), `epoch-bump`
/// stays lexical too (a maintenance path only reachable from tests still
/// corrupts any cache that outlives it), and the suppression meta-lints
/// are structural.
pub const REACH_SCOPED: &[&str] = &[
    "hash-collections",
    "wall-clock",
    "panic-hygiene",
    "route-path-alloc",
    "bed-rebuild",
    "cast-truncation",
    "sentinel-guard",
];

/// How a file participates in its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`src/**`, minus `src/main.rs` and `src/bin/**`).
    Lib,
    /// Binary source (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Integration tests (`tests/**`).
    TestDir,
    /// Examples (`examples/**`).
    Example,
    /// Benches (`benches/**`).
    Bench,
}

/// Where a file sits in the workspace, for lint applicability.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// The crate's directory name under `crates/` (or the package name
    /// for the root facade).
    pub crate_dir: String,
    /// The file's role in the crate.
    pub class: FileClass,
    /// Workspace-relative path, `/`-separated (diagnostic display).
    pub rel_path: String,
}

impl FileCtx {
    fn sim_path(&self) -> bool {
        SIM_CRATES.contains(&self.crate_dir.as_str())
    }

    fn float_blessed(&self) -> bool {
        FLOAT_BLESSED.contains(&self.rel_path.as_str())
    }

    fn route_blessed(&self) -> bool {
        ROUTE_BLESSED.contains(&self.rel_path.as_str())
    }

    fn bed_blessed(&self) -> bool {
        BED_BLESSED.contains(&self.rel_path.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint name (stable, machine-readable).
    pub lint: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Workspace mode only: the call path `entry → … → enclosing fn`
    /// proving the site reachable from a sim entry point. `None` for
    /// lexical-mode findings and lints outside [`REACH_SCOPED`].
    pub trace: Option<Vec<String>>,
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived suppression, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `lint:allow` directives matched a finding.
    pub suppressions_used: usize,
}

/// A parsed `// lint:allow(<name>): <reason>` directive.
#[derive(Debug)]
struct Suppression {
    name: String,
    has_reason: bool,
    line: u32,
    target_line: u32,
    used: bool,
}

/// Lint one file's source text (standalone lexical mode: no
/// reachability filtering, no schema-drift).
pub fn lint_file(ctx: &FileCtx, src: &str) -> FileReport {
    let lexed = lex(src);
    let items = crate::items::parse_items(&lexed.toks);
    let raw = raw_lints(ctx, &lexed, &items);
    resolve_suppressions(ctx, &lexed, raw)
}

/// Run every per-file lint and return the raw (pre-suppression,
/// pre-reachability) findings.
pub fn raw_lints(ctx: &FileCtx, lexed: &Lexed, items: &ItemTree) -> Vec<Diagnostic> {
    let regions = test_regions(&lexed.toks);
    let lib_code = |i: usize| ctx.class == FileClass::Lib && !in_regions(i, &regions);

    let mut raw: Vec<Diagnostic> = Vec::new();
    if ctx.sim_path() {
        hash_collections(ctx, &lexed.toks, &lib_code, &mut raw);
        wall_clock(ctx, &lexed.toks, &lib_code, &mut raw);
        if !ctx.float_blessed() {
            float_accumulate(ctx, &lexed.toks, &lib_code, &mut raw);
        }
        if !ctx.route_blessed() {
            route_path_alloc(ctx, &lexed.toks, &lib_code, &mut raw);
        }
        if !ctx.bed_blessed() {
            bed_rebuild(ctx, &lexed.toks, &lib_code, &mut raw);
        }
    }
    panic_hygiene(ctx, &lexed.toks, &lib_code, &mut raw);
    cast_truncation(ctx, &lexed.toks, &lib_code, &mut raw);
    sentinel_guard(ctx, &lexed.toks, items, &lib_code, &mut raw);
    epoch_bump(ctx, &lexed.toks, items, &lib_code, &mut raw);
    raw
}

/// Match raw findings against the file's `lint:allow` directives,
/// emit the suppression meta-lints, and sort.
pub fn resolve_suppressions(ctx: &FileCtx, lexed: &Lexed, raw: Vec<Diagnostic>) -> FileReport {
    let mut sups = parse_suppressions(&lexed.comments, &lexed.toks);
    let mut report = FileReport::default();
    for d in raw {
        let matched = sups.iter_mut().find(|s| {
            s.has_reason
                && SUPPRESSIBLE.contains(&s.name.as_str())
                && s.name == d.lint
                && s.target_line == d.line
        });
        match matched {
            Some(s) => {
                s.used = true;
                report.suppressions_used += 1;
            }
            None => report.diagnostics.push(d),
        }
    }
    for s in &sups {
        if !SUPPRESSIBLE.contains(&s.name.as_str()) {
            report.diagnostics.push(Diagnostic {
                lint: "bad-suppression".into(),
                file: ctx.rel_path.clone(),
                line: s.line,
                message: format!(
                    "lint:allow names unknown lint {:?} (suppressible lints: {})",
                    s.name,
                    SUPPRESSIBLE.join(", ")
                ),
                trace: None,
            });
        } else if !s.has_reason {
            report.diagnostics.push(Diagnostic {
                lint: "bad-suppression".into(),
                file: ctx.rel_path.clone(),
                line: s.line,
                message: format!(
                    "lint:allow({}) without a reason — write `// lint:allow({}): <why>`",
                    s.name, s.name
                ),
                trace: None,
            });
        } else if !s.used {
            report.diagnostics.push(Diagnostic {
                lint: "unused-suppression".into(),
                file: ctx.rel_path.clone(),
                line: s.line,
                message: format!(
                    "lint:allow({}) suppressed nothing on line {} — remove it",
                    s.name, s.target_line
                ),
                trace: None,
            });
        }
    }
    report.diagnostics.sort_by(|a, b| (a.line, &a.lint).cmp(&(b.line, &b.lint)));
    report
}

fn push(out: &mut Vec<Diagnostic>, ctx: &FileCtx, lint: &str, line: u32, message: String) {
    out.push(Diagnostic {
        lint: lint.into(),
        file: ctx.rel_path.clone(),
        line,
        message,
        trace: None,
    });
}

/// Lint 1 — nondeterminism: `HashMap` / `HashSet` anywhere in
/// simulation-path library code (imports and type positions alike).
fn hash_collections(
    ctx: &FileCtx,
    toks: &[Tok],
    lib_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") && lib_code(i) {
            push(
                out,
                ctx,
                "hash-collections",
                t.line,
                format!(
                    "`{}` in a simulation-path crate: iteration order is randomized per process \
                     and can leak into exported results — use `BTree{}` or an indexed map",
                    t.text,
                    &t.text[4..]
                ),
            );
        }
    }
}

/// Lint 2 — wall-clock & entropy: `Instant`, `SystemTime`, `thread_rng`,
/// `rand::random`, `from_entropy`, `OsRng`, and `std::env` access in
/// simulation-path library code.
fn wall_clock(
    ctx: &FileCtx,
    toks: &[Tok],
    lib_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    const FORBIDDEN: &[(&str, &str)] = &[
        ("Instant", "wall-clock time"),
        ("SystemTime", "wall-clock time"),
        ("UNIX_EPOCH", "wall-clock time"),
        ("thread_rng", "ambient entropy"),
        ("from_entropy", "ambient entropy"),
        ("OsRng", "ambient entropy"),
    ];
    let ident = |i: usize, s: &str| i < toks.len() && toks[i].is_ident(s);
    let punct = |i: usize, c: char| i < toks.len() && toks[i].is_punct(c);
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !lib_code(i) {
            continue;
        }
        if let Some((_, what)) = FORBIDDEN.iter().find(|(n, _)| *n == t.text) {
            push(
                out,
                ctx,
                "wall-clock",
                t.line,
                format!(
                    "`{}` is {what}: simulation results must be a pure function of the \
                     experiment seed (route timing through `crates/bench`)",
                    t.text
                ),
            );
            continue;
        }
        // `rand::random` — the implicitly thread_rng-backed helper.
        if t.text == "random" && i >= 2 && punct(i - 1, ':') && ident(i - 3, "rand") {
            push(
                out,
                ctx,
                "wall-clock",
                t.line,
                "`rand::random` draws from ambient entropy — sample from a seeded \
                 `SmallRng` stream instead"
                    .into(),
            );
            continue;
        }
        // `std::env` / `env::var*` / `env!` — environment-dependent values.
        if t.text == "env" {
            let qualified = i >= 2 && punct(i - 1, ':') && ident(i - 3, "std");
            let accessor = punct(i + 1, ':')
                && (ident(i + 3, "var")
                    || ident(i + 3, "vars")
                    || ident(i + 3, "var_os")
                    || ident(i + 3, "args"));
            let is_macro = punct(i + 1, '!');
            if qualified || accessor || is_macro {
                push(
                    out,
                    ctx,
                    "wall-clock",
                    t.line,
                    "environment access in a simulation-path crate: seeds and parameters \
                     must arrive through explicit configuration, not the environment"
                        .into(),
                );
            }
        }
    }
}

/// Lint 3 — panic hygiene: `.unwrap()`, `.expect(`, `panic!` in library
/// (non-test, non-bin) code.
fn panic_hygiene(
    ctx: &FileCtx,
    toks: &[Tok],
    lib_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !lib_code(i) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_paren = i + 1 < toks.len() && toks[i + 1].is_punct('(');
        let next_bang = i + 1 < toks.len() && toks[i + 1].is_punct('!');
        if (t.text == "unwrap" || t.text == "expect") && prev_dot && next_paren {
            push(
                out,
                ctx,
                "panic-hygiene",
                t.line,
                format!(
                    "`.{}(...)` in library code: propagate `DhtError` with `?`, or annotate a \
                     true invariant with `// lint:allow(panic-hygiene): <why>`",
                    t.text
                ),
            );
        } else if t.text == "panic" && next_bang {
            push(
                out,
                ctx,
                "panic-hygiene",
                t.line,
                "`panic!` in library code: return an error, or annotate the invariant with \
                 `// lint:allow(panic-hygiene): <why>`"
                    .into(),
            );
        }
    }
}

/// Lint 4 — float-merge order: `NAME += ...` where `NAME` is known to be
/// a float in this file (declared `: f64`/`: f32`, or `let mut NAME = ...`
/// with a float literal / `as f64` on the right-hand side).
fn float_accumulate(
    ctx: &FileCtx,
    toks: &[Tok],
    lib_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let float_names = collect_float_names(toks);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !float_names.contains(&t.text) || !lib_code(i) {
            continue;
        }
        if i + 2 < toks.len() && toks[i + 1].is_punct('+') && toks[i + 2].is_punct('=') {
            push(
                out,
                ctx,
                "float-accumulate",
                t.line,
                format!(
                    "float `+=` accumulation on `{}`: accumulation order changes last-ULP \
                     results — record into `Summary` (merge-order-stable) or annotate why the \
                     order is fixed",
                    t.text
                ),
            );
        }
    }
}

/// Lint 5 — per-lookup allocation: traced `.route(...)` and cloning
/// `.live_nodes_cloned()` calls in simulation-path library code. The
/// figure loops issue millions of lookups; a `Vec` per lookup (or a
/// live-list clone per batch step) dominates their profile. Hot paths use
/// `.route_stats(...)` and the borrowed `.live_nodes()`; code that
/// genuinely consumes hop traces goes on [`ROUTE_BLESSED`] or annotates
/// the call site.
fn route_path_alloc(
    ctx: &FileCtx,
    toks: &[Tok],
    lib_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !lib_code(i) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_paren = i + 1 < toks.len() && toks[i + 1].is_punct('(');
        if !(prev_dot && next_paren) {
            continue;
        }
        if t.text == "route" {
            push(
                out,
                ctx,
                "route-path-alloc",
                t.line,
                "traced `.route(...)` allocates a path `Vec` per lookup: hot paths must use \
                 `.route_stats(...)`; trace-consuming code belongs on the ROUTE_BLESSED \
                 allowlist or annotates the site"
                    .into(),
            );
        } else if t.text == "live_nodes_cloned" {
            push(
                out,
                ctx,
                "route-path-alloc",
                t.line,
                "`.live_nodes_cloned()` copies the live-node list: borrow `.live_nodes()` \
                 unless the overlay is mutated while iterating (then annotate why)"
                    .into(),
            );
        }
    }
}

/// Lint 6 — redundant bed construction: `build_system(...)` or an
/// overlay/system constructor (`TestBed::new`, `Chord::build`,
/// `Lorm::new`, ...) lexically inside a `for`/`while`/`loop` body in
/// simulation-path library code outside the blessed construction modules
/// ([`BED_BLESSED`]). A stabilized bed is a pure function of its
/// configuration; rebuilding it per sweep point is the cost the
/// `BedCache` amortizes away. Sites that genuinely need a fresh build
/// per iteration (parameter sweeps that *vary* the configuration)
/// annotate with `// lint:allow(bed-rebuild): <why>`.
fn bed_rebuild(
    ctx: &FileCtx,
    toks: &[Tok],
    lib_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    /// Types whose `::new` / `::build` / `::with_systems` calls stand up
    /// an overlay or a full discovery system.
    const CONSTRUCTED: &[&str] = &[
        "TestBed",
        "Chord",
        "Cycloid",
        "ChordHost",
        "Lorm",
        "Maan",
        "Sword",
        "Mercury",
        "CompositeFlat",
    ];
    const CTOR_METHODS: &[&str] =
        &["new", "build", "with_systems", "build_with_mode", "new_with_mode"];

    let mut depth = 0i32;
    let mut pending_loop = false;
    let mut loop_depths: Vec<i32> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
            if pending_loop {
                loop_depths.push(depth);
                pending_loop = false;
            }
            continue;
        }
        if t.is_punct('}') {
            if loop_depths.last() == Some(&depth) {
                loop_depths.pop();
            }
            depth -= 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "for" || t.text == "while" || t.text == "loop" {
            // Only statement-position keywords open loops: `for` also
            // appears in `impl Trait for Type` (preceded by an ident or
            // `>`), which must not count. Labeled loops (`'a: loop`) are
            // preceded by `:`.
            let stmt_start = i == 0
                || toks[i - 1].is_punct('{')
                || toks[i - 1].is_punct('}')
                || toks[i - 1].is_punct(';')
                || toks[i - 1].is_punct(':')
                || toks[i - 1].is_ident("else")
                || toks[i - 1].is_ident("unsafe");
            if stmt_start {
                pending_loop = true;
            }
            continue;
        }
        if loop_depths.is_empty() || !lib_code(i) {
            continue;
        }
        let next_paren = i + 1 < toks.len() && toks[i + 1].is_punct('(');
        if t.text == "build_system" && next_paren {
            push(
                out,
                ctx,
                "bed-rebuild",
                t.line,
                "`build_system(...)` inside a loop: a stabilized system is a pure function of \
                 its configuration — build once via `BedCache` (or hoist the build) and \
                 clone/share it, or annotate why each iteration needs a fresh build"
                    .into(),
            );
            continue;
        }
        if CONSTRUCTED.contains(&t.text.as_str())
            && i + 4 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
            && CTOR_METHODS.contains(&toks[i + 3].text.as_str())
            && toks[i + 4].is_punct('(')
        {
            push(
                out,
                ctx,
                "bed-rebuild",
                t.line,
                format!(
                    "`{}::{}(...)` inside a loop: overlay construction is the dominant sweep \
                     cost — build once via `BedCache` and clone/share snapshots, or annotate \
                     why each iteration needs a fresh build",
                    t.text,
                    toks[i + 3].text
                ),
            );
        }
    }
}

/// Target types a truncating `as` cast can silently wrap into at the
/// million-node scale the repro sweeps.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Does `name` read like a count/index/size binding? Exact names, then
/// suffix and prefix conventions used across the workspace.
fn county_name(name: &str) -> bool {
    const EXACT: &[&str] = &[
        "n", "m", "k", "d", "r", "count", "len", "idx", "index", "size", "total", "arity", "slot",
        "slots", "hubs", "nodes",
    ];
    const SUFFIX: &[&str] = &[
        "_count", "_len", "_idx", "_index", "_size", "_total", "_max", "_nodes", "_slots", "_hubs",
    ];
    const PREFIX: &[&str] = &["num_", "max_", "count_"];
    let lower = name.to_ascii_lowercase();
    EXACT.contains(&lower.as_str())
        || SUFFIX.iter().any(|s| lower.ends_with(s))
        || PREFIX.iter().any(|p| lower.starts_with(p))
}

/// Lint 7 — lossy narrowing: `<count-ish> as u8/u16/u32/...` in library
/// code, where the operand is a count/index-named identifier or a
/// `.len()` / `.count()` call. Numeric-literal operands (`idx.0 as u32`
/// field accesses end in a `Num` token) are exempt: the compiler already
/// sees those, and tuple-index projections are how `NodeIdx` unwraps.
fn cast_truncation(
    ctx: &FileCtx,
    toks: &[Tok],
    lib_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for i in 1..toks.len() {
        if !toks[i].is_ident("as") || !lib_code(i) {
            continue;
        }
        let Some(target) = toks.get(i + 1) else { continue };
        if target.kind != TokKind::Ident || !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        let prev = &toks[i - 1];
        let what = match prev.kind {
            TokKind::Ident if county_name(&prev.text) => Some(format!("`{}`", prev.text)),
            TokKind::Punct if prev.text == ")" => {
                // `<expr>.len() as u32` / `<expr>.count() as u32`
                if i >= 4
                    && toks[i - 2].is_punct('(')
                    && toks[i - 3].kind == TokKind::Ident
                    && (toks[i - 3].text == "len" || toks[i - 3].text == "count")
                    && toks[i - 4].is_punct('.')
                {
                    Some(format!("`.{}()`", toks[i - 3].text))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = what {
            push(
                out,
                ctx,
                "cast-truncation",
                toks[i].line,
                format!(
                    "{what} as `{}` can silently truncate at large n: use `{}::try_from` with a \
                     documented invariant, or widen the type",
                    target.text, target.text
                ),
            );
        }
    }
}

/// The SoA arena fields whose slots hold the `NO_LINK` sentinel.
const SENTINEL_ARENAS: &[&str] = &["fingers", "succs", "preds"];

/// Lint 8 — sentinel hygiene: indexing a sentinel-bearing arena
/// (`fingers[..]`, `succs[..]`, `preds[..]`) inside a function that never
/// mentions `NO_LINK`. Reading a raw slot without a sentinel check turns
/// `u32::MAX` into a phantom node id. Pure stores (`arena[i] = v`) are
/// exempt — writing a slot needs no guard.
fn sentinel_guard(
    ctx: &FileCtx,
    toks: &[Tok],
    items: &ItemTree,
    lib_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !SENTINEL_ARENAS.contains(&t.text.as_str())
            || i + 1 >= toks.len()
            || !toks[i + 1].is_punct('[')
            || !lib_code(i)
        {
            continue;
        }
        // Find the matching `]`; a lone `=` right after makes this a
        // pure store.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let is_store = j + 1 < toks.len()
            && toks[j + 1].is_punct('=')
            && !(j + 2 < toks.len() && toks[j + 2].is_punct('='));
        if is_store {
            continue;
        }
        // The enclosing fn (innermost body span containing this token)
        // must mention NO_LINK somewhere between its signature and its
        // closing brace.
        let encl = items
            .fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| s <= i && i < e))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s));
        let guarded = encl.is_some_and(|f| {
            let (_, end) = f.body.unwrap();
            toks[f.sig_start..end.min(toks.len())].iter().any(|t| t.is_ident("NO_LINK"))
        });
        if !guarded {
            push(
                out,
                ctx,
                "sentinel-guard",
                t.line,
                format!(
                    "`{}[..]` read in a function that never checks `NO_LINK`: arena slots hold \
                     the sentinel — guard the read, or annotate why every slot here is live",
                    t.text
                ),
            );
        }
    }
}

/// Crates whose overlay state feeds the epoch-invalidated route cache.
const EPOCH_CRATES: &[&str] = &["chord", "cycloid"];

/// Overlay-state fields whose mutation must be visible to the route
/// cache: a cached `RouteStats` or walk segment is only valid while the
/// links and liveness it traversed are unchanged.
const EPOCH_TRACKED: &[&str] = &[
    // chord: link arenas and liveness
    "fingers",
    "succs",
    "succ_lens",
    "preds",
    "alive",
    "sorted",
    // cycloid: node/cluster arenas and liveness
    "nodes",
    "slots",
    "occupied",
    "cluster_slots",
    "cluster_lens",
    "live_sorted",
];

/// Method names that mutate a `Vec`/slice receiver in place.
const EPOCH_MUTATORS: &[&str] = &[
    "push",
    "pop",
    "clear",
    "resize",
    "truncate",
    "insert",
    "remove",
    "copy_from_slice",
    "copy_within",
    "fill",
    "swap",
    "sort",
    "sort_unstable",
    "retain",
    "extend",
    "extend_from_slice",
    "swap_remove",
];

/// Lint 10 — epoch hygiene: a tracked overlay-state field mutated
/// (`self.f = ...`, `self.f[..] = ...`, `&mut self.f`, or an in-place
/// mutator call) in a chord/cycloid library function whose body never
/// calls `bump_epoch`. The route cache treats an unchanged epoch as
/// proof the overlay is unchanged, so an unbumped write is a silent
/// stale-cache bug even though every uncached result stays correct.
/// Lexical, not reachability-scoped: maintenance paths only exercised
/// by tests still corrupt any cache that outlives them.
fn epoch_bump(
    ctx: &FileCtx,
    toks: &[Tok],
    items: &ItemTree,
    lib_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    if !EPOCH_CRATES.contains(&ctx.crate_dir.as_str()) {
        return;
    }
    for i in 0..toks.len() {
        // Anchor on `self . <tracked>`.
        if !toks[i].is_ident("self")
            || i + 2 >= toks.len()
            || !toks[i + 1].is_punct('.')
            || toks[i + 2].kind != TokKind::Ident
            || !EPOCH_TRACKED.contains(&toks[i + 2].text.as_str())
            || !lib_code(i)
        {
            continue;
        }
        let field = &toks[i + 2];
        let f = i + 2;
        // `&mut self.f` — handing out a mutable borrow counts as a write.
        let lent_mut = i >= 2 && toks[i - 1].is_ident("mut") && toks[i - 2].is_punct('&');
        // A lone `=` at `j`: assignment, not `==` comparison and not a
        // match arm's `=>` (both lex as two single-char puncts).
        let lone_eq = |j: usize| {
            toks.get(j).is_some_and(|t| t.is_punct('='))
                && !toks.get(j + 1).is_some_and(|t| t.is_punct('=') || t.is_punct('>'))
        };
        // `self.f = v`.
        let assigned = lone_eq(f + 1);
        // `self.f[...] = v` — find the matching `]`, then a lone `=`.
        let indexed_store = toks.get(f + 1).is_some_and(|t| t.is_punct('[')) && {
            let mut depth = 0i32;
            let mut j = f + 1;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            lone_eq(j + 1)
        };
        // `self.f.push(...)` and friends.
        let mutator_call = toks.get(f + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(f + 2).is_some_and(|t| {
                t.kind == TokKind::Ident && EPOCH_MUTATORS.contains(&t.text.as_str())
            })
            && toks.get(f + 3).is_some_and(|t| t.is_punct('('));
        if !(lent_mut || assigned || indexed_store || mutator_call) {
            continue;
        }
        // The enclosing fn must call bump_epoch somewhere in its span.
        let encl = items
            .fns
            .iter()
            .filter(|fun| fun.body.is_some_and(|(s, e)| s <= i && i < e))
            .min_by_key(|fun| fun.body.map_or(usize::MAX, |(s, e)| e - s));
        let bumped = encl.is_some_and(|fun| {
            let (_, end) = fun.body.unwrap();
            toks[fun.sig_start..end.min(toks.len())].iter().any(|t| t.is_ident("bump_epoch"))
        });
        if !bumped {
            push(
                out,
                ctx,
                "epoch-bump",
                field.line,
                format!(
                    "`self.{}` is mutated in a function that never calls `bump_epoch`: the \
                     route cache invalidates on the overlay epoch, so this write would serve \
                     stale cached routes — bump the epoch, or annotate why the overlay is \
                     observationally unchanged",
                    field.text
                ),
            );
        }
    }
}

/// A parsed `docs/SCHEMAS.md`: schema name → (keys with doc line, the
/// section heading's line).
pub struct SchemasDoc {
    schemas: BTreeMap<String, (Vec<(String, u32)>, u32)>,
}

impl SchemasDoc {
    /// Parse the catalogue: sections open with `## lorm-repro/<name>`,
    /// keys are listed as `- \`key\`` bullets; prose is ignored.
    pub fn parse(text: &str) -> SchemasDoc {
        let mut schemas: BTreeMap<String, (Vec<(String, u32)>, u32)> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (lineno, line) in text.lines().enumerate() {
            let lineno = lineno as u32 + 1;
            let trimmed = line.trim();
            if let Some(head) = trimmed.strip_prefix("## ") {
                let head = head.trim();
                if let Some(name) = head.strip_prefix("lorm-repro/") {
                    current = Some(name.to_string());
                    schemas.entry(name.to_string()).or_insert((Vec::new(), lineno));
                } else {
                    current = None;
                }
                continue;
            }
            let Some(section) = &current else { continue };
            if let Some(rest) = trimmed.strip_prefix("- `") {
                if let Some(end) = rest.find('`') {
                    let key = &rest[..end];
                    if !key.is_empty() {
                        schemas.get_mut(section).unwrap().0.push((key.to_string(), lineno));
                    }
                }
            }
        }
        SchemasDoc { schemas }
    }
}

/// JSON keys appearing in a string-literal body: `"ident":` patterns
/// (whitespace tolerated before the colon), with escaped quotes
/// normalized first.
fn json_keys(lit: &str) -> Vec<String> {
    let norm = lit.replace("\\\"", "\"");
    let b: Vec<char> = norm.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] != '"' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        if j > i + 1 && j < b.len() && b[j] == '"' {
            let mut k = j + 1;
            while k < b.len() && (b[k] == ' ' || b[k] == '\t') {
                k += 1;
            }
            if k < b.len() && b[k] == ':' {
                out.push(b[i + 1..j].iter().collect());
                i = k;
                continue;
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// Schema names (`lorm-repro/<name>`) mentioned in a string literal.
fn schema_names(lit: &str) -> Vec<String> {
    let marker = "lorm-repro/";
    let mut out = Vec::new();
    let mut rest = lit;
    while let Some(pos) = rest.find(marker) {
        let tail = &rest[pos + marker.len()..];
        let end = tail
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-' || *c == '_'))
            .map_or(tail.len(), |(i, _)| i);
        if end > 0 {
            out.push(tail[..end].to_string());
        }
        rest = &tail[end..];
    }
    out
}

/// Lint 9 — schema drift (workspace-level). A *root* is a non-test
/// library function whose body mentions a `lorm-repro/<name>` schema
/// string. The keys that root emits are the union of `"key":` patterns
/// in string literals across the root and every function reachable from
/// it in the call graph. Both directions are checked against
/// `docs/SCHEMAS.md`: emitted-but-undocumented keys anchor at the
/// emitting literal; documented-but-never-emitted keys (and documented
/// schemas with no emitter) anchor in the doc itself.
pub fn schema_drift(
    files: &[(&FileCtx, &Lexed, &ItemTree)],
    graph: &CallGraph,
    doc: Option<&str>,
) -> Vec<Diagnostic> {
    // Node id → the (file, fn) that owns it, via exact (file, line) match.
    let mut node_of: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        node_of.insert((node.file.clone(), node.line), id);
    }
    // Per-node emitted keys (key, file, line) and per-node schema roots.
    let mut keys_of: BTreeMap<usize, Vec<(String, String, u32)>> = BTreeMap::new();
    struct Root {
        node: usize,
        schema: String,
        file: String,
        line: u32,
    }
    let mut roots: Vec<Root> = Vec::new();
    for (ctx, lexed, items) in files {
        if ctx.class != FileClass::Lib {
            continue;
        }
        for f in &items.fns {
            if f.is_test {
                continue;
            }
            let Some(&node) = node_of.get(&(ctx.rel_path.clone(), f.line)) else { continue };
            let Some((body_start, body_end)) = f.body else { continue };
            for t in &lexed.toks[body_start..body_end.min(lexed.toks.len())] {
                if t.kind != TokKind::Str {
                    continue;
                }
                for key in json_keys(&t.text) {
                    keys_of.entry(node).or_default().push((key, ctx.rel_path.clone(), t.line));
                }
                for schema in schema_names(&t.text) {
                    roots.push(Root { node, schema, file: ctx.rel_path.clone(), line: t.line });
                }
            }
        }
    }

    // Aggregate per schema: every root's closure keys, first-seen site.
    struct Emitted {
        root_file: String,
        root_line: u32,
        keys: BTreeMap<String, (String, u32)>,
    }
    let mut emitted: BTreeMap<String, Emitted> = BTreeMap::new();
    for root in &roots {
        let entry = emitted.entry(root.schema.clone()).or_insert(Emitted {
            root_file: root.file.clone(),
            root_line: root.line,
            keys: BTreeMap::new(),
        });
        // BFS over the call graph from the root.
        let mut seen = vec![false; graph.nodes.len()];
        let mut queue = vec![root.node];
        seen[root.node] = true;
        while let Some(id) = queue.pop() {
            if let Some(keys) = keys_of.get(&id) {
                for (key, file, line) in keys {
                    entry.keys.entry(key.clone()).or_insert((file.clone(), *line));
                }
            }
            for &next in graph.callees(id) {
                if !seen[next] {
                    seen[next] = true;
                    queue.push(next);
                }
            }
        }
    }

    let doc = doc.map(SchemasDoc::parse);
    let mut out = Vec::new();
    const DOC_PATH: &str = "docs/SCHEMAS.md";
    for (schema, em) in &emitted {
        let documented = doc.as_ref().and_then(|d| d.schemas.get(schema));
        let Some((doc_keys, _)) = documented else {
            out.push(Diagnostic {
                lint: "schema-drift".into(),
                file: em.root_file.clone(),
                line: em.root_line,
                message: format!(
                    "schema `{schema}` is emitted here but has no `## ...{schema}` section in \
                     {DOC_PATH}",
                ),
                trace: None,
            });
            continue;
        };
        for (key, (file, line)) in &em.keys {
            if !doc_keys.iter().any(|(k, _)| k == key) {
                out.push(Diagnostic {
                    lint: "schema-drift".into(),
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "key \"{key}\" is emitted for schema `{schema}` but not documented in \
                         {DOC_PATH}",
                    ),
                    trace: None,
                });
            }
        }
        for (key, doc_line) in doc_keys {
            if !em.keys.contains_key(key) {
                out.push(Diagnostic {
                    lint: "schema-drift".into(),
                    file: DOC_PATH.into(),
                    line: *doc_line,
                    message: format!(
                        "key \"{key}\" is documented for schema `{schema}` but never emitted by \
                         its serializer's call closure",
                    ),
                    trace: None,
                });
            }
        }
    }
    if let Some(doc) = &doc {
        for (schema, (_, section_line)) in &doc.schemas {
            if !emitted.contains_key(schema) {
                out.push(Diagnostic {
                    lint: "schema-drift".into(),
                    file: DOC_PATH.into(),
                    line: *section_line,
                    message: format!(
                        "schema `{schema}` is documented but no library serializer emits it",
                    ),
                    trace: None,
                });
            }
        }
    }
    out
}

/// Names bound to floats in this file: `NAME : f64|f32` (fields, params,
/// annotated lets) and `let mut NAME = <rhs containing a float literal or
/// f64/f32 mention before the terminating `;`>`.
fn collect_float_names(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    let is_float_ty = |t: &Tok| t.is_ident("f64") || t.is_ident("f32");
    let is_float_num = |t: &Tok| {
        t.kind == TokKind::Num
            && (t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32"))
    };
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `NAME : f64`
        if i + 2 < toks.len() && toks[i + 1].is_punct(':') && is_float_ty(&toks[i + 2]) {
            names.push(toks[i].text.clone());
            continue;
        }
        // `let mut NAME = <...float...>;`
        if toks[i].is_ident("let")
            && i + 3 < toks.len()
            && toks[i + 1].is_ident("mut")
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].is_punct('=')
        {
            let mut depth = 0i32;
            for t in &toks[i + 4..] {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(';') && depth <= 0 {
                    break;
                } else if is_float_num(t) || is_float_ty(t) {
                    names.push(toks[i + 2].text.clone());
                    break;
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Parse `lint:allow(<name>): <reason>` directives out of the comment
/// stream and resolve each to its target line (the comment's own line for
/// trailing comments, otherwise the next line bearing a token).
fn parse_suppressions(comments: &[Comment], toks: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`, `/**`) only *describe* the directive
        // syntax; a real directive is a plain comment.
        if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
            continue;
        }
        let Some(pos) = c.text.find("lint:allow(") else { continue };
        let rest = &c.text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let name = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let has_reason = after.starts_with(':') && !after[1..].trim().is_empty();
        let trailing = toks.iter().any(|t| t.line == c.line);
        let target_line = if trailing {
            c.line
        } else {
            toks.iter().map(|t| t.line).filter(|&l| l > c.line).min().unwrap_or(c.line)
        };
        out.push(Suppression { name, has_reason, line: c.line, target_line, used: false });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_lib(src: &str) -> FileReport {
        let ctx = FileCtx {
            crate_dir: "resource".into(),
            class: FileClass::Lib,
            rel_path: "crates/resource/src/x.rs".into(),
        };
        lint_file(&ctx, src)
    }

    fn names(r: &FileReport) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.lint.as_str()).collect()
    }

    #[test]
    fn test_dir_files_are_exempt_from_everything() {
        let ctx = FileCtx {
            crate_dir: "resource".into(),
            class: FileClass::TestDir,
            rel_path: "crates/resource/tests/t.rs".into(),
        };
        let r = lint_file(&ctx, "fn t() { let m = HashMap::new(); m.get(0).unwrap(); }");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn bin_files_skip_panic_hygiene_but_sim_bins_do_not_exist() {
        let ctx = FileCtx {
            crate_dir: "bench".into(),
            class: FileClass::Bin,
            rel_path: "crates/bench/src/bin/repro.rs".into(),
        };
        let r = lint_file(&ctx, "fn main() { foo().unwrap(); }");
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn non_sim_crates_keep_hash_maps() {
        let ctx = FileCtx {
            crate_dir: "xtask".into(),
            class: FileClass::Lib,
            rel_path: "crates/xtask/src/x.rs".into(),
        };
        let r = lint_file(&ctx, "use std::collections::HashMap;");
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn float_let_mut_with_cast_is_tracked() {
        let r = sim_lib("fn f(n: usize) -> f64 { let mut acc = n as f64; acc += 1.5; acc }");
        assert_eq!(names(&r), ["float-accumulate"]);
    }

    #[test]
    fn integer_accumulation_is_fine() {
        let r = sim_lib("fn f() -> usize { let mut n = 0usize; n += 1; n }");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn suppression_on_preceding_line_applies() {
        let src = "fn f() -> u64 {\n    // lint:allow(panic-hygiene): value is checked above\n    x.unwrap()\n}";
        let ctx = FileCtx {
            crate_dir: "analysis".into(),
            class: FileClass::Lib,
            rel_path: "crates/analysis/src/x.rs".into(),
        };
        let r = lint_file(&ctx, src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressions_used, 1);
    }

    #[test]
    fn traced_route_in_sim_lib_is_flagged() {
        let r = sim_lib("fn f(o: &O) { let r = o.route(x, k); }");
        assert_eq!(names(&r), ["route-path-alloc"]);
    }

    #[test]
    fn route_stats_and_borrowed_live_nodes_are_fine() {
        let r = sim_lib("fn f(o: &O) { let s = o.route_stats(x, k); let l = o.live_nodes(); }");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn fault_aware_fast_paths_are_fine() {
        // The fault-injection layer's entry points are allocation-free
        // twins of `route_stats` and must not trip the exact-ident
        // `.route(` matcher: `route_stats_faulty`, `route_with_retry`,
        // the faulty walk variants, and `probe_step`.
        let r = sim_lib(
            "fn f(o: &O, p: &FaultPlan, a: &mut FaultAccount) {\n    \
             let s = o.route_stats_faulty(x, k, p, m);\n    \
             let t = dht_core::route_with_retry(o, x, k, p, m, a);\n    \
             let w = h.walk_range_faulty_into(s, lo, hi, p, m, a, out);\n    \
             let g = dht_core::probe_step(p, m, 1, n, a);\n}",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn live_nodes_clone_is_flagged_but_suppressible() {
        let r = sim_lib("fn f(o: &O) { let l = o.live_nodes_cloned(); }");
        assert_eq!(names(&r), ["route-path-alloc"]);
        let r = sim_lib(
            "fn f(o: &mut O) {\n    // lint:allow(route-path-alloc): o is mutated while iterating\n    let l = o.live_nodes_cloned();\n}",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressions_used, 1);
    }

    #[test]
    fn route_blessed_files_may_trace() {
        let ctx = FileCtx {
            crate_dir: "sim".into(),
            class: FileClass::Lib,
            rel_path: "crates/sim/src/experiments/hopdist.rs".into(),
        };
        let r = lint_file(&ctx, "fn f(o: &O) { let r = o.route(x, k); }");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn route_in_test_region_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(o: &O) { o.route(x, k); }\n}";
        let r = sim_lib(src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn build_in_loop_is_flagged() {
        let r = sim_lib(
            "fn f(cfgs: &[SimConfig]) {\n    for c in cfgs {\n        let b = build_system(s, &w, c);\n    }\n}",
        );
        assert_eq!(names(&r), ["bed-rebuild"]);
        let r = sim_lib(
            "fn f(rates: &[f64]) {\n    for _r in rates {\n        let n = Chord::build(64, cfg);\n    }\n}",
        );
        assert_eq!(names(&r), ["bed-rebuild"]);
    }

    #[test]
    fn build_outside_loop_is_fine() {
        let r = sim_lib(
            "fn f() {\n    let b = build_system(s, &w, &c);\n    let n = TestBed::new(c);\n    for q in qs {\n        b.query(q);\n    }\n}",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let r = sim_lib(
            "impl ResourceDiscovery for Lorm {\n    fn f(&self) {\n        let n = Chord::build(64, cfg);\n    }\n}",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn build_in_loop_is_suppressible_and_exempt_in_blessed_files() {
        let r = sim_lib(
            "fn f(cfgs: &[SimConfig]) {\n    for c in cfgs {\n        // lint:allow(bed-rebuild): each sweep point varies the config\n        let b = build_system(s, &w, c);\n    }\n}",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressions_used, 1);
        let ctx = FileCtx {
            crate_dir: "sim".into(),
            class: FileClass::Lib,
            rel_path: "crates/sim/src/cache.rs".into(),
        };
        let r = lint_file(&ctx, "fn f() { loop { let b = build_system(s, &w, &c); break; } }");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn bulk_mode_ctors_in_loops_are_flagged() {
        // The O(n log n) bulk constructors added by the scale work are
        // still full overlay builds — looping over them is the same
        // amortization bug as looping over `::build`.
        let r = sim_lib(
            "fn f(seeds: &[u64]) {\n    for s in seeds {\n        let n = Chord::build_with_mode(64, cfg, mode);\n    }\n}",
        );
        assert_eq!(names(&r), ["bed-rebuild"]);
        let r = sim_lib(
            "fn f(seeds: &[u64]) {\n    for s in seeds {\n        let m = Mercury::new_with_mode(64, &sp, cfg, mode);\n    }\n}",
        );
        assert_eq!(names(&r), ["bed-rebuild"]);
        // Mercury's own construction module is blessed: one ChordHost
        // per hub is its defining structure, not an amortization bug.
        let ctx = FileCtx {
            crate_dir: "baselines".into(),
            class: FileClass::Lib,
            rel_path: "crates/baselines/src/mercury.rs".into(),
        };
        let r = lint_file(
            &ctx,
            "fn f() { for h in 0..m { let hub = ChordHost::build_with_mode(n, s, mode); } }",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn non_ctor_assoc_calls_in_loops_are_fine() {
        let r = sim_lib(
            "fn f() {\n    while go {\n        let id = Chord::ids(7);\n        let s = System::Lorm;\n    }\n}",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn blessed_files_may_accumulate_floats() {
        let ctx = FileCtx {
            crate_dir: "dht-core".into(),
            class: FileClass::Lib,
            rel_path: "crates/dht-core/src/stats.rs".into(),
        };
        let r = lint_file(&ctx, "fn f(x: f64) { let mut total = 0.0; total += x; }");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn county_cast_to_narrow_is_flagged() {
        let r = sim_lib("fn f(n: usize) -> u32 { n as u32 }");
        assert_eq!(names(&r), ["cast-truncation"]);
        let r = sim_lib("fn f(node_count: usize) -> u16 { node_count as u16 }");
        assert_eq!(names(&r), ["cast-truncation"]);
        let r = sim_lib("fn f(v: &[u8]) -> u32 { v.len() as u32 }");
        assert_eq!(names(&r), ["cast-truncation"]);
    }

    #[test]
    fn widening_and_non_county_casts_are_fine() {
        // Widening target, tuple-index projection (prev token is Num),
        // and a non-county name: none should fire.
        let r = sim_lib(
            "fn f(n: usize, j: usize, idx: NodeIdx) -> u64 {\n    \
             let a = n as u64;\n    let b = idx.0 as u32;\n    let c = j as u32;\n    a\n}",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn county_cast_is_suppressible() {
        let r = sim_lib(
            "fn f(n: usize) -> u32 {\n    // lint:allow(cast-truncation): n <= 2^20 by config validation\n    n as u32\n}",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressions_used, 1);
    }

    #[test]
    fn unguarded_arena_read_is_flagged() {
        let r = sim_lib("fn f(&self, i: usize) -> u32 { self.fingers[i] }");
        assert_eq!(names(&r), ["sentinel-guard"]);
    }

    #[test]
    fn guarded_arena_read_is_fine() {
        let r = sim_lib(
            "fn f(&self, i: usize) -> Option<u32> {\n    \
             let v = self.fingers[i];\n    if v == NO_LINK { None } else { Some(v) }\n}",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn pure_arena_store_is_exempt() {
        let r = sim_lib("fn f(&mut self, i: usize, v: u32) { self.fingers[i] = v; }");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        // `==` comparison is a read, not a store.
        let r = sim_lib("fn f(&self, i: usize) -> bool { self.succs[i] == 3 }");
        assert_eq!(names(&r), ["sentinel-guard"]);
    }

    #[test]
    fn json_keys_extracts_escaped_and_raw() {
        assert_eq!(json_keys(r#"{\"schema\": \"x\", \"n\": 3}"#), ["schema", "n"]);
        assert_eq!(json_keys(r#"  "elapsed_ms": {},"#), ["elapsed_ms"]);
        // Values and non-key strings don't count.
        assert!(json_keys(r#"\"lorm-repro/bench-v1\""#).is_empty());
    }

    #[test]
    fn schema_names_finds_all_mentions() {
        assert_eq!(schema_names(r#"{\"schema\": \"lorm-repro/bench-v1\"}"#), ["bench-v1"]);
        assert!(schema_names("no schemas here").is_empty());
    }

    #[test]
    fn schemas_doc_parses_sections_and_keys() {
        let doc = "# Schemas\n\n## lorm-repro/bench-v1\n\nprose\n\n- `schema`\n- `rows`\n\n## other\n- `ignored`\n";
        let parsed = SchemasDoc::parse(doc);
        assert_eq!(parsed.schemas.len(), 1);
        let (keys, section_line) = &parsed.schemas["bench-v1"];
        assert_eq!(*section_line, 3);
        assert_eq!(keys.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(), ["schema", "rows"]);
    }

    #[test]
    fn schema_drift_checks_both_directions() {
        use crate::graph::CallGraph;
        use crate::items::parse_items;
        let src = r#"
            pub fn render(n: usize) -> String {
                let mut s = String::from("{\"schema\": \"lorm-repro/test-v1\",");
                s.push_str(&kv(n));
                s
            }
            fn kv(n: usize) -> String {
                format!("\"count\": {}, \"extra\": 1", n)
            }
        "#;
        let ctx = FileCtx {
            crate_dir: "bench".into(),
            class: FileClass::Lib,
            rel_path: "crates/bench/src/x.rs".into(),
        };
        let lexed = lex(src);
        let items = parse_items(&lexed.toks);
        let graph = CallGraph::build(&[(&ctx, &lexed.toks[..], &items)]);
        let files = [(&ctx, &lexed, &items)];

        // Doc documents `schema`, `count`, and a stale `rows`; the code
        // emits `extra` undocumented.
        let doc = "## lorm-repro/test-v1\n- `schema`\n- `count`\n- `rows`\n";
        let diags = schema_drift(&files, &graph, Some(doc));
        let labels: Vec<(&str, &str)> =
            diags.iter().map(|d| (d.file.as_str(), d.lint.as_str())).collect();
        assert_eq!(
            labels,
            [("crates/bench/src/x.rs", "schema-drift"), ("docs/SCHEMAS.md", "schema-drift")],
            "{diags:?}"
        );
        assert!(diags[0].message.contains("\"extra\""), "{}", diags[0].message);
        assert!(diags[1].message.contains("\"rows\""), "{}", diags[1].message);

        // Matching doc: clean.
        let doc = "## lorm-repro/test-v1\n- `schema`\n- `count`\n- `extra`\n";
        assert!(schema_drift(&files, &graph, Some(doc)).is_empty());

        // Missing section: anchored at the emitting literal; documented
        // orphan section: anchored in the doc.
        let diags = schema_drift(&files, &graph, Some("## lorm-repro/ghost-v1\n- `schema`\n"));
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.file == "crates/bench/src/x.rs" && d.message.contains("no `## ")));
        assert!(diags
            .iter()
            .any(|d| d.file == "docs/SCHEMAS.md" && d.message.contains("no library serializer")));
    }
}
