//! Item-tree parsing on top of the lexer: function, impl, trait, mod and
//! struct spans recovered from the token stream.
//!
//! This is the first of the two analysis layers the reachability-aware
//! lints stand on (the second is the workspace call graph in
//! [`crate::graph`]). It is deliberately a *span* parser, not an AST: each
//! function item records its name, its impl/trait context, its body's
//! token range and line span, and whether it is test code — exactly what
//! name resolution and "which function encloses this diagnostic?" queries
//! need, and nothing more.

use crate::lexer::{in_regions, test_regions, Tok, TokKind};

/// One `fn` item (free function, inherent/trait-impl method, or trait
/// declaration — possibly without a body).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing module path inside the file (`a::b`), empty at the root.
    pub module: String,
    /// Self type when declared inside `impl Type` / `impl Trait for Type`.
    pub self_type: Option<String>,
    /// Trait name when declared inside `impl Trait for Type` or directly
    /// inside `trait Trait { ... }`.
    pub trait_name: Option<String>,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token range of the body block `[open_brace, past_close_brace)`,
    /// or `None` for bodyless declarations (`fn f();`).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (= `line` when bodyless).
    pub end_line: u32,
    /// True for functions inside `#[cfg(test)]` regions / `#[test]` fns —
    /// excluded from the call graph entirely.
    pub is_test: bool,
}

impl FnItem {
    /// Display name with impl context, e.g. `Chord::route_from`.
    pub fn qualified(&self) -> String {
        match (&self.self_type, &self.trait_name) {
            (Some(t), _) => format!("{t}::{}", self.name),
            (None, Some(tr)) => format!("{tr}::{}", self.name),
            (None, None) => self.name.clone(),
        }
    }
}

/// One `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// The self type's base identifier (`Chord` in `impl Overlay for Chord`).
    pub self_type: String,
    /// The implemented trait's base identifier, when this is a trait impl.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// The item tree of one source file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// All function items in source order.
    pub fns: Vec<FnItem>,
    /// All impl block headers in source order.
    pub impls: Vec<ImplItem>,
    /// Names of `struct`/`enum` items declared in the file.
    pub types: Vec<String>,
    /// Names of inline `mod` blocks declared in the file.
    pub mods: Vec<String>,
}

impl ItemTree {
    /// Index (into `fns`) of the innermost function whose line span
    /// contains `line`. Nested fns win over their enclosing fn.
    pub fn enclosing_fn(&self, line: u32) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.line <= line && line <= f.end_line)
            .min_by_key(|(_, f)| f.end_line - f.line)
            .map(|(i, _)| i)
    }
}

/// What kind of scope a `{` opened.
#[derive(Debug)]
enum Scope {
    /// Plain block, closure body, struct body, match arm, ...
    Block,
    Mod,
    Impl,
    Trait,
    /// A function body; holds the index into `ItemTree::fns`.
    Fn(usize),
}

/// Rust keywords that can precede `(` without being calls, and that never
/// name items.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while",
];

/// Is `name` a Rust keyword (so never a call target or a local)?
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Parse the token stream of one file into its item tree.
pub fn parse_items(toks: &[Tok]) -> ItemTree {
    let regions = test_regions(toks);
    let mut tree = ItemTree::default();
    // Parallel stacks: scopes entered (one per `{`), plus the current
    // mod path / impl context derived from them.
    let mut scopes: Vec<Scope> = Vec::new();
    let mut mod_path: Vec<String> = Vec::new();
    let mut impl_stack: Vec<(String, Option<String>)> = Vec::new();
    let mut trait_stack: Vec<String> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            scopes.push(Scope::Block);
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            match scopes.pop() {
                Some(Scope::Mod) => {
                    mod_path.pop();
                }
                Some(Scope::Impl) => {
                    impl_stack.pop();
                }
                Some(Scope::Trait) => {
                    trait_stack.pop();
                }
                Some(Scope::Fn(fi)) => {
                    tree.fns[fi].end_line = t.line;
                    tree.fns[fi].body = tree.fns[fi].body.map(|(s, _)| (s, i + 1));
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let item_pos = i == 0
            || toks[i - 1].is_punct('{')
            || toks[i - 1].is_punct('}')
            || toks[i - 1].is_punct(';')
            || toks[i - 1].is_punct(']')
            || toks[i - 1].is_ident("pub")
            || toks[i - 1].is_punct(')') // `pub(crate)`
            || toks[i - 1].is_ident("unsafe")
            || toks[i - 1].is_ident("default")
            || toks[i - 1].is_ident("const")
            || toks[i - 1].is_ident("async");

        match t.text.as_str() {
            "mod" if i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident => {
                let name = toks[i + 1].text.clone();
                if i + 2 < toks.len() && toks[i + 2].is_punct('{') {
                    tree.mods.push(name.clone());
                    mod_path.push(name);
                    scopes.push(Scope::Mod);
                    i += 3;
                } else {
                    i += 2; // `mod name;` — body lives in another file
                }
                continue;
            }
            "struct" | "enum" if i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident => {
                tree.types.push(toks[i + 1].text.clone());
                i += 2;
                continue;
            }
            "trait" if item_pos && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident => {
                let name = toks[i + 1].text.clone();
                // Skip bounds/generics to the body `{` (or `;` for alias).
                let mut j = i + 2;
                while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('{') {
                    trait_stack.push(name);
                    scopes.push(Scope::Trait);
                    i = j + 1;
                } else {
                    i = j;
                }
                continue;
            }
            "impl" if item_pos => {
                if let Some((hdr, body_open)) = parse_impl_header(toks, i) {
                    tree.impls.push(ImplItem {
                        self_type: hdr.0.clone(),
                        trait_name: hdr.1.clone(),
                        line: t.line,
                    });
                    impl_stack.push(hdr);
                    scopes.push(Scope::Impl);
                    i = body_open + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            "fn" if i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident => {
                let name = toks[i + 1].text.clone();
                let line = t.line;
                // Body opens at the first `{` (or ends at `;`) past the
                // signature, at paren/bracket depth 0. Signatures in this
                // workspace never contain braces before the body.
                let mut depth = 0i32;
                let mut j = i + 2;
                let mut body_open = None;
                while j < toks.len() {
                    let u = &toks[j];
                    if u.is_punct('(') || u.is_punct('[') {
                        depth += 1;
                    } else if u.is_punct(')') || u.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && u.is_punct(';') {
                        break;
                    } else if depth == 0 && u.is_punct('{') {
                        body_open = Some(j);
                        break;
                    }
                    j += 1;
                }
                let (self_type, trait_name) = match impl_stack.last() {
                    Some((t, tr)) => (Some(t.clone()), tr.clone()),
                    None => (None, trait_stack.last().map(|t| t.to_string())),
                };
                let is_test = match body_open {
                    Some(b) => in_regions(b, &regions),
                    None => in_regions(i, &regions),
                };
                tree.fns.push(FnItem {
                    name,
                    module: mod_path.join("::"),
                    self_type,
                    trait_name,
                    sig_start: i,
                    body: body_open.map(|b| (b, b)),
                    line,
                    end_line: toks.get(j).map(|u| u.line).unwrap_or(line),
                    is_test,
                });
                if let Some(b) = body_open {
                    scopes.push(Scope::Fn(tree.fns.len() - 1));
                    i = b + 1;
                } else {
                    i = j;
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    tree
}

/// Parse an `impl` header starting at the `impl` token. Returns
/// `((self_type, trait_name), index of the body's '{')`, or `None` when no
/// body block is found (e.g. `impl Trait for Type;` never occurs here).
fn parse_impl_header(toks: &[Tok], impl_at: usize) -> Option<((String, Option<String>), usize)> {
    let mut j = impl_at + 1;
    // Skip leading generic parameters `impl<...>`.
    if j < toks.len() && toks[j].is_punct('<') {
        let mut angle = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                angle += 1;
            } else if toks[j].is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect path segments up to `for` / `where` / `{`, tracking the
    // base ident of each path at angle depth 0.
    let mut first_base: Option<String> = None;
    let mut second_base: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0i32;
    while j < toks.len() {
        let u = &toks[j];
        if u.is_punct('<') {
            angle += 1;
        } else if u.is_punct('>') {
            angle -= 1;
        } else if angle == 0 {
            if u.is_punct('{') {
                return impl_header_parts(saw_for, &first_base, &second_base, j);
            }
            if u.is_ident("for") {
                saw_for = true;
            } else if u.is_ident("where") {
                // Bounds until the body; keep scanning for `{` only.
                let mut k = j + 1;
                let mut a = 0i32;
                while k < toks.len() {
                    if toks[k].is_punct('<') {
                        a += 1;
                    } else if toks[k].is_punct('>') {
                        a -= 1;
                    } else if a <= 0 && toks[k].is_punct('{') {
                        return impl_header_parts(saw_for, &first_base, &second_base, k);
                    }
                    k += 1;
                }
                return None;
            } else if u.kind == TokKind::Ident && !is_keyword(&u.text) {
                // Last ident of the path at depth 0 wins (skips `crate::`
                // etc. — path separators just overwrite the base).
                if saw_for {
                    second_base = Some(u.text.clone());
                } else {
                    first_base = Some(u.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

/// Assemble the `(self_type, trait_name)` pair from the collected path
/// bases once the body `{` is found: `impl Trait for Type` puts the trait
/// first and the type second; `impl Type` has only the first path.
fn impl_header_parts(
    saw_for: bool,
    first: &Option<String>,
    second: &Option<String>,
    body: usize,
) -> Option<((String, Option<String>), usize)> {
    if saw_for {
        second.clone().map(|t| ((t, first.clone()), body))
    } else {
        first.clone().map(|t| ((t, None), body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src).toks).fns
    }

    #[test]
    fn free_fns_and_line_spans() {
        let src = "fn a() {\n    b();\n}\n\nfn b() {}\n";
        let f = fns(src);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].name.as_str(), f[0].line, f[0].end_line), ("a", 1, 3));
        assert_eq!((f[1].name.as_str(), f[1].line, f[1].end_line), ("b", 5, 5));
        assert!(f[0].self_type.is_none() && f[0].trait_name.is_none());
    }

    #[test]
    fn inherent_and_trait_impl_context() {
        let src = "impl Chord {\n    fn route_from(&self) {}\n}\n\
                   impl Overlay for Chord {\n    fn route(&self) {}\n}\n\
                   impl<K: Ord> Directory<K> {\n    fn insert(&mut self, k: K) {}\n}";
        let f = fns(src);
        assert_eq!(f[0].qualified(), "Chord::route_from");
        assert_eq!(f[1].self_type.as_deref(), Some("Chord"));
        assert_eq!(f[1].trait_name.as_deref(), Some("Overlay"));
        assert_eq!(f[2].qualified(), "Directory::insert");
    }

    #[test]
    fn trait_default_methods_carry_the_trait_name() {
        let src = "trait Overlay {\n    fn len(&self) -> usize;\n    fn is_empty(&self) -> bool {\n        self.len() == 0\n    }\n}";
        let f = fns(src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].trait_name.as_deref(), Some("Overlay"));
        assert!(f[0].body.is_none(), "declaration has no body");
        assert_eq!(f[1].name, "is_empty");
        assert!(f[1].body.is_some());
    }

    #[test]
    fn nested_mods_and_fns_resolve_innermost() {
        let src = "mod outer {\n    fn a() {\n        fn inner() {}\n        inner();\n    }\n}";
        let tree = parse_items(&lex(src).toks);
        assert_eq!(tree.mods, ["outer"]);
        assert_eq!(tree.fns[0].module, "outer");
        let inner = tree.enclosing_fn(3).unwrap();
        assert_eq!(tree.fns[inner].name, "inner");
        let a = tree.enclosing_fn(4).unwrap();
        assert_eq!(tree.fns[a].name, "a");
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_block() {
        let src = "fn ids(&self) -> impl Iterator<Item = u32> + '_ {\n    (0..3).map(|i| i)\n}";
        let tree = parse_items(&lex(src).toks);
        assert!(tree.impls.is_empty(), "{:?}", tree.impls);
        assert_eq!(tree.fns.len(), 1);
        assert_eq!(tree.fns[0].end_line, 3);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}";
        let f = fns(src);
        assert!(!f[0].is_test);
        assert!(f[1].is_test);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn hof(f: fn(u32) -> u32, g: impl Fn(u32)) -> u32 {\n    f(1)\n}";
        let f = fns(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "hof");
    }

    #[test]
    fn struct_and_enum_names_collected() {
        let src = "pub struct Chord { ids: Vec<u64> }\nenum Mode { A, B }";
        let tree = parse_items(&lex(src).toks);
        assert_eq!(tree.types, ["Chord", "Mode"]);
    }

    #[test]
    fn where_clauses_do_not_confuse_impl_bodies() {
        let src = "impl<T> Holder<T> where T: Ord {\n    fn get(&self) -> &T { &self.0 }\n}";
        let f = fns(src);
        assert_eq!(f[0].qualified(), "Holder::get");
    }
}
