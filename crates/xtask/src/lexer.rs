//! A minimal, hand-rolled Rust tokenizer.
//!
//! The lint registry must never fire on text inside string literals, char
//! literals, or comments (doc comments routinely *mention* `HashMap` or
//! `.unwrap()` while explaining why the code avoids them). A regex over
//! raw source cannot make that distinction; this lexer can, and it stays
//! dependency-free because the build environment is offline.
//!
//! It is deliberately not a full Rust lexer: it recognizes exactly the
//! token shapes the lints need — identifiers, single-character
//! punctuation, numeric / string / char literals, lifetimes — each tagged
//! with its 1-based source line, plus the comment stream (suppression
//! directives live in comments).

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `let`, `unwrap`, …).
    Ident,
    /// Numeric literal, full text including any suffix (`0.0`, `1u64`).
    Num,
    /// String or byte-string literal, raw or cooked.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// One punctuation character (`.`, `+`, `{`, …).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (raw identifiers are stored without the `r#` prefix;
    /// string literals keep their body with delimiters stripped and
    /// escape sequences left raw — the schema-drift lint scans JSON
    /// serializer literals for emitted keys).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this the given single punctuation character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this the given identifier?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// One comment (line or block), with the delimiters stripped.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without `//` / `/*` / `*/`.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unrecognized bytes become punctuation and
/// unterminated literals run to end of file (the lints stay sound either
/// way — a file that broken will not compile).
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < n {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && cs[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && cs[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment { text: cs[start..j].iter().collect(), line });
            i = j;
            continue;
        }
        if c == '/' && i + 1 < n && cs[i + 1] == '*' {
            let lstart = line;
            let start = i + 2;
            let mut depth = 1u32;
            let mut j = start;
            while j < n && depth > 0 {
                if cs[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if cs[j] == '/' && j + 1 < n && cs[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if cs[j] == '*' && j + 1 < n && cs[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = if depth == 0 { j - 2 } else { j };
            out.comments.push(Comment { text: cs[start..end].iter().collect(), line: lstart });
            i = j;
            continue;
        }
        // Raw strings and byte strings: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        if c == 'r' || c == 'b' {
            if let Some((j, lines, (bs, be))) = try_string_prefix(&cs, i) {
                out.toks.push(Tok { kind: TokKind::Str, text: cs[bs..be].iter().collect(), line });
                line += lines;
                i = j;
                continue;
            }
            if c == 'b' && i + 1 < n && cs[i + 1] == '\'' {
                let (j, lines) = scan_char_body(&cs, i + 2);
                out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                line += lines;
                i = j;
                continue;
            }
            // Raw identifier `r#name`.
            if c == 'r' && i + 2 < n && cs[i + 1] == '#' && is_ident_start(cs[i + 2]) {
                let mut j = i + 2;
                while j < n && is_ident_cont(cs[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: cs[i + 2..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
        }
        // Cooked string.
        if c == '"' {
            let (j, lines) = scan_cooked_string(&cs, i + 1);
            let body_end = if j > i + 1 && cs[j - 1] == '"' { j - 1 } else { j };
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: cs[i + 1..body_end].iter().collect(),
                line,
            });
            line += lines;
            i = j;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            if i + 1 < n && is_ident_start(cs[i + 1]) && (i + 2 >= n || cs[i + 2] != '\'') {
                let mut j = i + 1;
                while j < n && is_ident_cont(cs[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: cs[i + 1..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            let (j, lines) = scan_char_body(&cs, i + 1);
            out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
            line += lines;
            i = j;
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let mut j = i;
            let mut seen_dot = false;
            while j < n {
                let d = cs[j];
                if is_ident_cont(d) {
                    j += 1;
                } else if d == '.' && !seen_dot && j + 1 < n && cs[j + 1].is_ascii_digit() {
                    seen_dot = true;
                    j += 1;
                } else if (d == '+' || d == '-')
                    && j > i
                    && matches!(cs[j - 1], 'e' | 'E')
                    && j + 1 < n
                    && cs[j + 1].is_ascii_digit()
                {
                    j += 1;
                } else {
                    break;
                }
            }
            // `2.0` keeps its dot even when followed by `.method()`: the
            // char after the consumed dot was a digit, so `1..5` stays two
            // separate tokens while `2.5` lexes whole.
            out.toks.push(Tok { kind: TokKind::Num, text: cs[i..j].iter().collect(), line });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_cont(cs[j]) {
                j += 1;
            }
            out.toks.push(Tok { kind: TokKind::Ident, text: cs[i..j].iter().collect(), line });
            i = j;
            continue;
        }
        // Everything else: one punctuation character.
        out.toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    out
}

/// If position `i` starts a (possibly raw, possibly byte) string literal,
/// scan it and return `(index after it, newlines inside, body range)`.
fn try_string_prefix(cs: &[char], i: usize) -> Option<(usize, u32, (usize, usize))> {
    let n = cs.len();
    let mut j = i;
    if j < n && cs[j] == 'b' {
        j += 1;
    }
    let raw = j < n && cs[j] == 'r';
    if raw {
        j += 1;
        let mut hashes = 0usize;
        while j < n && cs[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || cs[j] != '"' {
            return None;
        }
        j += 1;
        let body_start = j;
        let mut lines = 0u32;
        while j < n {
            if cs[j] == '\n' {
                lines += 1;
                j += 1;
                continue;
            }
            if cs[j] == '"'
                && cs[j + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes
            {
                return Some((j + 1 + hashes, lines, (body_start, j)));
            }
            j += 1;
        }
        return Some((n, lines, (body_start, n)));
    }
    if j >= n || cs[j] != '"' || j == i {
        // plain `"` is handled by the caller; require a b/r prefix here
        return None;
    }
    let (end, lines) = scan_cooked_string(cs, j + 1);
    let body_end = if end > j + 1 && cs[end - 1] == '"' { end - 1 } else { end };
    Some((end, lines, (j + 1, body_end)))
}

/// Scan a cooked string body starting just after the opening quote.
/// Returns `(index after the closing quote, newlines inside)`.
fn scan_cooked_string(cs: &[char], mut j: usize) -> (usize, u32) {
    let n = cs.len();
    let mut lines = 0u32;
    while j < n {
        match cs[j] {
            '\\' => {
                // An escaped newline (line continuation) still ends a line.
                if j + 1 < n && cs[j + 1] == '\n' {
                    lines += 1;
                }
                j += 2;
            }
            '"' => return (j + 1, lines),
            '\n' => {
                lines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, lines)
}

/// Scan a char-literal body starting just after the opening quote.
fn scan_char_body(cs: &[char], mut j: usize) -> (usize, u32) {
    let n = cs.len();
    let mut lines = 0u32;
    while j < n {
        match cs[j] {
            '\\' => j += 2,
            '\'' => return (j + 1, lines),
            '\n' => {
                lines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, lines)
}

/// Byte ranges (as token-index ranges `[start, end)`) of `#[cfg(test)]` /
/// `#[test]` item bodies. Tokens inside these ranges are test code and
/// exempt from the library-code lints.
///
/// Heuristic: an attribute whose bracket contains the identifier `test`
/// and does not contain `not` (so `#[cfg(not(test))]` keeps its body
/// linted) marks the next item; the item's body is the brace block that
/// follows at delimiter depth zero.
pub fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let (idents, after) = scan_attr(toks, i + 1);
        let is_test = idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not");
        if !is_test {
            i = after;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = after;
        while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            let (_, next) = scan_attr(toks, j + 1);
            j = next;
        }
        // Find the item body `{`, or `;` (no body), at delimiter depth 0.
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                break; // `#[cfg(test)] mod tests;` — body lives elsewhere
            } else if t.is_punct('{') && depth == 0 {
                let mut bd = 1i32;
                let mut k = j + 1;
                while k < toks.len() && bd > 0 {
                    if toks[k].is_punct('{') {
                        bd += 1;
                    } else if toks[k].is_punct('}') {
                        bd -= 1;
                    }
                    k += 1;
                }
                out.push((j, k));
                j = k;
                break;
            }
            j += 1;
        }
        i = j.max(after);
    }
    out
}

/// Scan an attribute starting at its `[` token. Returns the identifiers
/// inside and the index just past the matching `]`.
fn scan_attr(toks: &[Tok], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (idents, j + 1);
            }
        } else if t.kind == TokKind::Ident {
            idents.push(t.text.clone());
        }
        j += 1;
    }
    (idents, toks.len())
}

/// Is token index `idx` inside any of the given regions?
pub fn in_regions(idx: usize, regions: &[(usize, usize)]) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // HashMap in a comment
            /* and .unwrap() in /* a nested */ block */
            let s = "HashMap::new() // not a comment";
            let r = r#"thread_rng "quoted" inside raw"#;
            let c = '"';
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap"), "{ids:?}");
        assert!(!ids.iter().any(|s| s == "unwrap"));
        assert!(!ids.iter().any(|s| s == "thread_rng"));
        assert!(ids.iter().any(|s| s == "BTreeMap"));
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn escaped_quote_chars() {
        let l = lex(r"let q = '\''; let b = b'\n'; let after = 1;");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert!(l.toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn float_literals_lex_whole_but_ranges_split() {
        let l = lex("let a = 2.5; for i in 1..5 { } let e = 1.5e-3;");
        let nums: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.as_str()).collect();
        assert_eq!(nums, ["2.5", "1", "5", "1.5e-3"]);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"one\ntwo\";\nlet b = 1; /* x\ny */ let c = 2;";
        let l = lex(src);
        let b = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
        let c = l.toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 4);
    }

    #[test]
    fn test_region_covers_cfg_test_mod() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let l = lex(src);
        let regions = test_regions(&l.toks);
        assert_eq!(regions.len(), 1);
        let unwraps: Vec<usize> = l
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!in_regions(unwraps[0], &regions), "library unwrap is outside");
        assert!(in_regions(unwraps[1], &regions), "test unwrap is inside");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real { fn f() { x.unwrap(); } }";
        let l = lex(src);
        assert!(test_regions(&l.toks).is_empty());
    }

    #[test]
    fn stacked_attributes_still_find_the_body() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { panic!(\"boom\") }";
        let l = lex(src);
        let regions = test_regions(&l.toks);
        assert_eq!(regions.len(), 1);
        let p = l.toks.iter().position(|t| t.is_ident("panic")).unwrap();
        assert!(in_regions(p, &regions));
    }

    #[test]
    fn string_literals_keep_their_bodies() {
        let src = r####"let a = "{\"schema\":\"x\"}"; let b = r#"raw "body""#;"####;
        let l = lex(src);
        let strs: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text.as_str()).collect();
        assert_eq!(strs, [r#"{\"schema\":\"x\"}"#, r#"raw "body""#]);
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        let l = lex("let r#type = 1;");
        assert!(l.toks.iter().any(|t| t.is_ident("type")));
    }
}
