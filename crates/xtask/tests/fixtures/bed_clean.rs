//! Fixture: builds hoisted out of loops, cache lookups inside them, and
//! `impl Trait for Type` headers must all stay quiet.

impl ResourceDiscovery for Lorm {
    fn rebuild(&mut self) {
        // `for` above is a trait-impl header, not a loop.
        let _net = Cycloid::build(8, CycloidConfig::default());
    }
}

pub fn sweep(points: &[usize], cfg: SimConfig, cache: &BedCache) -> Vec<usize> {
    // Build once, reuse per point: the pattern the lint enforces.
    let bed = TestBed::new(cfg);
    let mut out = Vec::new();
    for _arity in points {
        let shared = cache.bed(cfg);
        let snap = bed.snapshot();
        out.push(shared.systems.len() + snap_len(snap));
    }
    // Associated calls that are not constructors are fine in loops.
    while out.len() < 8 {
        out.push(Chord::ids(7));
    }
    out
}
