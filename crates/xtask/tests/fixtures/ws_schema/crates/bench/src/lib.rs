//! schema-drift cases: an undocumented emitted key (reached through a
//! helper in the call closure), a stale documented key, and a
//! suppressed undocumented key on a second schema.

pub fn render_fix() -> String {
    let mut s = String::new();
    s.push_str("{\"schema\": \"lorm-repro/fix-v1\", ");
    s.push_str("\"count\": 1, ");
    push_extra(&mut s);
    s.push('}');
    s
}

fn push_extra(out: &mut String) {
    out.push_str("\"extra_key\": 2");
}

pub fn render_sup() -> String {
    let mut s = String::from("{\"schema\": \"lorm-repro/sup-v1\", ");
    // lint:allow(schema-drift): experimental key, intentionally undocumented
    s.push_str("\"wip_key\": 3}");
    s
}
