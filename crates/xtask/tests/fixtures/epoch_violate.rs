//! Fixture: overlay-state writes that never bump the epoch. Each
//! mutation shape fires once: plain assignment, indexed store, in-place
//! mutator call, and a handed-out `&mut` borrow.

pub struct Net {
    fingers: Vec<u32>,
    succs: Vec<u32>,
    alive: Vec<bool>,
    sorted: Vec<u32>,
    epoch: u64,
}

impl Net {
    pub fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    pub fn resort(&mut self, order: Vec<u32>) {
        self.sorted = order;
    }

    pub fn overwrite_finger(&mut self, i: usize, v: u32) {
        self.fingers[i] = v;
    }

    pub fn clear_alive(&mut self) {
        self.alive.clear();
    }

    pub fn lend_succs(&mut self) -> &mut Vec<u32> {
        &mut self.succs
    }
}
