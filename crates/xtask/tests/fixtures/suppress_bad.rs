//! Fixture: malformed suppressions — unknown lint name, missing reason.

pub fn a(v: Option<u32>) -> u32 {
    // lint:allow(no-such-lint): reasons do not save unknown names.
    v.unwrap_or(0)
}

pub fn b(v: Option<u32>) -> u32 {
    // lint:allow(panic-hygiene)
    v.expect("missing reason must not suppress")
}
