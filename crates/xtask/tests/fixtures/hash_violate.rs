//! Fixture: HashMap/HashSet in simulation-path library code must fire.
use std::collections::{HashMap, HashSet};

pub struct Store {
    by_key: HashMap<u64, Vec<u32>>,
    seen: HashSet<u64>,
}

#[cfg(test)]
mod tests {
    // Exempt: test code may use hash collections freely.
    use std::collections::HashMap;

    #[test]
    fn t() {
        let _m: HashMap<u8, u8> = HashMap::new();
    }
}
