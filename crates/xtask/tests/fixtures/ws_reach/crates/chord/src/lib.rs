//! Reachability-retirement cases: `hot` is reachable from the sim
//! entry so its traced-route finding fires (with a call-path trace);
//! `cold` is unreachable, its finding is dropped, and the suppression
//! it still carries must report as unused.

pub struct Overlay;

impl Overlay {
    pub fn route(&self, _k: u32) -> Vec<u32> {
        Vec::new()
    }
}

pub fn hot(o: &Overlay) -> usize {
    o.route(7).len()
}

pub fn cold(o: &Overlay) -> usize {
    // lint:allow(route-path-alloc): retired — cold is unreachable
    o.route(9).len()
}
