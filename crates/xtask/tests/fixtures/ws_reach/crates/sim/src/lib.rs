//! Entry crate for the reachability-retirement fixture workspace.

pub fn run_batch_sharded(o: &Overlay) -> usize {
    hot(o)
}
