//! Fixture: non-panicking lookalikes and test-only panics are fine.

pub fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

pub fn pick(v: Option<u32>) -> u32 {
    v.unwrap_or_else(|| 7)
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn panics_in_tests_are_fine() {
        let v: Option<u32> = None;
        v.unwrap();
        panic!("boom");
    }
}
