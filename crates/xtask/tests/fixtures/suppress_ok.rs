//! Fixture: a reasoned suppression silences the finding — preceding-line
//! and trailing forms both work.

pub fn must(v: Option<u32>) -> u32 {
    // lint:allow(panic-hygiene): the caller validated v above.
    v.expect("validated")
}

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap() // lint:allow(panic-hygiene): slice is never empty here.
}
