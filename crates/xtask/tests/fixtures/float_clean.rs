//! Fixture: integer accumulation and non-`+=` float math are fine.

pub fn count(samples: &[f64]) -> usize {
    let mut n = 0usize;
    for s in samples {
        if *s > 0.0 {
            n += 1;
        }
    }
    n
}

pub fn mean(samples: &[f64]) -> f64 {
    let total: f64 = samples.iter().sum();
    total / samples.len().max(1) as f64
}
