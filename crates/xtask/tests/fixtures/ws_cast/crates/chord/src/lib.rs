//! cast-truncation cases: one reachable violation, one unreachable
//! violation (dropped by the reachability filter), one suppressed, and
//! widening/non-county casts that never fire.

pub fn reachable_cast(n: usize) -> u32 {
    n as u32
}

pub fn unreachable_cast(count: usize) -> u32 {
    count as u32
}

pub fn suppressed_cast(n: usize) -> u32 {
    // lint:allow(cast-truncation): n <= 2^20 by config validation
    n as u32
}

pub fn widened(n: usize) -> u64 {
    let j = n;
    (n as u64) + (j as u64)
}
