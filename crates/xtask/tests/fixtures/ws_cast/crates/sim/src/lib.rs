//! Entry crate for the cast-truncation fixture workspace.

pub fn run_batch_sharded(n: usize) -> u64 {
    widened(n) + u64::from(reachable_cast(n)) + u64::from(suppressed_cast(n))
}
