//! Fixture: wall-clock time and ambient entropy must fire.
use std::time::Instant;

pub fn elapsed() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

pub fn draw() -> f64 {
    rand::random()
}

pub fn seed_from_env() -> u64 {
    std::env::var("SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}
