//! Fixture: a suppression that matches nothing is itself an error.

pub fn fine(v: Option<u32>) -> u32 {
    // lint:allow(panic-hygiene): nothing here actually panics.
    v.unwrap_or(0)
}
