//! Entry crate for the sentinel-guard fixture workspace.

pub fn run_batch_sharded(r: &Ring, w: &mut Ring) -> u32 {
    w.store(0, 1);
    r.read_unguarded(0) + r.read_guarded(0).unwrap_or(0) + r.read_suppressed(0)
}
