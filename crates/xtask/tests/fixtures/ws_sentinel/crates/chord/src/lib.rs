//! sentinel-guard cases: an unguarded arena read (fires), a guarded
//! read, a suppressed read, and a pure store (exempt).

pub const NO_LINK: u32 = u32::MAX;

pub struct Ring {
    fingers: Vec<u32>,
    succs: Vec<u32>,
}

impl Ring {
    pub fn read_unguarded(&self, i: usize) -> u32 {
        self.fingers[i]
    }

    pub fn read_guarded(&self, i: usize) -> Option<u32> {
        let v = self.succs[i];
        (v != NO_LINK).then_some(v)
    }

    pub fn read_suppressed(&self, i: usize) -> u32 {
        // lint:allow(sentinel-guard): caller filters NO_LINK entries
        self.fingers[i]
    }

    pub fn bump_epoch(&mut self) {}

    pub fn store(&mut self, i: usize, v: u32) {
        self.fingers[i] = v;
        self.bump_epoch();
    }
}
