//! Fixture: raw float accumulation must fire.

pub fn total(samples: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &s in samples {
        sum += s;
    }
    sum
}

pub fn scaled(n: usize) -> f64 {
    let mut acc = n as f64;
    acc += 0.5;
    acc
}
