//! schema-drift clean case: the emitted keys and the catalogue match
//! exactly, both directions.

pub fn render_fix() -> String {
    let mut s = String::from("{\"schema\": \"lorm-repro/fix-v1\", ");
    s.push_str("\"count\": 1}");
    s
}
