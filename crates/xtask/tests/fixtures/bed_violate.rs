//! Fixture: overlay/system construction inside loops in simulation-path
//! library code must fire — each site rebuilds a bed the cache could
//! have cloned or shared.

pub fn sweep(points: &[usize], workload: &Workload, cfg: &SimConfig) -> Vec<usize> {
    let mut out = Vec::new();
    for _arity in points {
        let sys = build_system(System::Lorm, workload, cfg);
        out.push(sys.total_pieces());
    }
    let mut r = 0usize;
    while r < 4 {
        let net = Chord::build(64, ChordConfig::default());
        out.push(net.len());
        r += 1;
    }
    loop {
        let bed = TestBed::new(*cfg);
        out.push(bed.systems.len());
        break;
    }
    out
}

#[cfg(test)]
mod tests {
    // Exempt: test code may rebuild beds freely.
    #[test]
    fn t() {
        for _ in 0..2 {
            let _ = TestBed::new(SimConfig::default());
        }
    }
}
