//! Fixture: BTree collections are fine, and doc text that merely says
//! HashMap (like this sentence) must not fire.
use std::collections::{BTreeMap, BTreeSet};

/// Not a finding: "HashMap" appears only in this doc comment and in the
/// string below.
pub struct Store {
    by_key: BTreeMap<u64, Vec<u32>>,
    seen: BTreeSet<u64>,
}

pub const NOTE: &str = "HashMap is forbidden here";
