//! Fixture: unwrap/expect/panic! in library code must fire.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("caller promised Some")
}

pub fn boom() {
    panic!("unreachable");
}
