//! Fixture: every overlay-state write bumps the epoch, and read-only
//! uses (indexing, comparisons, non-mutating methods, match arms) never
//! count as mutations in the first place.

pub struct Net {
    fingers: Vec<u32>,
    alive: Vec<bool>,
    epoch: u64,
}

impl Net {
    pub fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    pub fn set_finger(&mut self, i: usize, v: u32) {
        self.fingers[i] = v;
        self.bump_epoch();
    }

    pub fn mark_dead(&mut self, i: usize) {
        self.alive[i] = false;
        self.bump_epoch();
    }

    pub fn is_alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    pub fn same_links(&self, other: &Net) -> bool {
        self.fingers == other.fingers
    }

    pub fn first_live(&self, p: u32) -> Option<u32> {
        match p {
            p if self.alive[p as usize] => Some(p),
            _ => None,
        }
    }
}
