//! Fixture: seeded sampling is fine; "Instant" in strings/docs is fine.
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Doc text mentioning Instant::now() must not fire.
pub fn draw(seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen_range(0.0..1.0)
}

pub const NOTE: &str = "Instant and SystemTime are banned";

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = std::time::Instant::now();
    }
}
