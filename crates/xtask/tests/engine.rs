//! End-to-end tests of the lint engine: each fixture under
//! `tests/fixtures/` exercises one lint (or the suppression machinery),
//! and the final test holds the real workspace to zero findings.

use std::path::{Path, PathBuf};

use xtask::lints::{lint_file, FileClass, FileCtx, FileReport};
use xtask::{lint_workspace, render_json};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Run a fixture as if it were simulation-path library code.
fn run(name: &str) -> FileReport {
    let ctx = FileCtx {
        crate_dir: "resource".into(),
        class: FileClass::Lib,
        rel_path: format!("crates/resource/src/{name}"),
    };
    lint_file(&ctx, &fixture(name))
}

fn lint_names(r: &FileReport) -> Vec<&str> {
    r.diagnostics.iter().map(|d| d.lint.as_str()).collect()
}

#[test]
fn hash_collections_fires_on_violation() {
    let r = run("hash_violate.rs");
    assert_eq!(lint_names(&r), vec!["hash-collections"; 4], "{:?}", r.diagnostics);
}

#[test]
fn hash_collections_quiet_on_clean_file() {
    let r = run("hash_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn wall_clock_fires_on_violation() {
    let r = run("wallclock_violate.rs");
    let names = lint_names(&r);
    assert_eq!(names.iter().filter(|&&n| n == "wall-clock").count(), 4, "{:?}", r.diagnostics);
    assert!(names.iter().all(|&n| n == "wall-clock"), "{:?}", r.diagnostics);
}

#[test]
fn wall_clock_quiet_on_seeded_sampling() {
    let r = run("wallclock_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn panic_hygiene_fires_on_violation() {
    let r = run("panic_violate.rs");
    assert_eq!(lint_names(&r), vec!["panic-hygiene"; 3], "{:?}", r.diagnostics);
}

#[test]
fn panic_hygiene_quiet_on_lookalikes_and_tests() {
    let r = run("panic_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn float_accumulate_fires_on_violation() {
    let r = run("float_violate.rs");
    assert_eq!(lint_names(&r), vec!["float-accumulate"; 2], "{:?}", r.diagnostics);
}

#[test]
fn float_accumulate_quiet_on_integer_and_sum() {
    let r = run("float_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn bed_rebuild_fires_on_violation() {
    let r = run("bed_violate.rs");
    assert_eq!(lint_names(&r), vec!["bed-rebuild"; 3], "{:?}", r.diagnostics);
}

#[test]
fn bed_rebuild_quiet_on_hoisted_builds_and_impl_for() {
    let r = run("bed_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn bed_rebuild_exempt_in_blessed_construction_modules() {
    let ctx = FileCtx {
        crate_dir: "sim".into(),
        class: FileClass::Lib,
        rel_path: "crates/sim/src/setup.rs".into(),
    };
    let r = lint_file(&ctx, &fixture("bed_violate.rs"));
    assert!(!r.diagnostics.iter().any(|d| d.lint == "bed-rebuild"), "{:?}", r.diagnostics);
}

#[test]
fn reasoned_suppressions_silence_findings() {
    let r = run("suppress_ok.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressions_used, 2);
}

#[test]
fn unused_suppression_is_an_error() {
    let r = run("suppress_unused.rs");
    assert_eq!(lint_names(&r), ["unused-suppression"], "{:?}", r.diagnostics);
}

#[test]
fn malformed_suppressions_are_errors_and_do_not_suppress() {
    let r = run("suppress_bad.rs");
    let mut names = lint_names(&r);
    names.sort();
    assert_eq!(
        names,
        ["bad-suppression", "bad-suppression", "panic-hygiene"],
        "{:?}",
        r.diagnostics
    );
    assert_eq!(r.suppressions_used, 0);
}

#[test]
fn fixtures_do_not_fire_outside_sim_crates_or_lib_class() {
    // The same violating source is exempt in a non-simulation crate...
    let ctx = FileCtx {
        crate_dir: "bench".into(),
        class: FileClass::Lib,
        rel_path: "crates/bench/src/x.rs".into(),
    };
    let r = lint_file(&ctx, &fixture("hash_violate.rs"));
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    // ...and in a sim crate's integration tests.
    let ctx = FileCtx {
        crate_dir: "resource".into(),
        class: FileClass::TestDir,
        rel_path: "crates/resource/tests/x.rs".into(),
    };
    let r = lint_file(&ctx, &fixture("panic_violate.rs"));
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

/// The real workspace must stay clean — this is the same gate CI runs.
#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("scan workspace");
    assert!(report.files_scanned > 50, "walker found too few files: {}", report.files_scanned);
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.lint, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let json = render_json(&report);
    assert!(json.contains("\"schema\": \"lorm-repro/lint-v1\""));
    assert!(json.contains("\"clean\": true"));
}
