//! End-to-end tests of the lint engine: each fixture under
//! `tests/fixtures/` exercises one lint (or the suppression machinery),
//! and the final test holds the real workspace to zero findings.

use std::path::{Path, PathBuf};

use xtask::lints::{lint_file, FileClass, FileCtx, FileReport};
use xtask::{lint_workspace, render_json, render_json_v2, LintReport};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Run a fixture as if it were simulation-path library code.
fn run(name: &str) -> FileReport {
    let ctx = FileCtx {
        crate_dir: "resource".into(),
        class: FileClass::Lib,
        rel_path: format!("crates/resource/src/{name}"),
    };
    lint_file(&ctx, &fixture(name))
}

fn lint_names(r: &FileReport) -> Vec<&str> {
    r.diagnostics.iter().map(|d| d.lint.as_str()).collect()
}

#[test]
fn hash_collections_fires_on_violation() {
    let r = run("hash_violate.rs");
    assert_eq!(lint_names(&r), vec!["hash-collections"; 4], "{:?}", r.diagnostics);
}

#[test]
fn hash_collections_quiet_on_clean_file() {
    let r = run("hash_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn wall_clock_fires_on_violation() {
    let r = run("wallclock_violate.rs");
    let names = lint_names(&r);
    assert_eq!(names.iter().filter(|&&n| n == "wall-clock").count(), 4, "{:?}", r.diagnostics);
    assert!(names.iter().all(|&n| n == "wall-clock"), "{:?}", r.diagnostics);
}

#[test]
fn wall_clock_quiet_on_seeded_sampling() {
    let r = run("wallclock_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn panic_hygiene_fires_on_violation() {
    let r = run("panic_violate.rs");
    assert_eq!(lint_names(&r), vec!["panic-hygiene"; 3], "{:?}", r.diagnostics);
}

#[test]
fn panic_hygiene_quiet_on_lookalikes_and_tests() {
    let r = run("panic_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn float_accumulate_fires_on_violation() {
    let r = run("float_violate.rs");
    assert_eq!(lint_names(&r), vec!["float-accumulate"; 2], "{:?}", r.diagnostics);
}

#[test]
fn float_accumulate_quiet_on_integer_and_sum() {
    let r = run("float_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn bed_rebuild_fires_on_violation() {
    let r = run("bed_violate.rs");
    assert_eq!(lint_names(&r), vec!["bed-rebuild"; 3], "{:?}", r.diagnostics);
}

#[test]
fn bed_rebuild_quiet_on_hoisted_builds_and_impl_for() {
    let r = run("bed_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn bed_rebuild_exempt_in_blessed_construction_modules() {
    let ctx = FileCtx {
        crate_dir: "sim".into(),
        class: FileClass::Lib,
        rel_path: "crates/sim/src/setup.rs".into(),
    };
    let r = lint_file(&ctx, &fixture("bed_violate.rs"));
    assert!(!r.diagnostics.iter().any(|d| d.lint == "bed-rebuild"), "{:?}", r.diagnostics);
}

/// Run a fixture as if it were chord overlay library code (the
/// epoch-bump lint only applies to the overlay crates).
fn run_overlay(name: &str) -> FileReport {
    let ctx = FileCtx {
        crate_dir: "chord".into(),
        class: FileClass::Lib,
        rel_path: format!("crates/chord/src/{name}"),
    };
    lint_file(&ctx, &fixture(name))
}

#[test]
fn epoch_bump_fires_on_each_unbumped_mutation_shape() {
    let r = run_overlay("epoch_violate.rs");
    assert_eq!(lint_names(&r), vec!["epoch-bump"; 4], "{:?}", r.diagnostics);
    // One finding per mutation shape: assignment, indexed store,
    // mutator call, `&mut` borrow — in source order.
    let fields: Vec<&str> = r
        .diagnostics
        .iter()
        .map(|d| {
            let start = d.message.find("self.").expect("field in message") + 5;
            let rest = &d.message[start..];
            &rest[..rest.find('`').expect("closing tick")]
        })
        .collect();
    assert_eq!(fields, ["sorted", "fingers", "alive", "succs"], "{:?}", r.diagnostics);
}

#[test]
fn epoch_bump_quiet_on_bumped_writes_and_reads() {
    let r = run_overlay("epoch_clean.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn epoch_bump_exempt_outside_overlay_crates() {
    // The same writes in a non-overlay sim crate track no epoch.
    let r = run("epoch_violate.rs");
    assert!(!r.diagnostics.iter().any(|d| d.lint == "epoch-bump"), "{:?}", r.diagnostics);
}

#[test]
fn reasoned_suppressions_silence_findings() {
    let r = run("suppress_ok.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressions_used, 2);
}

#[test]
fn unused_suppression_is_an_error() {
    let r = run("suppress_unused.rs");
    assert_eq!(lint_names(&r), ["unused-suppression"], "{:?}", r.diagnostics);
}

#[test]
fn malformed_suppressions_are_errors_and_do_not_suppress() {
    let r = run("suppress_bad.rs");
    let mut names = lint_names(&r);
    names.sort();
    assert_eq!(
        names,
        ["bad-suppression", "bad-suppression", "panic-hygiene"],
        "{:?}",
        r.diagnostics
    );
    assert_eq!(r.suppressions_used, 0);
}

#[test]
fn fixtures_do_not_fire_outside_sim_crates_or_lib_class() {
    // The same violating source is exempt in a non-simulation crate...
    let ctx = FileCtx {
        crate_dir: "bench".into(),
        class: FileClass::Lib,
        rel_path: "crates/bench/src/x.rs".into(),
    };
    let r = lint_file(&ctx, &fixture("hash_violate.rs"));
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    // ...and in a sim crate's integration tests.
    let ctx = FileCtx {
        crate_dir: "resource".into(),
        class: FileClass::TestDir,
        rel_path: "crates/resource/tests/x.rs".into(),
    };
    let r = lint_file(&ctx, &fixture("panic_violate.rs"));
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

/// Run the full two-layer engine on a fixture mini-workspace.
fn run_ws(name: &str) -> LintReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    lint_workspace(&root).unwrap_or_else(|e| panic!("scan {}: {e}", root.display()))
}

#[test]
fn ws_cast_fixture_flags_only_the_reachable_cast() {
    let r = run_ws("ws_cast");
    assert_eq!(r.entry_points, ["sim::run_batch_sharded"]);
    assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
    let d = &r.diagnostics[0];
    assert_eq!(d.lint, "cast-truncation");
    assert_eq!(d.file, "crates/chord/src/lib.rs");
    assert_eq!(d.line, 6, "expected the reachable cast, got {:?}", d);
    let trace = d.trace.as_deref().expect("reach-scoped finding carries a trace");
    assert_eq!(trace.first().map(String::as_str), Some("sim::run_batch_sharded"), "{trace:?}");
    assert!(trace.last().unwrap().contains("reachable_cast"), "{trace:?}");
    // The unreachable cast was dropped; the suppressed one used its allow.
    assert_eq!(r.suppressions_used, 1);
}

#[test]
fn ws_sentinel_fixture_flags_only_the_unguarded_read() {
    let r = run_ws("ws_sentinel");
    assert_eq!(lint_names_report(&r), ["sentinel-guard"], "{:?}", r.diagnostics);
    let d = &r.diagnostics[0];
    assert_eq!(d.file, "crates/chord/src/lib.rs");
    assert_eq!(d.line, 13, "expected the unguarded read, got {:?}", d);
    let trace = d.trace.as_deref().expect("trace");
    assert!(trace.last().unwrap().contains("read_unguarded"), "{trace:?}");
    assert_eq!(r.suppressions_used, 1);
}

#[test]
fn ws_schema_fixture_reports_drift_both_directions() {
    let r = run_ws("ws_schema");
    assert_eq!(lint_names_report(&r), ["schema-drift", "schema-drift"], "{:?}", r.diagnostics);
    // Sorted by file: the source-anchored finding precedes the doc-anchored one.
    let src = &r.diagnostics[0];
    assert_eq!(src.file, "crates/bench/src/lib.rs");
    assert!(src.message.contains("\"extra_key\""), "{}", src.message);
    assert!(src.message.contains("fix-v1"), "{}", src.message);
    let doc = &r.diagnostics[1];
    assert_eq!(doc.file, "docs/SCHEMAS.md");
    assert!(doc.message.contains("\"stale_key\""), "{}", doc.message);
    // The undocumented `wip_key` on the second schema used its allow.
    assert_eq!(r.suppressions_used, 1);
}

#[test]
fn ws_schema_clean_fixture_is_quiet() {
    let r = run_ws("ws_schema_clean");
    assert!(r.clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressions_used, 0);
}

#[test]
fn ws_reach_fixture_drops_unreachable_finding_and_flags_its_suppression() {
    let r = run_ws("ws_reach");
    let mut names = lint_names_report(&r);
    names.sort();
    assert_eq!(names, ["route-path-alloc", "unused-suppression"], "{:?}", r.diagnostics);
    let route = r.diagnostics.iter().find(|d| d.lint == "route-path-alloc").unwrap();
    assert!(route.trace.as_deref().unwrap().last().unwrap().contains("hot"), "{:?}", route);
    // `cold`'s finding was dropped as unreachable, so its directive is dead.
    let unused = r.diagnostics.iter().find(|d| d.lint == "unused-suppression").unwrap();
    assert_eq!(unused.file, "crates/chord/src/lib.rs");
    assert_eq!(r.suppressions_used, 0);
}

fn lint_names_report(r: &LintReport) -> Vec<&str> {
    r.diagnostics.iter().map(|d| d.lint.as_str()).collect()
}

/// Every library crate root (the facade and each non-vendored member)
/// must forbid `unsafe` at the crate level.
#[test]
fn library_crates_forbid_unsafe_code() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut roots = vec![root.join("src/lib.rs")];
    for entry in std::fs::read_dir(root.join("crates")).unwrap() {
        let dir = entry.unwrap().path();
        if dir.file_name().is_some_and(|n| n == "vendored") {
            continue;
        }
        let lib = dir.join("src/lib.rs");
        if lib.is_file() {
            roots.push(lib);
        }
    }
    assert!(roots.len() >= 10, "found too few crate roots: {roots:?}");
    let missing: Vec<_> = roots
        .into_iter()
        .filter(|lib| !std::fs::read_to_string(lib).unwrap().contains("#![forbid(unsafe_code)]"))
        .collect();
    assert!(missing.is_empty(), "crate roots missing #![forbid(unsafe_code)]: {missing:?}");
}

/// The real workspace must stay clean — this is the same gate CI runs.
#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("scan workspace");
    assert!(report.files_scanned > 50, "walker found too few files: {}", report.files_scanned);
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.lint, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let json = render_json(&report);
    assert!(json.contains("\"schema\": \"lorm-repro/lint-v1\""));
    assert!(json.contains("\"clean\": true"));
    // lint-v2: all eleven entry points resolve and the graph is non-trivial.
    assert_eq!(report.entry_points.len(), 11, "{:?}", report.entry_points);
    assert!(
        report.reachable_functions > 0 && report.reachable_functions < report.functions_indexed,
        "reachable {} of {}",
        report.reachable_functions,
        report.functions_indexed
    );
    let v2 = render_json_v2(&report);
    assert!(v2.contains("\"schema\": \"lorm-repro/lint-v2\""));
    assert!(v2.contains("\"clean\": true"));
}
