//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s with element strategy `S`; see [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_bounds() {
        let strat = vec(0u32..10, 2..5);
        let mut rng = TestRng::deterministic("collection-tests");
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
