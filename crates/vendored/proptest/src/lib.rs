//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple /
//! vector / `Just` / `prop_map` / weighted-union strategies, a
//! regex-lite string strategy, `any::<T>()`, and the `prop_assert*!` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: failing inputs are **not shrunk** — the
//! failing case's generated values are printed instead — and case
//! generation is deterministically seeded from the test's module path so
//! failures reproduce run-to-run.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assume a precondition: rejects the generated case (does not count as
/// a failure) when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Assert inside a proptest body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Assert two values are equal (consumes them; prints both on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = ($left, $right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = ($left, $right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)*)),
            ));
        }
    }};
}

/// Assert two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = ($left, $right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = ($left, $right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)*)),
            ));
        }
    }};
}

/// Weighted choice between strategies producing the same `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests. Parameters are either `name: Type` (sampled
/// with `any::<Type>()`) or `[mut] name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident ($($params:tt)*) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::proptest!(@parse config, $name, $body; (); (); $($params)*);
            }
        )*
    };
    // ---- parameter muncher: accumulate (pattern tokens) (strategies) ----
    (@parse $config:ident, $name:ident, $body:block; ($($pat:tt)*); ($($strat:expr,)*);) => {
        $crate::proptest!(@run $config, $name, $body; ($($pat)*); ($($strat,)*));
    };
    (@parse $config:ident, $name:ident, $body:block; ($($pat:tt)*); ($($strat:expr,)*); mut $x:ident in $s:expr, $($rest:tt)*) => {
        $crate::proptest!(@parse $config, $name, $body; ($($pat)* mut $x,); ($($strat,)* $s,); $($rest)*);
    };
    (@parse $config:ident, $name:ident, $body:block; ($($pat:tt)*); ($($strat:expr,)*); mut $x:ident in $s:expr) => {
        $crate::proptest!(@parse $config, $name, $body; ($($pat)* mut $x,); ($($strat,)* $s,););
    };
    (@parse $config:ident, $name:ident, $body:block; ($($pat:tt)*); ($($strat:expr,)*); $x:ident in $s:expr, $($rest:tt)*) => {
        $crate::proptest!(@parse $config, $name, $body; ($($pat)* $x,); ($($strat,)* $s,); $($rest)*);
    };
    (@parse $config:ident, $name:ident, $body:block; ($($pat:tt)*); ($($strat:expr,)*); $x:ident in $s:expr) => {
        $crate::proptest!(@parse $config, $name, $body; ($($pat)* $x,); ($($strat,)* $s,););
    };
    (@parse $config:ident, $name:ident, $body:block; ($($pat:tt)*); ($($strat:expr,)*); $x:ident : $t:ty, $($rest:tt)*) => {
        $crate::proptest!(@parse $config, $name, $body; ($($pat)* $x,); ($($strat,)* $crate::strategy::any::<$t>(),); $($rest)*);
    };
    (@parse $config:ident, $name:ident, $body:block; ($($pat:tt)*); ($($strat:expr,)*); $x:ident : $t:ty) => {
        $crate::proptest!(@parse $config, $name, $body; ($($pat)* $x,); ($($strat,)* $crate::strategy::any::<$t>(),););
    };
    // ---- runner ----
    (@run $config:ident, $name:ident, $body:block; ($($pat:tt)*); ($($strat:expr,)*)) => {{
        let strategies = ($($strat,)*);
        let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
            module_path!(), "::", stringify!($name)
        ));
        let mut passed: u32 = 0;
        let mut rejects: u32 = 0;
        while passed < $config.cases {
            let values = $crate::strategy::Strategy::generate(&strategies, &mut rng);
            let desc = format!("{:?}", values);
            #[allow(unused_mut, unused_parens)]
            let ($($pat)*) = values;
            let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                ::std::result::Result::Ok(())
            })();
            match outcome {
                ::std::result::Result::Ok(()) => passed += 1,
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                    rejects += 1;
                    if rejects > 10 * $config.cases + 1000 {
                        panic!(
                            "proptest {}: too many rejected cases ({} rejects, {} passed)",
                            stringify!($name), rejects, passed
                        );
                    }
                }
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed after {} passing case(s): {}\n  inputs: {}",
                        stringify!($name), passed, msg, desc
                    );
                }
            }
        }
    }};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
