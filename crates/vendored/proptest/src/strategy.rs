//! Value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase (used by `prop_oneof!` to mix strategy types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms. Panics if empty or all-zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof!: no positive weights");
        Self { arms, total_weight }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            let weight = *weight as u64;
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick below total weight always lands in an arm")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy for [`Arbitrary`] types; created by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Regex-lite string strategy: a `&str` pattern such as `"[a-z]{1,16}"`
/// acts as a generator. Supports literal characters, `[...]` classes
/// with ranges, and the quantifiers `{n}`, `{m,n}`, `?`, `+`, `*`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // parse one atom: a char class or a (possibly escaped) literal
        let class: Vec<(char, char)> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty char class in pattern {pattern:?}");
                i = close + 1;
                ranges
            }
            '\\' => {
                let c = chars[i + 1];
                i += 2;
                vec![(c, c)]
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // parse an optional quantifier
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse::<usize>().expect("repeat lower bound"),
                            hi.trim().parse::<usize>().expect("repeat upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().expect("repeat count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            let (start, end) = class[rng.gen_range(0..class.len())];
            let (start, end) = (start as u32, end as u32);
            let code = rng.gen_range(start..=end.max(start));
            out.push(char::from_u32(code).expect("valid char in class range"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_tuples_and_map_compose() {
        let strat = ((0u64..100), (1u8..=4)).prop_map(|(a, b)| a + b as u64);
        let mut r = rng();
        for _ in 0..1000 {
            let v = strat.generate(&mut r);
            assert!((1..=103).contains(&v));
        }
    }

    #[test]
    fn union_respects_zero_weight_exclusion() {
        let strat = Union::new(vec![(1, Just(1u32).boxed()), (3, Just(2u32).boxed())]);
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..4000 {
            counts[strat.generate(&mut r) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 500 && counts[2] > 2000, "counts {counts:?}");
    }

    #[test]
    fn regex_lite_patterns() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-z]{1,16}".generate(&mut r);
            assert!((1..=16).contains(&s.len()), "len of {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = "v[0-9]{2}".generate(&mut r);
            assert_eq!(t.len(), 3);
            assert!(t.starts_with('v'));
            assert!(t[1..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn any_generates_full_domain_types() {
        let mut r = rng();
        let _: u64 = any::<u64>().generate(&mut r);
        let _: bool = any::<bool>().generate(&mut r);
        let f: f64 = any::<f64>().generate(&mut r);
        assert!((0.0..1.0).contains(&f));
    }
}
