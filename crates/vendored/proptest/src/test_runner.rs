//! Configuration, error channel, and the deterministic test RNG.

use rand::{RngCore, SeedableRng, SmallRng};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required before the test succeeds.
    pub cases: u32,
}

impl ProptestConfig {
    /// Default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` was not satisfied; try another case.
    Reject,
    /// An assertion failed; aborts the whole test.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// RNG handed to strategies. Deterministically seeded per test name so a
/// failure reproduces on rerun without persisted state.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seed from an arbitrary label (FNV-1a of the test's module path).
    pub fn deterministic(label: &str) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in label.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        Self { inner: SmallRng::seed_from_u64(hash) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
