//! Offline stand-in for the `crossbeam` crate: the scoped-thread subset
//! (`crossbeam::thread::scope`), implemented on `std::thread::scope`.
//! Since Rust 1.63 the standard library provides scoped threads natively,
//! so this is a thin signature adapter: crossbeam's `scope` returns a
//! `Result` and its `spawn` closures receive a `&Scope` argument.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::thread as stdthread;

    /// Result of joining a (possibly panicked) thread, as in `crossbeam`.
    pub type Result<T> = stdthread::Result<T>;

    /// A scope handle: threads spawned through it may borrow from the
    /// enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope again so it can spawn nested threads (crossbeam's
        /// signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })) }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Create a scope. All threads spawned inside are joined (by the
    /// caller or implicitly) before this returns. Unlike crossbeam, a
    /// panic in an *unjoined* child propagates instead of turning into
    /// `Err` — every call site in this workspace joins explicitly.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn join_surfaces_panics() {
        let res = super::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join()
        })
        .expect("scope");
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let v = super::thread::scope(|scope| {
            let h = scope.spawn(|s| {
                let inner = s.spawn(|_| 21u32);
                inner.join().expect("inner") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(v, 42);
    }
}
