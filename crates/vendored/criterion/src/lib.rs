//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset the workspace benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! with simple wall-clock median timing and a plain-text report instead
//! of criterion's statistical machinery. Good enough to keep `cargo
//! bench` runnable and comparable run-to-run on the same machine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the median of `samples` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up, then size batches so each takes roughly >= 1ms.
        let warmup_start = Instant::now();
        std::hint::black_box(routine());
        let once = warmup_start.elapsed();
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32;

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(routine());
                }
                start.elapsed() / batch
            })
            .collect();
        per_iter.sort();
        self.last = Some(per_iter[per_iter.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: self.sample_size, last: None };
        f(&mut bencher);
        self.criterion.report(&self.name, &id.id, bencher.last);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: self.sample_size, last: None };
        f(&mut bencher, input);
        self.criterion.report(&self.name, &id.id, bencher.last);
        self
    }

    /// Finish the group (reporting already happened per-benchmark).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: 20 }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: 20, last: None };
        f(&mut bencher);
        self.report("bench", &id.id, bencher.last);
        self
    }

    fn report(&mut self, group: &str, id: &str, median: Option<Duration>) {
        match median {
            Some(d) => println!("bench {group}/{id}: median {d:?} per iter"),
            None => println!("bench {group}/{id}: no measurement recorded"),
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("plain", |b| b.iter(|| std::hint::black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            ran += 1;
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.finish();
        assert_eq!(ran, 1);
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("chord").id, "chord");
    }
}
