//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the subset this workspace uses: [`SmallRng`]
//! (xoshiro256++ seeded through SplitMix64 — the same generator family
//! the real `SmallRng` uses on 64-bit targets), the [`Rng`] extension
//! trait with `gen` / `gen_range` / `gen_bool`, and [`SeedableRng`].
//! Streams differ from upstream `rand`, but every draw is deterministic
//! per seed, which is all the reproduction harness requires.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 (never degenerate).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of `T` from the "standard" distribution (uniform
    /// over all values for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution (see [`Rng::gen`]).
pub trait Standard {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // span fits in u64 for every <= 64-bit integer type
                let span = self.end.wrapping_sub(self.start) as u64;
                let v = mul_shift(rng.next_u64(), span);
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = mul_shift(rng.next_u64(), span + 1);
                start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `floor(x * span / 2^64)` — unbiased-enough uniform scaling.
fn mul_shift(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // guard against rounding up to the excluded endpoint
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the generator family `rand`'s 64-bit `SmallRng`
    /// uses. Not cryptographically secure; excellent statistical quality
    /// for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut state: u64) -> Self {
            let mut next = || {
                // SplitMix64: expands one u64 into a full-entropy stream
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                return Self::from_state(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }
}

pub use rngs::SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = r.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let below_half = (0..n).filter(|_| r.gen::<f64>() < 0.5).count();
        let frac = below_half as f64 / n as f64;
        assert!((0.47..0.53).contains(&frac), "frac {frac}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "frac {frac}");
    }

    #[test]
    fn works_through_mut_references_and_generics() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..1000)
        }
        let mut r = SmallRng::seed_from_u64(5);
        let x = draw(&mut r);
        assert!(x < 1000);
        let via_ref = &mut r;
        assert!(draw(via_ref) < 1000);
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut r = SmallRng::seed_from_u64(11);
        // must not overflow or panic
        let _: u64 = r.gen_range(0u64..=u64::MAX);
    }
}
