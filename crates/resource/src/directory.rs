//! Per-node directory storage, indexed by attribute.
//!
//! Every discovery system keeps a directory on each node: the resource
//! information pieces the node is root of. Directory checks during range
//! probes filter by attribute first, so the store buckets pieces per
//! attribute — a probed node answers a sub-query in time proportional to
//! its *matching* pieces, not its total load (exactly like the inverted
//! index a real directory node would keep).

use crate::model::{AttrId, ResourceInfo, ValueTarget};

/// One node's directory: resource information bucketed by attribute.
///
/// Buckets live in a flat `Vec` sorted by attribute id, so that
/// [`Directory::drain`] and [`Directory::iter`] walk attributes in a
/// fixed order — departure handoffs and inspection must not depend on
/// per-process hasher state. The flat layout also makes cloning a
/// directory (the bed-snapshot hot path) a handful of contiguous
/// `memcpy`s instead of a node-by-node tree rebuild; lookups are a
/// binary search over at most `m` attribute buckets.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// `(attr, pieces)` buckets, sorted by attribute id. Within a bucket
    /// pieces stay in insertion order.
    by_attr: Vec<(u32, Vec<ResourceInfo>)>,
    len: usize,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(&self, attr: u32) -> Option<&[ResourceInfo]> {
        self.by_attr
            .binary_search_by_key(&attr, |&(a, _)| a)
            .ok()
            .map(|i| self.by_attr[i].1.as_slice())
    }

    /// Store one piece.
    pub fn push(&mut self, info: ResourceInfo) {
        match self.by_attr.binary_search_by_key(&info.attr.0, |&(a, _)| a) {
            Ok(i) => self.by_attr[i].1.push(info),
            Err(i) => self.by_attr.insert(i, (info.attr.0, vec![info])),
        }
        self.len += 1;
    }

    /// Total stored pieces.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove and return everything (departure handoff), in ascending
    /// attribute order.
    pub fn drain(&mut self) -> Vec<ResourceInfo> {
        let mut out = Vec::with_capacity(self.len);
        for (_, mut v) in std::mem::take(&mut self.by_attr) {
            out.append(&mut v);
        }
        self.len = 0;
        out
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.by_attr.clear();
        self.len = 0;
    }

    /// Owners of pieces matching `(attr, target)` — the directory check a
    /// probed node performs.
    pub fn matching_owners(&self, attr: AttrId, target: &ValueTarget) -> Vec<usize> {
        let mut out = Vec::new();
        self.matching_owners_into(attr, target, &mut out);
        out
    }

    /// Append matching owners into `out` — the allocation-free variant the
    /// query hot loops use, so one scratch buffer serves every probed node
    /// of a sub-query.
    pub fn matching_owners_into(&self, attr: AttrId, target: &ValueTarget, out: &mut Vec<usize>) {
        if let Some(v) = self.bucket(attr.0) {
            out.extend(v.iter().filter(|r| target.matches(r.value)).map(|r| r.owner));
        }
    }

    /// Iterate over all stored pieces (inspection/tests).
    pub fn iter(&self) -> impl Iterator<Item = &ResourceInfo> {
        self.by_attr.iter().flat_map(|(_, v)| v.iter())
    }

    /// Does the directory hold any piece of this attribute?
    pub fn has_attr(&self, attr: AttrId) -> bool {
        self.bucket(attr.0).is_some_and(|v| !v.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(attr: u32, value: f64, owner: usize) -> ResourceInfo {
        ResourceInfo { attr: AttrId(attr), value, owner }
    }

    #[test]
    fn push_and_len() {
        let mut d = Directory::new();
        assert!(d.is_empty());
        d.push(info(1, 2.0, 3));
        d.push(info(1, 4.0, 5));
        d.push(info(2, 2.0, 6));
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn matching_filters_by_attr_and_value() {
        let mut d = Directory::new();
        d.push(info(1, 10.0, 3));
        d.push(info(1, 20.0, 4));
        d.push(info(2, 10.0, 5));
        let m = d.matching_owners(AttrId(1), &ValueTarget::Range { low: 5.0, high: 15.0 });
        assert_eq!(m, vec![3]);
        let none = d.matching_owners(AttrId(9), &ValueTarget::Point(10.0));
        assert!(none.is_empty());
    }

    #[test]
    fn drain_returns_everything_and_empties() {
        let mut d = Directory::new();
        d.push(info(1, 1.0, 1));
        d.push(info(2, 2.0, 2));
        let mut out = d.drain();
        out.sort_by_key(|r| r.attr);
        assert_eq!(out.len(), 2);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut d = Directory::new();
        d.push(info(1, 1.0, 1));
        d.clear();
        assert!(d.is_empty());
        assert!(!d.has_attr(AttrId(1)));
    }

    #[test]
    fn iter_sees_all_pieces() {
        let mut d = Directory::new();
        d.push(info(1, 1.0, 1));
        d.push(info(2, 2.0, 2));
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    fn iteration_order_is_stable_across_identical_builds() {
        // Two directories filled identically must iterate (and drain)
        // identically — this is what rules out a hash-seeded bucket map.
        let build = || {
            let mut d = Directory::new();
            // Insertion order deliberately scrambled relative to attr order.
            for (attr, owner) in [(7u32, 1), (2, 2), (9, 3), (2, 4), (7, 5), (0, 6)] {
                d.push(info(attr, attr as f64, owner));
            }
            d
        };
        let (a, mut b) = (build(), build());
        let seq_a: Vec<usize> = a.iter().map(|r| r.owner).collect();
        let seq_b: Vec<usize> = b.iter().map(|r| r.owner).collect();
        assert_eq!(seq_a, seq_b);
        // And the order is the deterministic one: ascending attribute,
        // insertion order within an attribute.
        assert_eq!(seq_a, vec![6, 2, 4, 1, 5, 3]);
        let drained: Vec<usize> = b.drain().into_iter().map(|r| r.owner).collect();
        assert_eq!(drained, seq_a);
    }

    #[test]
    fn has_attr() {
        let mut d = Directory::new();
        d.push(info(7, 1.0, 1));
        assert!(d.has_attr(AttrId(7)));
        assert!(!d.has_attr(AttrId(8)));
    }
}
