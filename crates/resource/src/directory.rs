//! Per-node directory storage, indexed by attribute.
//!
//! Every discovery system keeps a directory on each node: the resource
//! information pieces the node is root of. Directory checks during range
//! probes filter by attribute first, so the store buckets pieces per
//! attribute — a probed node answers a sub-query in time proportional to
//! its *matching* pieces, not its total load (exactly like the inverted
//! index a real directory node would keep).

use crate::model::{AttrId, ResourceInfo, ValueTarget};

/// One node's directory: resource information bucketed by attribute.
///
/// Buckets live in a flat `Vec` sorted by attribute id, so that
/// [`Directory::drain`] and [`Directory::iter`] walk attributes in a
/// fixed order — departure handoffs and inspection must not depend on
/// per-process hasher state. The flat layout also makes cloning a
/// directory (the bed-snapshot hot path) a handful of contiguous
/// `memcpy`s instead of a node-by-node tree rebuild; lookups are a
/// binary search over at most `m` attribute buckets.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// `(attr, pieces)` buckets, sorted by attribute id. Within a bucket
    /// pieces stay in insertion order.
    by_attr: Vec<(u32, Vec<ResourceInfo>)>,
    len: usize,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(&self, attr: u32) -> Option<&[ResourceInfo]> {
        self.by_attr
            .binary_search_by_key(&attr, |&(a, _)| a)
            .ok()
            .map(|i| self.by_attr[i].1.as_slice())
    }

    /// Store one piece.
    pub fn push(&mut self, info: ResourceInfo) {
        match self.by_attr.binary_search_by_key(&info.attr.0, |&(a, _)| a) {
            Ok(i) => self.by_attr[i].1.push(info),
            Err(i) => self.by_attr.insert(i, (info.attr.0, vec![info])),
        }
        self.len += 1;
    }

    /// Store a batch of pieces in one pass.
    ///
    /// Observationally identical to pushing the pieces one by one in the
    /// given order — ascending attribute buckets, insertion order within a
    /// bucket — but built with a single stable sort plus a sorted merge
    /// instead of one shifting `Vec::insert` per previously-unseen
    /// attribute. Bed construction hands each node its whole placement
    /// batch through this path; the incremental [`Directory::push`] stays
    /// the runtime path for individual registrations.
    pub fn bulk_load(&mut self, mut batch: Vec<ResourceInfo>) {
        if batch.is_empty() {
            return;
        }
        self.len += batch.len();
        // Stable: preserves arrival order within an attribute.
        batch.sort_by_key(|r| r.attr.0);
        let old = std::mem::take(&mut self.by_attr);
        self.by_attr.reserve(old.len() + 1);
        let mut old_it = old.into_iter().peekable();
        let mut new_it = batch.into_iter().peekable();
        while let Some(attr) = new_it.peek().map(|r| r.attr.0) {
            // Carry over existing buckets below the next incoming attr.
            while old_it.peek().is_some_and(|&(a, _)| a < attr) {
                // lint:allow(panic-hygiene): peek above guarantees Some.
                self.by_attr.push(old_it.next().expect("peeked"));
            }
            let mut bucket = match old_it.peek() {
                Some(&(a, _)) if a == attr => {
                    // lint:allow(panic-hygiene): peek above guarantees Some.
                    old_it.next().expect("peeked").1
                }
                _ => Vec::new(),
            };
            while new_it.peek().is_some_and(|r| r.attr.0 == attr) {
                // lint:allow(panic-hygiene): peek above guarantees Some.
                bucket.push(new_it.next().expect("peeked"));
            }
            self.by_attr.push((attr, bucket));
        }
        self.by_attr.extend(old_it);
        debug_assert!(self.by_attr.windows(2).all(|w| w[0].0 < w[1].0));
    }

    /// Total stored pieces.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove and return everything (departure handoff), in ascending
    /// attribute order.
    pub fn drain(&mut self) -> Vec<ResourceInfo> {
        let mut out = Vec::with_capacity(self.len);
        for (_, mut v) in std::mem::take(&mut self.by_attr) {
            out.append(&mut v);
        }
        self.len = 0;
        out
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.by_attr.clear();
        self.len = 0;
    }

    /// Owners of pieces matching `(attr, target)` — the directory check a
    /// probed node performs.
    pub fn matching_owners(&self, attr: AttrId, target: &ValueTarget) -> Vec<usize> {
        let mut out = Vec::new();
        self.matching_owners_into(attr, target, &mut out);
        out
    }

    /// Append matching owners into `out` — the allocation-free variant the
    /// query hot loops use, so one scratch buffer serves every probed node
    /// of a sub-query.
    pub fn matching_owners_into(&self, attr: AttrId, target: &ValueTarget, out: &mut Vec<usize>) {
        if let Some(v) = self.bucket(attr.0) {
            out.extend(v.iter().filter(|r| target.matches(r.value)).map(|r| r.owner));
        }
    }

    /// Iterate over all stored pieces (inspection/tests).
    pub fn iter(&self) -> impl Iterator<Item = &ResourceInfo> {
        self.by_attr.iter().flat_map(|(_, v)| v.iter())
    }

    /// Does the directory hold any piece of this attribute?
    pub fn has_attr(&self, attr: AttrId) -> bool {
        self.bucket(attr.0).is_some_and(|v| !v.is_empty())
    }

    /// Is an identical piece already stored? Used by replica promotion to
    /// avoid double-storing a piece the new owner already received via a
    /// graceful handoff (bucketed: a binary search plus one bucket scan).
    pub fn contains(&self, info: &ResourceInfo) -> bool {
        self.bucket(info.attr.0).is_some_and(|v| v.contains(info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(attr: u32, value: f64, owner: usize) -> ResourceInfo {
        ResourceInfo { attr: AttrId(attr), value, owner }
    }

    #[test]
    fn push_and_len() {
        let mut d = Directory::new();
        assert!(d.is_empty());
        d.push(info(1, 2.0, 3));
        d.push(info(1, 4.0, 5));
        d.push(info(2, 2.0, 6));
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn matching_filters_by_attr_and_value() {
        let mut d = Directory::new();
        d.push(info(1, 10.0, 3));
        d.push(info(1, 20.0, 4));
        d.push(info(2, 10.0, 5));
        let m = d.matching_owners(AttrId(1), &ValueTarget::Range { low: 5.0, high: 15.0 });
        assert_eq!(m, vec![3]);
        let none = d.matching_owners(AttrId(9), &ValueTarget::Point(10.0));
        assert!(none.is_empty());
    }

    #[test]
    fn drain_returns_everything_and_empties() {
        let mut d = Directory::new();
        d.push(info(1, 1.0, 1));
        d.push(info(2, 2.0, 2));
        let mut out = d.drain();
        out.sort_by_key(|r| r.attr);
        assert_eq!(out.len(), 2);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut d = Directory::new();
        d.push(info(1, 1.0, 1));
        d.clear();
        assert!(d.is_empty());
        assert!(!d.has_attr(AttrId(1)));
    }

    #[test]
    fn iter_sees_all_pieces() {
        let mut d = Directory::new();
        d.push(info(1, 1.0, 1));
        d.push(info(2, 2.0, 2));
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    fn iteration_order_is_stable_across_identical_builds() {
        // Two directories filled identically must iterate (and drain)
        // identically — this is what rules out a hash-seeded bucket map.
        let build = || {
            let mut d = Directory::new();
            // Insertion order deliberately scrambled relative to attr order.
            for (attr, owner) in [(7u32, 1), (2, 2), (9, 3), (2, 4), (7, 5), (0, 6)] {
                d.push(info(attr, attr as f64, owner));
            }
            d
        };
        let (a, mut b) = (build(), build());
        let seq_a: Vec<usize> = a.iter().map(|r| r.owner).collect();
        let seq_b: Vec<usize> = b.iter().map(|r| r.owner).collect();
        assert_eq!(seq_a, seq_b);
        // And the order is the deterministic one: ascending attribute,
        // insertion order within an attribute.
        assert_eq!(seq_a, vec![6, 2, 4, 1, 5, 3]);
        let drained: Vec<usize> = b.drain().into_iter().map(|r| r.owner).collect();
        assert_eq!(drained, seq_a);
    }

    #[test]
    fn bulk_load_matches_sequential_push() {
        // The bulk path must be observationally identical to pushing one
        // piece at a time: same bucket order, same within-bucket order,
        // same len — including when it merges into pre-existing buckets.
        let pieces: Vec<ResourceInfo> = [(7u32, 1), (2, 2), (9, 3), (2, 4), (7, 5), (0, 6)]
            .into_iter()
            .map(|(attr, owner)| info(attr, attr as f64, owner))
            .collect();
        let mut seq = Directory::new();
        let mut bulk = Directory::new();
        for &p in &pieces {
            seq.push(p);
        }
        bulk.bulk_load(pieces.clone());
        assert_eq!(seq.len(), bulk.len());
        let owners = |d: &Directory| d.iter().map(|r| r.owner).collect::<Vec<_>>();
        assert_eq!(owners(&seq), owners(&bulk));
        assert_eq!(owners(&bulk), vec![6, 2, 4, 1, 5, 3]);
        // Second batch merges into existing buckets and interleaves new ones.
        let more: Vec<ResourceInfo> = [(5u32, 7), (2, 8), (11, 9), (0, 10)]
            .into_iter()
            .map(|(attr, owner)| info(attr, attr as f64, owner))
            .collect();
        for &p in &more {
            seq.push(p);
        }
        bulk.bulk_load(more);
        assert_eq!(seq.len(), bulk.len());
        assert_eq!(owners(&seq), owners(&bulk));
        bulk.bulk_load(Vec::new());
        assert_eq!(owners(&seq), owners(&bulk), "empty batch is a no-op");
    }

    #[test]
    fn contains_checks_exact_piece() {
        let mut d = Directory::new();
        d.push(info(7, 1.0, 1));
        assert!(d.contains(&info(7, 1.0, 1)));
        assert!(!d.contains(&info(7, 1.0, 2)), "different owner");
        assert!(!d.contains(&info(7, 2.0, 1)), "different value");
        assert!(!d.contains(&info(8, 1.0, 1)), "different attribute");
    }

    #[test]
    fn has_attr() {
        let mut d = Directory::new();
        d.push(info(7, 1.0, 1));
        assert!(d.has_attr(AttrId(7)));
        assert!(!d.has_attr(AttrId(8)));
    }
}
