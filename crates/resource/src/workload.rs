//! Synthetic workload generation — the paper's §V setup.
//!
//! The evaluation populates the system with `m = 200` attributes, each
//! carrying `k = 500` pieces of resource information whose values come
//! from a Bounded Pareto distribution, owned by uniformly random nodes.
//! Queries pick their attributes uniformly at random; range queries span
//! up to half the value domain so the expected range walk covers a quarter
//! of it, matching the average-case assumption of Theorem 4.9.
//!
//! **Reproduction note.** The paper names Bounded Pareto as its value
//! generator, yet its Figure 3 percentile measurements track the
//! *uniform-values* analysis closely ("values are randomly chosen … not
//! completely uniformly distributed"). A heavily skewed Pareto
//! (`α ≳ 0.5`) would pile nearly all information onto one LPH sector and
//! contradict those figures, so the default [`ValueDist`] here is
//! `Uniform` over the `k`-value grid; `BoundedPareto` is available and is
//! exercised by the `ablate_value_skew` bench. See DESIGN.md.

use crate::model::{AttrId, AttributeSpace, Query, ResourceInfo, SubQuery, ValueTarget};
use dht_core::{BoundedPareto, DhtError, Zipf};
use rand::Rng;

/// Distribution of attribute values in reports and queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueDist {
    /// Uniform over the `k`-value grid (default; see module docs).
    Uniform,
    /// Bounded Pareto with the given shape over the value domain, snapped
    /// to the grid (the paper's stated generator).
    BoundedPareto {
        /// Shape parameter `α > 0`; larger is more skewed towards the low
        /// end of the domain.
        alpha: f64,
    },
}

/// How queries pick their attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrPopularity {
    /// Uniformly random distinct attributes (the paper's §V setting).
    Uniform,
    /// Zipf-distributed popularity with the given exponent — real grid
    /// requests concentrate on a few hot attributes (CPU, memory); the
    /// `ablate_attr_popularity` study measures what that does to each
    /// system's query-load balance.
    Zipf {
        /// Zipf exponent `s ≥ 0` (0 degenerates to uniform).
        exponent: f64,
    },
}

/// Workload parameters (defaults are the paper's §V numbers).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of resource attributes `m`.
    pub num_attrs: usize,
    /// Pieces of resource information per attribute `k` (one per value
    /// grid point on average).
    pub values_per_attr: usize,
    /// Number of physical nodes owning resources.
    pub num_nodes: usize,
    /// Distribution of reported/queried values.
    pub value_dist: ValueDist,
    /// Attribute-selection distribution for queries.
    pub attr_popularity: AttrPopularity,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_attrs: 200,
            values_per_attr: 500,
            num_nodes: 2048,
            value_dist: ValueDist::Uniform,
            attr_popularity: AttrPopularity::Uniform,
        }
    }
}

/// Query shape for a generated batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMix {
    /// Exact-value queries only (Figures 4 and 6(a)).
    NonRange,
    /// Range queries with span uniform in `[0, domain/2]`
    /// (Figures 5 and 6(b): average walk = a quarter of the domain).
    Range,
}

/// A generated workload: the attribute space plus every resource report.
///
/// ```
/// use grid_resource::{QueryMix, Workload, WorkloadConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let cfg = WorkloadConfig { num_attrs: 5, values_per_attr: 20, num_nodes: 50,
///                            ..WorkloadConfig::default() };
/// let w = Workload::generate(cfg, &mut rng).unwrap();
/// assert_eq!(w.reports.len(), 5 * 20);
/// let q = w.random_query(3, QueryMix::Range, &mut rng);
/// assert_eq!(q.arity(), 3);
/// assert!(q.has_range());
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    /// The attribute universe.
    pub space: AttributeSpace,
    /// All availability reports, `num_attrs × values_per_attr` pieces.
    pub reports: Vec<ResourceInfo>,
    cfg: WorkloadConfig,
    zipf: Option<Zipf>,
}

impl Workload {
    /// Generate the full workload.
    ///
    /// # Errors
    /// Propagates invalid configuration (zero attributes, bad Pareto
    /// shape).
    pub fn generate<R: Rng + ?Sized>(cfg: WorkloadConfig, rng: &mut R) -> Result<Self, DhtError> {
        if cfg.num_attrs == 0 || cfg.values_per_attr == 0 || cfg.num_nodes == 0 {
            return Err(DhtError::InvalidParameter {
                what: "workload dimensions must be positive",
            });
        }
        // Value domain [1, k] so the grid has k integer points, matching
        // "each attribute had k = 500 values".
        let space = AttributeSpace::synthetic(cfg.num_attrs, 1.0, cfg.values_per_attr as f64)?;
        let sampler = ValueSampler::new(&space, cfg.value_dist)?;
        let mut reports = Vec::with_capacity(cfg.num_attrs * cfg.values_per_attr);
        for attr in space.ids() {
            for _ in 0..cfg.values_per_attr {
                reports.push(ResourceInfo {
                    attr,
                    value: sampler.sample(rng),
                    owner: rng.gen_range(0..cfg.num_nodes),
                });
            }
        }
        let zipf = match cfg.attr_popularity {
            AttrPopularity::Uniform => None,
            AttrPopularity::Zipf { exponent } => Some(Zipf::new(cfg.num_attrs, exponent)?),
        };
        Ok(Self { space, reports, cfg, zipf })
    }

    /// The configuration this workload was generated from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Generate one `arity`-attribute query with distinct random attributes
    /// (the paper: "resource attributes in a node resource request were
    /// randomly generated").
    pub fn random_query<R: Rng + ?Sized>(&self, arity: usize, mix: QueryMix, rng: &mut R) -> Query {
        let m = self.space.len();
        let arity = arity.min(m);
        let mut chosen: Vec<u32> = Vec::with_capacity(arity);
        match &self.zipf {
            // Floyd's algorithm for a distinct uniform sample.
            None => {
                for j in (m - arity)..m {
                    let t = rng.gen_range(0..=j) as u32;
                    if chosen.contains(&t) {
                        chosen.push(j as u32);
                    } else {
                        chosen.push(t);
                    }
                }
            }
            // Zipf popularity: rejection-sample distinct hot attributes.
            Some(z) => {
                while chosen.len() < arity {
                    let t = z.sample(rng) as u32;
                    if !chosen.contains(&t) {
                        chosen.push(t);
                    }
                }
            }
        }
        let sampler = ValueSampler::new(&self.space, self.cfg.value_dist)
            // lint:allow(panic-hygiene): Workload::generate already built a
            // sampler from this exact (space, dist) pair, rejecting bad ones.
            .expect("config validated at generation");
        let (dmin, dmax) = self.space.domain();
        let subs = chosen
            .into_iter()
            .map(|a| {
                let target = match mix {
                    QueryMix::NonRange => ValueTarget::Point(sampler.sample(rng)),
                    QueryMix::Range => {
                        // span uniform in [0, domain/2] => E[walk] = domain/4,
                        // worst case domain/2, per Theorem 4.9's accounting.
                        let span = rng.gen_range(0.0..=(dmax - dmin) / 2.0);
                        let low = rng.gen_range(dmin..=(dmax - span));
                        ValueTarget::Range { low, high: low + span }
                    }
                };
                SubQuery { attr: AttrId(a), target }
            })
            .collect();
        // lint:allow(panic-hygiene): every generated target has low <= high
        // by construction (span >= 0), the only thing Query::new validates.
        Query::new(subs).expect("generated ranges are well-formed")
    }

    /// Generate a batch of queries with the given arity.
    pub fn query_batch<R: Rng + ?Sized>(
        &self,
        count: usize,
        arity: usize,
        mix: QueryMix,
        rng: &mut R,
    ) -> Vec<Query> {
        (0..count).map(|_| self.random_query(arity, mix, rng)).collect()
    }
}

/// Samples grid-snapped attribute values according to a [`ValueDist`].
#[derive(Debug, Clone)]
struct ValueSampler {
    dist: ValueDist,
    pareto: Option<BoundedPareto>,
    min: f64,
    max: f64,
}

impl ValueSampler {
    fn new(space: &AttributeSpace, dist: ValueDist) -> Result<Self, DhtError> {
        let (min, max) = space.domain();
        let pareto = match dist {
            ValueDist::BoundedPareto { alpha } => {
                Some(BoundedPareto::new(alpha, min.max(f64::MIN_POSITIVE), max)?)
            }
            ValueDist::Uniform => None,
        };
        Ok(Self { dist, pareto, min, max })
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let raw = match self.dist {
            ValueDist::Uniform => rng.gen_range(self.min..=self.max),
            ValueDist::BoundedPareto { .. } => {
                // lint:allow(panic-hygiene): `new` fills `pareto` whenever
                // the dist is BoundedPareto; the two fields change together.
                self.pareto.as_ref().expect("pareto built for this dist").sample(rng)
            }
        };
        raw.round().clamp(self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xFEED)
    }

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            num_attrs: 20,
            values_per_attr: 50,
            num_nodes: 100,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn generates_m_times_k_reports() {
        let w = Workload::generate(small_cfg(), &mut rng()).unwrap();
        assert_eq!(w.reports.len(), 20 * 50);
        assert_eq!(w.space.len(), 20);
    }

    #[test]
    fn rejects_degenerate_config() {
        let mut c = small_cfg();
        c.num_attrs = 0;
        assert!(Workload::generate(c, &mut rng()).is_err());
        let mut c = small_cfg();
        c.num_nodes = 0;
        assert!(Workload::generate(c, &mut rng()).is_err());
    }

    #[test]
    fn values_are_on_the_grid_and_in_domain() {
        let w = Workload::generate(small_cfg(), &mut rng()).unwrap();
        for r in &w.reports {
            assert!(r.value >= 1.0 && r.value <= 50.0);
            assert_eq!(r.value, r.value.round());
        }
    }

    #[test]
    fn owners_are_valid_physical_nodes() {
        let w = Workload::generate(small_cfg(), &mut rng()).unwrap();
        assert!(w.reports.iter().all(|r| r.owner < 100));
        // and reasonably spread: >50 distinct owners out of 100 for 1000 reports
        let mut owners: Vec<usize> = w.reports.iter().map(|r| r.owner).collect();
        owners.sort_unstable();
        owners.dedup();
        assert!(owners.len() > 50, "{} distinct owners", owners.len());
    }

    #[test]
    fn every_attribute_gets_k_reports() {
        let w = Workload::generate(small_cfg(), &mut rng()).unwrap();
        for attr in w.space.ids() {
            let count = w.reports.iter().filter(|r| r.attr == attr).count();
            assert_eq!(count, 50);
        }
    }

    #[test]
    fn pareto_dist_skews_low() {
        let cfg =
            WorkloadConfig { value_dist: ValueDist::BoundedPareto { alpha: 1.0 }, ..small_cfg() };
        let w = Workload::generate(cfg, &mut rng()).unwrap();
        let low_half = w.reports.iter().filter(|r| r.value <= 25.0).count();
        assert!(low_half as f64 > 0.8 * w.reports.len() as f64);
    }

    #[test]
    fn query_arity_and_distinct_attrs() {
        let w = Workload::generate(small_cfg(), &mut rng()).unwrap();
        let mut r = rng();
        for arity in 1..=10 {
            let q = w.random_query(arity, QueryMix::NonRange, &mut r);
            assert_eq!(q.arity(), arity);
            let mut attrs: Vec<_> = q.subs.iter().map(|s| s.attr).collect();
            attrs.sort();
            attrs.dedup();
            assert_eq!(attrs.len(), arity, "attributes must be distinct");
        }
    }

    #[test]
    fn arity_clamps_to_attribute_count() {
        let w = Workload::generate(small_cfg(), &mut rng()).unwrap();
        let q = w.random_query(100, QueryMix::NonRange, &mut rng());
        assert_eq!(q.arity(), 20);
    }

    #[test]
    fn range_queries_respect_half_domain_cap() {
        let w = Workload::generate(small_cfg(), &mut rng()).unwrap();
        let mut r = rng();
        let (dmin, dmax) = w.space.domain();
        let mut total_span = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let q = w.random_query(1, QueryMix::Range, &mut r);
            match q.subs[0].target {
                ValueTarget::Range { low, high } => {
                    assert!(low >= dmin && high <= dmax && low <= high);
                    assert!(high - low <= (dmax - dmin) / 2.0 + 1e-9);
                    total_span += high - low;
                }
                _ => panic!("expected range"),
            }
        }
        let mean_frac = total_span / trials as f64 / (dmax - dmin);
        // E[span] = domain/4
        assert!((mean_frac - 0.25).abs() < 0.02, "mean span fraction {mean_frac}");
    }

    #[test]
    fn non_range_queries_are_points() {
        let w = Workload::generate(small_cfg(), &mut rng()).unwrap();
        let q = w.random_query(5, QueryMix::NonRange, &mut rng());
        assert!(!q.has_range());
    }

    #[test]
    fn query_batch_size() {
        let w = Workload::generate(small_cfg(), &mut rng()).unwrap();
        let b = w.query_batch(17, 3, QueryMix::Range, &mut rng());
        assert_eq!(b.len(), 17);
        assert!(b.iter().all(|q| q.arity() == 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Workload::generate(small_cfg(), &mut rng()).unwrap();
        let b = Workload::generate(small_cfg(), &mut rng()).unwrap();
        assert_eq!(a.reports, b.reports);
    }

    #[test]
    fn zipf_popularity_concentrates_queries_on_hot_attributes() {
        let cfg = WorkloadConfig {
            attr_popularity: AttrPopularity::Zipf { exponent: 1.2 },
            ..small_cfg()
        };
        let w = Workload::generate(cfg, &mut rng()).unwrap();
        let mut r = rng();
        let mut counts = vec![0usize; 20];
        for _ in 0..4000 {
            let q = w.random_query(1, QueryMix::NonRange, &mut r);
            counts[q.subs[0].attr.0 as usize] += 1;
        }
        // rank 0 should dominate the median attribute by a wide margin
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert!(
            counts[0] > 5 * sorted[10].max(1),
            "rank-0 attr got {} vs median {}",
            counts[0],
            sorted[10]
        );
    }

    #[test]
    fn zipf_popularity_still_yields_distinct_attributes() {
        let cfg = WorkloadConfig {
            attr_popularity: AttrPopularity::Zipf { exponent: 1.5 },
            ..small_cfg()
        };
        let w = Workload::generate(cfg, &mut rng()).unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let q = w.random_query(6, QueryMix::Range, &mut r);
            let mut attrs: Vec<_> = q.subs.iter().map(|s| s.attr).collect();
            attrs.sort();
            attrs.dedup();
            assert_eq!(attrs.len(), 6);
        }
    }

    #[test]
    fn negative_zipf_exponent_rejected() {
        let cfg = WorkloadConfig {
            attr_popularity: AttrPopularity::Zipf { exponent: -1.0 },
            ..small_cfg()
        };
        assert!(Workload::generate(cfg, &mut rng()).is_err());
    }
}
