//! Per-attribute selectivity estimation for the query planner.
//!
//! The adaptive query plan (see [`crate::planner`]) resolves the most
//! selective sub-query first so the surviving candidate set — and with it
//! the transfer volume — collapses as early as possible. That requires an
//! estimate of how many pieces each sub-query matches *before* paying for
//! its lookup. This module provides the classic database answer: an
//! **equi-width value histogram per attribute**, maintained from the
//! workload's own availability reports.
//!
//! Everything here is deterministic by construction: histograms are
//! rebuilt from the report stream at [`SelectivityEstimator::rebuild`]
//! (the `place_all` steady state) or updated one report at a time at
//! [`SelectivityEstimator::record`] (the routed `register` path). No wall
//! clock, no sampling RNG — the same reports always produce the same
//! histograms, so plan choice never perturbs byte-level determinism.

use crate::model::{AttrId, AttributeSpace, ResourceInfo, SubQuery, ValueTarget};

/// Histogram resolution: buckets per attribute. 64 equi-width buckets
/// over the shared value domain keep the estimator at one `u64` cache
/// line per 8 buckets while resolving the paper's quarter-domain average
/// range walk (Theorem 4.9) to ~3% of the domain per bucket.
pub const DEFAULT_BUCKETS: usize = 64;

/// Equi-width per-attribute value histograms over a shared domain.
///
/// `estimate` answers "roughly how many stored pieces does this
/// sub-query match?" under a uniform-within-bucket assumption — exact in
/// total mass (`Σ buckets == pieces recorded for the attribute`), and
/// within a bucket's width of exact counts at the range edges. The
/// planner only needs the *ranking* of sub-queries to be right, which is
/// a much weaker ask; see `crates/sim`'s histogram tolerance test for
/// the quantitative band.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectivityEstimator {
    lo: f64,
    hi: f64,
    buckets: usize,
    /// `attrs × buckets`, row-major by attribute.
    counts: Vec<u64>,
    /// Total pieces recorded per attribute (row sums, kept incrementally).
    totals: Vec<u64>,
}

impl SelectivityEstimator {
    /// An empty estimator over `space`'s shared value domain with
    /// [`DEFAULT_BUCKETS`] buckets per attribute.
    pub fn new(space: &AttributeSpace) -> Self {
        Self::with_buckets(space, DEFAULT_BUCKETS)
    }

    /// An empty estimator with an explicit per-attribute bucket count.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn with_buckets(space: &AttributeSpace, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        let (lo, hi) = space.domain();
        Self {
            lo,
            hi,
            buckets,
            counts: vec![0; space.len() * buckets],
            totals: vec![0; space.len()],
        }
    }

    /// Buckets per attribute.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Total pieces recorded for `attr`.
    pub fn total(&self, attr: AttrId) -> u64 {
        self.totals.get(attr.0 as usize).copied().unwrap_or(0)
    }

    /// Has any report been recorded? An untrained estimator makes the
    /// adaptive plan degrade to plain sequential (document order).
    pub fn is_trained(&self) -> bool {
        self.totals.iter().any(|&t| t > 0)
    }

    fn width(&self) -> f64 {
        (self.hi - self.lo) / self.buckets as f64
    }

    /// Bucket index of a value, clamped into `[0, buckets)`.
    fn bucket_of(&self, v: f64) -> usize {
        if self.hi <= self.lo {
            return 0;
        }
        let frac = (v - self.lo) / (self.hi - self.lo);
        let raw = (frac * self.buckets as f64).floor();
        (raw.max(0.0) as usize).min(self.buckets - 1)
    }

    /// Record one availability report (the `register` path).
    pub fn record(&mut self, info: &ResourceInfo) {
        let a = info.attr.0 as usize;
        if a >= self.totals.len() {
            return; // out-of-space attribute: ignore rather than panic
        }
        let b = self.bucket_of(info.value);
        self.counts[a * self.buckets + b] += 1;
        self.totals[a] += 1;
    }

    /// Reset and re-record every report (the `place_all` steady state).
    pub fn rebuild(&mut self, reports: &[ResourceInfo]) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.totals.iter_mut().for_each(|t| *t = 0);
        for r in reports {
            self.record(r);
        }
    }

    /// Estimated number of stored pieces matching `sub`.
    ///
    /// * `Range` targets sum whole covered buckets and linearly
    ///   interpolate the partial buckets at the edges (uniform-within-
    ///   bucket assumption).
    /// * `Point` targets estimate one grid value's share of its bucket:
    ///   `bucket_count / bucket_width`, a density proxy that ranks exact
    ///   matches below all but sub-bucket-width ranges — exactly the
    ///   ordering the planner wants.
    pub fn estimate(&self, sub: &SubQuery) -> f64 {
        let a = sub.attr.0 as usize;
        if a >= self.totals.len() || self.totals[a] == 0 {
            return 0.0;
        }
        let row = &self.counts[a * self.buckets..(a + 1) * self.buckets];
        match sub.target {
            ValueTarget::Point(v) => {
                let w = self.width();
                let c = row[self.bucket_of(v)] as f64;
                if w > 0.0 {
                    c / w
                } else {
                    c
                }
            }
            ValueTarget::Range { low, high } => {
                if high < low {
                    return 0.0;
                }
                let w = self.width();
                if w <= 0.0 {
                    return self.totals[a] as f64;
                }
                // Summed in fixed bucket order (iterator, no raw float
                // accumulation) — deterministic for a given histogram.
                let est: f64 = row
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        let b_lo = self.lo + i as f64 * w;
                        let b_hi = b_lo + w;
                        let overlap = (high.min(b_hi) - low.max(b_lo)).max(0.0);
                        c as f64 * (overlap / w).clamp(0.0, 1.0)
                    })
                    .sum();
                // Clamp drift at the domain edges: a range covering the
                // whole domain must estimate exactly the recorded total.
                if low <= self.lo && high >= self.hi {
                    self.totals[a] as f64
                } else {
                    est.min(self.totals[a] as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Query;

    fn space() -> AttributeSpace {
        AttributeSpace::synthetic(3, 0.0, 64.0).unwrap()
    }

    fn info(attr: u32, value: f64) -> ResourceInfo {
        ResourceInfo { attr: AttrId(attr), value, owner: 0 }
    }

    fn range(attr: u32, low: f64, high: f64) -> SubQuery {
        let q = Query::new(vec![SubQuery {
            attr: AttrId(attr),
            target: ValueTarget::Range { low, high },
        }])
        .unwrap();
        q.subs[0]
    }

    #[test]
    fn empty_estimator_is_untrained_and_estimates_zero() {
        let e = SelectivityEstimator::new(&space());
        assert!(!e.is_trained());
        assert_eq!(e.estimate(&range(0, 0.0, 64.0)), 0.0);
        assert_eq!(e.total(AttrId(0)), 0);
    }

    #[test]
    fn full_domain_range_estimates_exact_total() {
        let mut e = SelectivityEstimator::with_buckets(&space(), 8);
        for v in 0..32 {
            e.record(&info(1, v as f64 * 2.0));
        }
        assert!(e.is_trained());
        assert_eq!(e.total(AttrId(1)), 32);
        assert_eq!(e.estimate(&range(1, 0.0, 64.0)), 32.0);
        // other attributes stay empty
        assert_eq!(e.estimate(&range(0, 0.0, 64.0)), 0.0);
    }

    #[test]
    fn half_domain_range_estimates_half_of_uniform_mass() {
        let mut e = SelectivityEstimator::with_buckets(&space(), 8);
        for v in 0..64 {
            e.record(&info(0, v as f64));
        }
        let est = e.estimate(&range(0, 0.0, 32.0));
        assert!((est - 32.0).abs() <= 8.0, "half of 64 uniform values ≈ 32, got {est}");
    }

    #[test]
    fn partial_bucket_interpolates() {
        // 8 buckets of width 8 over [0,64); 8 values all in bucket 0.
        let mut e = SelectivityEstimator::with_buckets(&space(), 8);
        for v in 0..8 {
            e.record(&info(0, v as f64));
        }
        // half of bucket 0 → half its mass
        let est = e.estimate(&range(0, 0.0, 4.0));
        assert!((est - 4.0).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn point_density_ranks_below_wide_ranges() {
        let mut e = SelectivityEstimator::new(&space());
        for v in 0..64 {
            e.record(&info(0, v as f64));
        }
        let q = Query::new(vec![SubQuery { attr: AttrId(0), target: ValueTarget::Point(10.0) }])
            .unwrap();
        let point = e.estimate(&q.subs[0]);
        let wide = e.estimate(&range(0, 0.0, 48.0));
        assert!(point < wide, "point {point} should rank below wide range {wide}");
    }

    #[test]
    fn rebuild_resets_previous_state() {
        let mut e = SelectivityEstimator::with_buckets(&space(), 8);
        for v in 0..16 {
            e.record(&info(0, v as f64));
        }
        e.rebuild(&[info(2, 1.0)]);
        assert_eq!(e.total(AttrId(0)), 0);
        assert_eq!(e.total(AttrId(2)), 1);
        assert_eq!(e.estimate(&range(0, 0.0, 64.0)), 0.0);
    }

    #[test]
    fn out_of_domain_values_clamp_into_edge_buckets() {
        let mut e = SelectivityEstimator::with_buckets(&space(), 8);
        e.record(&info(0, -100.0));
        e.record(&info(0, 1e9));
        assert_eq!(e.total(AttrId(0)), 2);
        assert_eq!(e.estimate(&range(0, 0.0, 64.0)), 2.0);
    }

    #[test]
    fn out_of_space_attribute_is_ignored() {
        let mut e = SelectivityEstimator::new(&space());
        e.record(&info(99, 1.0));
        assert!(!e.is_trained());
    }
}
