//! Poisson churn schedules (§V.C).
//!
//! The paper models the resource join/departure rate `R` as a Poisson
//! process "as in \[12\]" (the Chord paper): joins arrive at rate `R` per
//! second and departures independently at rate `R` per second, so e.g.
//! `R = 0.4` yields one join and one departure every 2.5 seconds on
//! average. A [`ChurnSchedule`] is the merged, time-ordered event list.

use dht_core::sampling::exponential;
use rand::Rng;

/// What happens at a churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// A new node joins the overlay.
    Join,
    /// A random existing node departs gracefully (handoff + notify).
    Leave,
    /// A random existing node fails ungracefully: no handoff, stale
    /// neighbor links linger until the next maintenance round.
    Fail,
}

/// One scheduled churn event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Simulated time in seconds.
    pub time: f64,
    /// Join or leave.
    pub kind: ChurnKind,
}

/// A time-ordered churn event schedule.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
    rate: f64,
}

impl ChurnSchedule {
    /// Generate the schedule for `duration` seconds at rate `R` (joins and
    /// departures each arrive at rate `R`).
    ///
    /// # Panics
    /// Panics if `rate` is not positive or `duration` is negative.
    pub fn generate<R: Rng + ?Sized>(rate: f64, duration: f64, rng: &mut R) -> Self {
        Self::generate_with_failures(rate, duration, 1.0, rng)
    }

    /// Like [`Self::generate`], but each departure is gracefully handled
    /// with probability `graceful_ratio` and otherwise becomes an
    /// ungraceful [`ChurnKind::Fail`].
    ///
    /// With `graceful_ratio >= 1.0` no departure coin is drawn at all,
    /// so the schedule (and the RNG stream consumed) is byte-identical
    /// to [`Self::generate`] — the graceful-only figures are unchanged.
    ///
    /// # Panics
    /// Panics if `rate` is not positive, `duration` is negative, or
    /// `graceful_ratio` is negative or NaN.
    pub fn generate_with_failures<R: Rng + ?Sized>(
        rate: f64,
        duration: f64,
        graceful_ratio: f64,
        rng: &mut R,
    ) -> Self {
        assert!(rate > 0.0, "churn rate must be positive");
        assert!(duration >= 0.0, "duration must be non-negative");
        assert!(graceful_ratio >= 0.0, "graceful ratio must be non-negative");
        let mut events = Vec::new();
        for kind in [ChurnKind::Join, ChurnKind::Leave] {
            let mut t = 0.0;
            loop {
                // lint:allow(float-accumulate): a Poisson arrival clock is
                // built by summing inter-arrival gaps in draw order — the
                // sequential order is the process definition.
                t += exponential(rng, rate);
                if t > duration {
                    break;
                }
                let kind = if kind == ChurnKind::Leave
                    && graceful_ratio < 1.0
                    && !rng.gen_bool(graceful_ratio)
                {
                    ChurnKind::Fail
                } else {
                    kind
                };
                events.push(ChurnEvent { time: t, kind });
            }
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        Self { events, rate }
    }

    /// The rate `R` the schedule was generated with.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// All events in time order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events with `time` in the half-open window `[from, to)`.
    pub fn window(&self, from: f64, to: f64) -> &[ChurnEvent] {
        let start = self.events.partition_point(|e| e.time < from);
        let end = self.events.partition_point(|e| e.time < to);
        &self.events[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0C0)
    }

    #[test]
    fn events_are_time_ordered() {
        let s = ChurnSchedule::generate(0.4, 1000.0, &mut rng());
        for w in s.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn event_count_matches_rate() {
        // E[#joins] = E[#leaves] = rate * duration
        let s = ChurnSchedule::generate(0.4, 10_000.0, &mut rng());
        let joins = s.events().iter().filter(|e| e.kind == ChurnKind::Join).count();
        let leaves = s.len() - joins;
        let expect = 0.4 * 10_000.0;
        assert!((joins as f64 - expect).abs() < 0.1 * expect, "joins={joins}");
        assert!((leaves as f64 - expect).abs() < 0.1 * expect, "leaves={leaves}");
    }

    #[test]
    fn higher_rate_means_more_events() {
        let slow = ChurnSchedule::generate(0.1, 5000.0, &mut rng());
        let fast = ChurnSchedule::generate(0.5, 5000.0, &mut rng());
        assert!(fast.len() > 3 * slow.len());
        assert_eq!(fast.rate(), 0.5);
    }

    #[test]
    fn zero_duration_is_empty() {
        let s = ChurnSchedule::generate(0.4, 0.0, &mut rng());
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = ChurnSchedule::generate(0.0, 10.0, &mut rng());
    }

    #[test]
    fn window_slices_by_time() {
        let s = ChurnSchedule::generate(1.0, 100.0, &mut rng());
        let w = s.window(10.0, 20.0);
        assert!(w.iter().all(|e| e.time >= 10.0 && e.time < 20.0));
        let all: usize =
            [s.window(0.0, 10.0).len(), w.len(), s.window(20.0, 101.0).len()].iter().sum();
        assert_eq!(all, s.len());
    }

    #[test]
    fn all_times_within_duration() {
        let s = ChurnSchedule::generate(0.3, 500.0, &mut rng());
        assert!(s.events().iter().all(|e| e.time > 0.0 && e.time <= 500.0));
    }

    #[test]
    fn graceful_only_ratio_is_byte_identical_to_generate() {
        // ratio >= 1.0 must not consume any extra RNG draws, so both the
        // schedule and the RNG left behind are identical.
        let mut a = rng();
        let mut b = rng();
        let plain = ChurnSchedule::generate(0.4, 2000.0, &mut a);
        let ratio = ChurnSchedule::generate_with_failures(0.4, 2000.0, 1.0, &mut b);
        assert_eq!(plain.events(), ratio.events());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_graceful_ratio_turns_every_leave_into_fail() {
        let s = ChurnSchedule::generate_with_failures(0.4, 2000.0, 0.0, &mut rng());
        assert!(s.events().iter().all(|e| e.kind != ChurnKind::Leave));
        let fails = s.events().iter().filter(|e| e.kind == ChurnKind::Fail).count();
        assert!(fails > 0);
    }

    #[test]
    fn fractional_ratio_mixes_leaves_and_fails() {
        let s = ChurnSchedule::generate_with_failures(0.4, 10_000.0, 0.5, &mut rng());
        let leaves = s.events().iter().filter(|e| e.kind == ChurnKind::Leave).count();
        let fails = s.events().iter().filter(|e| e.kind == ChurnKind::Fail).count();
        let joins = s.events().iter().filter(|e| e.kind == ChurnKind::Join).count();
        assert!(leaves > 0 && fails > 0);
        // Roughly half of ~rate*duration departures each way.
        let departures = (leaves + fails) as f64;
        assert!((fails as f64 - departures / 2.0).abs() < 0.15 * departures, "fails={fails}");
        // Joins untouched by the ratio.
        assert!((joins as f64 - 0.4 * 10_000.0).abs() < 0.1 * 0.4 * 10_000.0);
    }

    #[test]
    #[should_panic(expected = "graceful ratio must be non-negative")]
    fn negative_graceful_ratio_panics() {
        let _ = ChurnSchedule::generate_with_failures(0.4, 10.0, -0.1, &mut rng());
    }
}
