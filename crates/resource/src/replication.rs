//! Replicated piece identity and per-node replica stores.
//!
//! The replication layer (degree `k`) keeps each registered
//! [`ResourceInfo`] on its owner *plus* `k - 1` replica holders. This
//! module supplies the two data types every system shares:
//!
//! * [`PieceKey`] — the value identity of one logical registration,
//!   used to intersect the piece set before and after a churn run.
//!   Systems that register a report more than once (MAAN stores it under
//!   both its attribute key and its value key; Mercury stores one copy
//!   per hub) collapse to a single `PieceKey`, so "survived" means *any*
//!   registration or replica of the piece is still reachable.
//! * [`ReplicaStore`] — one node's replicas, each remembering which
//!   primary it was copied from and under which routing key, so the
//!   maintenance round can promote copies whose primary died.
//!
//! Both are sorted flat vectors (the workspace determinism contract bans
//! hash collections in result-bearing state).

use crate::model::ResourceInfo;
use dht_core::NodeIdx;

/// Value identity of one logical piece: attribute, exact value bits, and
/// the owning physical resource. Two registrations of the same report
/// (MAAN's dual keys, Mercury's per-hub copies, any replica) compare
/// equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PieceKey {
    /// Attribute index.
    pub attr: u32,
    /// IEEE-754 bit pattern of the attribute value (exact, total order).
    pub value_bits: u64,
    /// Physical node that registered the report.
    pub owner: usize,
}

impl PieceKey {
    /// The piece identity of one stored report.
    pub fn of(info: &ResourceInfo) -> Self {
        Self { attr: info.attr.0, value_bits: info.value.to_bits(), owner: info.owner }
    }
}

/// One replica held on behalf of a (possibly dead) primary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaEntry {
    /// Arena slot of the node this piece was copied from.
    pub primary: NodeIdx,
    /// Routing key the primary stored the piece under (systems place by
    /// different keys — attribute hash, locality hash of the value — so
    /// promotion must reroute by the original key).
    pub key: u64,
    /// The replicated report.
    pub info: ResourceInfo,
}

impl ReplicaEntry {
    fn sort_key(&self) -> (usize, u64, u32, u64, usize) {
        let p = PieceKey::of(&self.info);
        (self.primary.0, self.key, p.attr, p.value_bits, p.owner)
    }
}

/// A node's replica set, kept sorted by `(primary, key, piece)` so that
/// insertion is dedup-checked and iteration order is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicaStore {
    entries: Vec<ReplicaEntry>,
}

impl ReplicaStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a replica; returns `false` (and stores nothing) when an
    /// identical entry is already present.
    pub fn insert(&mut self, primary: NodeIdx, key: u64, info: ResourceInfo) -> bool {
        let e = ReplicaEntry { primary, key, info };
        match self.entries.binary_search_by_key(&e.sort_key(), ReplicaEntry::sort_key) {
            Ok(_) => false,
            Err(pos) => {
                self.entries.insert(pos, e);
                true
            }
        }
    }

    /// Whether an identical replica entry is present.
    pub fn contains(&self, primary: NodeIdx, key: u64, info: &ResourceInfo) -> bool {
        let e = ReplicaEntry { primary, key, info: *info };
        self.entries.binary_search_by_key(&e.sort_key(), ReplicaEntry::sort_key).is_ok()
    }

    /// Remove and return every entry whose primary fails `alive`, in
    /// sorted order — the promotion work-list of one repair round.
    pub fn drain_dead(&mut self, mut alive: impl FnMut(NodeIdx) -> bool) -> Vec<ReplicaEntry> {
        let mut dead = Vec::new();
        self.entries.retain(|e| {
            if alive(e.primary) {
                true
            } else {
                dead.push(*e);
                false
            }
        });
        dead
    }

    /// Drop every entry (the holder itself left or failed).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Entries in sorted order.
    pub fn entries(&self) -> &[ReplicaEntry] {
        &self.entries
    }

    /// Number of replicas held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no replicas are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append the piece identity of every held replica.
    pub fn keys_into(&self, out: &mut Vec<PieceKey>) {
        out.extend(self.entries.iter().map(|e| PieceKey::of(&e.info)));
    }
}

/// Sort and dedup a piece-set in place (the canonical form both sides of
/// a survival intersection use).
pub fn canonicalize_pieces(pieces: &mut Vec<PieceKey>) {
    pieces.sort_unstable();
    pieces.dedup();
}

/// How many of the (canonical, sorted, deduped) `initial` pieces are
/// present in the canonical `surviving` set.
pub fn count_surviving(initial: &[PieceKey], surviving: &[PieceKey]) -> usize {
    initial.iter().filter(|p| surviving.binary_search(p).is_ok()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AttrId;

    fn info(attr: u32, value: f64, owner: usize) -> ResourceInfo {
        ResourceInfo { attr: AttrId(attr), value, owner }
    }

    #[test]
    fn piece_key_collapses_duplicate_registrations() {
        let r = info(3, 1.5, 7);
        assert_eq!(PieceKey::of(&r), PieceKey::of(&r.clone()));
        let other = info(3, 1.5, 8);
        assert_ne!(PieceKey::of(&r), PieceKey::of(&other));
    }

    #[test]
    fn insert_dedups_identical_entries() {
        let mut s = ReplicaStore::new();
        assert!(s.insert(NodeIdx(1), 42, info(0, 2.0, 5)));
        assert!(!s.insert(NodeIdx(1), 42, info(0, 2.0, 5)));
        assert!(s.insert(NodeIdx(2), 42, info(0, 2.0, 5)), "distinct primary");
        assert!(s.insert(NodeIdx(1), 43, info(0, 2.0, 5)), "distinct key");
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeIdx(1), 42, &info(0, 2.0, 5)));
        assert!(!s.contains(NodeIdx(9), 42, &info(0, 2.0, 5)));
    }

    #[test]
    fn drain_dead_splits_by_primary_liveness() {
        let mut s = ReplicaStore::new();
        s.insert(NodeIdx(1), 10, info(0, 1.0, 1));
        s.insert(NodeIdx(2), 11, info(1, 2.0, 2));
        s.insert(NodeIdx(3), 12, info(2, 3.0, 3));
        let dead = s.drain_dead(|p| p.0 != 2);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].primary, NodeIdx(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn survival_intersection_counts_canonical_pieces() {
        let mut init = vec![
            PieceKey::of(&info(0, 1.0, 1)),
            PieceKey::of(&info(1, 2.0, 2)),
            PieceKey::of(&info(0, 1.0, 1)),
        ];
        canonicalize_pieces(&mut init);
        assert_eq!(init.len(), 2, "dedup removes the duplicate registration");
        let mut alive = vec![PieceKey::of(&info(1, 2.0, 2)), PieceKey::of(&info(9, 9.0, 9))];
        canonicalize_pieces(&mut alive);
        assert_eq!(count_surviving(&init, &alive), 1);
    }
}
