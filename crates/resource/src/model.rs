//! The resource model: attributes, resource information, queries.
//!
//! Following §III of the paper, a grid resource is described by a set of
//! attributes with globally known types (`a`) and values or string
//! descriptions (`π_a`). *Resource information* is the 3-tuple
//! `⟨a, π_a, ip_addr⟩` — either an availability report from the resource's
//! owner or a request. String descriptions are handled exactly like
//! values: the paper uses "attribute value" for the locality-preserving
//! hash of either, so the model stores a numeric value and leaves the
//! encoding of strings to the hash.

use dht_core::{DhtError, LocalityHash};

/// Index of an attribute within an [`AttributeSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl std::fmt::Display for AttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The globally known set of resource attributes and their value domains.
///
/// The paper assumes attribute types are globally known (CPU speed, free
/// memory, OS, …) with a bounded value domain each, which is what makes
/// locality-preserving hashing well defined.
#[derive(Debug, Clone)]
pub struct AttributeSpace {
    names: Vec<String>,
    domain_min: f64,
    domain_max: f64,
}

impl AttributeSpace {
    /// Create `m` synthetic attributes (`attr-000` …) sharing the value
    /// domain `[min, max]` — the paper's setup gives every attribute `k`
    /// values from one domain.
    ///
    /// # Errors
    /// [`DhtError::InvalidRange`] for an empty or non-finite domain.
    pub fn synthetic(m: usize, min: f64, max: f64) -> Result<Self, DhtError> {
        if !(min.is_finite() && max.is_finite()) || min >= max {
            return Err(DhtError::InvalidRange { low: min, high: max });
        }
        let names = (0..m).map(|i| format!("attr-{i:03}")).collect();
        Ok(Self { names, domain_min: min, domain_max: max })
    }

    /// Create from explicit attribute names with a shared domain.
    pub fn from_names<S: Into<String>>(
        names: impl IntoIterator<Item = S>,
        min: f64,
        max: f64,
    ) -> Result<Self, DhtError> {
        if !(min.is_finite() && max.is_finite()) || min >= max {
            return Err(DhtError::InvalidRange { low: min, high: max });
        }
        Ok(Self {
            names: names.into_iter().map(Into::into).collect(),
            domain_min: min,
            domain_max: max,
        })
    }

    /// Number of attributes (`m`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of an attribute.
    pub fn name(&self, a: AttrId) -> &str {
        &self.names[a.0 as usize]
    }

    /// Look up an attribute by name.
    pub fn by_name(&self, name: &str) -> Result<AttrId, DhtError> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| AttrId(i as u32))
            .ok_or_else(|| DhtError::UnknownAttribute { name: name.to_owned() })
    }

    /// Shared value domain `(min, max)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.domain_min, self.domain_max)
    }

    /// A locality-preserving hash for this domain onto `[0, span)`.
    pub fn lph(&self, span: u64) -> LocalityHash {
        LocalityHash::new(self.domain_min, self.domain_max, span)
            // lint:allow(panic-hygiene): AttributeSpace construction already
            // rejected empty/inverted domains, the only LocalityHash error.
            .expect("domain validated at construction")
    }

    /// Iterator over all attribute ids.
    pub fn ids(&self) -> impl Iterator<Item = AttrId> {
        // lint:allow(cast-truncation): attribute counts are validated
        // small at construction (a grid model has dozens of attributes,
        // nowhere near u32::MAX); AttrId's raw form is u32.
        (0..self.names.len() as u32).map(AttrId)
    }

    /// Clamp a value into the domain.
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.domain_min, self.domain_max)
    }
}

/// One piece of resource information: `⟨a, π_a, ip_addr⟩`.
///
/// `owner` is the *physical* node that owns (or requests) the resource —
/// the stand-in for the paper's `ip_addr(i)`. Physical node ids are
/// assigned by the experiment harness and shared across all systems under
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceInfo {
    /// Attribute type `a`.
    pub attr: AttrId,
    /// Available value `δπ_a`.
    pub value: f64,
    /// Owning physical node (`ip_addr`).
    pub owner: usize,
}

/// The value constraint of a sub-query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueTarget {
    /// Exact-value (non-range) constraint, e.g. `CPU = 1.8 GHz`.
    Point(f64),
    /// Range constraint `[low, high]`, e.g. `1 ≤ CPU ≤ 1.8`. One-sided
    /// queries (`CPU ≥ 1.8`) use the domain bound for the open side.
    Range {
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
    },
}

impl ValueTarget {
    /// Does `v` satisfy the constraint? Point matches use exact equality —
    /// workload values are generated on a discrete grid.
    pub fn matches(&self, v: f64) -> bool {
        match *self {
            ValueTarget::Point(p) => v == p,
            ValueTarget::Range { low, high } => (low..=high).contains(&v),
        }
    }

    /// Is this a range constraint?
    pub fn is_range(&self) -> bool {
        matches!(self, ValueTarget::Range { .. })
    }

    /// Validate bounds.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
    pub fn validate(&self) -> Result<(), DhtError> {
        if let ValueTarget::Range { low, high } = *self {
            if !(low <= high) {
                return Err(DhtError::InvalidRange { low, high });
            }
        }
        Ok(())
    }
}

/// One attribute constraint of a multi-attribute query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubQuery {
    /// Attribute the constraint applies to.
    pub attr: AttrId,
    /// The value constraint.
    pub target: ValueTarget,
}

/// A multi-attribute resource query issued by a requesting node.
///
/// Per §III, the query is decomposed into one sub-query per attribute;
/// sub-queries resolve in parallel and the requester joins the result
/// sets on `ip_addr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The per-attribute constraints (all must be satisfied by one owner).
    pub subs: Vec<SubQuery>,
}

impl Query {
    /// Build a query, validating every range.
    pub fn new(subs: Vec<SubQuery>) -> Result<Self, DhtError> {
        for s in &subs {
            s.target.validate()?;
        }
        Ok(Self { subs })
    }

    /// Number of attributes (`m` of an "m-attribute query").
    pub fn arity(&self) -> usize {
        self.subs.len()
    }

    /// True if any sub-query carries a range constraint.
    pub fn has_range(&self) -> bool {
        self.subs.iter().any(|s| s.target.is_range())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_space_basics() {
        let s = AttributeSpace::synthetic(200, 1.0, 500.0).unwrap();
        assert_eq!(s.len(), 200);
        assert_eq!(s.name(AttrId(0)), "attr-000");
        assert_eq!(s.name(AttrId(199)), "attr-199");
        assert_eq!(s.domain(), (1.0, 500.0));
        assert_eq!(s.ids().count(), 200);
    }

    #[test]
    fn space_rejects_bad_domain() {
        assert!(AttributeSpace::synthetic(5, 10.0, 10.0).is_err());
        assert!(AttributeSpace::synthetic(5, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn by_name_roundtrip() {
        let s = AttributeSpace::from_names(["cpu", "mem", "os"], 0.0, 1.0).unwrap();
        assert_eq!(s.by_name("mem").unwrap(), AttrId(1));
        assert!(matches!(s.by_name("disk"), Err(DhtError::UnknownAttribute { .. })));
    }

    #[test]
    fn lph_spans_domain() {
        let s = AttributeSpace::synthetic(1, 1.0, 501.0).unwrap();
        let h = s.lph(1000);
        assert_eq!(h.hash(1.0), 0);
        assert_eq!(h.hash(501.0), 999);
    }

    #[test]
    fn point_target_matches_exactly() {
        let t = ValueTarget::Point(42.0);
        assert!(t.matches(42.0));
        assert!(!t.matches(42.5));
        assert!(!t.is_range());
    }

    #[test]
    fn range_target_is_inclusive() {
        let t = ValueTarget::Range { low: 10.0, high: 20.0 };
        assert!(t.matches(10.0));
        assert!(t.matches(20.0));
        assert!(t.matches(15.0));
        assert!(!t.matches(9.99));
        assert!(!t.matches(20.01));
        assert!(t.is_range());
    }

    #[test]
    fn inverted_range_rejected() {
        let q = Query::new(vec![SubQuery {
            attr: AttrId(0),
            target: ValueTarget::Range { low: 5.0, high: 1.0 },
        }]);
        assert!(matches!(q, Err(DhtError::InvalidRange { .. })));
    }

    #[test]
    fn query_arity_and_range_detection() {
        let q = Query::new(vec![
            SubQuery { attr: AttrId(0), target: ValueTarget::Point(1.0) },
            SubQuery { attr: AttrId(1), target: ValueTarget::Range { low: 1.0, high: 2.0 } },
        ])
        .unwrap();
        assert_eq!(q.arity(), 2);
        assert!(q.has_range());
        let q2 = Query::new(vec![SubQuery { attr: AttrId(0), target: ValueTarget::Point(1.0) }])
            .unwrap();
        assert!(!q2.has_range());
    }

    #[test]
    fn clamp_into_domain() {
        let s = AttributeSpace::synthetic(1, 1.0, 500.0).unwrap();
        assert_eq!(s.clamp(-3.0), 1.0);
        assert_eq!(s.clamp(1e6), 500.0);
        assert_eq!(s.clamp(77.0), 77.0);
    }
}
