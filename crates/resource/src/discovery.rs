//! The `ResourceDiscovery` interface the experiment engine drives.
//!
//! LORM (`lorm` crate) and the three baselines (`baselines` crate) all
//! implement this trait over a population of *physical nodes* — the grid
//! machines of the paper, identified by dense `usize` ids standing in for
//! IP addresses. Each system maps physical nodes onto its own overlay
//! node(s): one Cycloid node for LORM, one Chord node for SWORD/MAAN, and
//! `m` hub nodes for Mercury.

use crate::model::{Query, ResourceInfo};
use crate::planner::{self, QueryPlan};
use crate::replication::PieceKey;
use crate::selectivity::SelectivityEstimator;
use dht_core::{DhtError, FaultPlan, LoadDist, LookupTally, NodeIdx, RepairStats, RouteCache};
use rand::rngs::SmallRng;

/// Result of resolving one multi-attribute query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOutcome {
    /// Aggregated cost over all sub-queries (hops, lookups, visited
    /// directory nodes, matched pieces).
    pub tally: LookupTally,
    /// Physical nodes that satisfy *every* sub-query — the result of the
    /// paper's database-like join on `ip_addr`.
    pub owners: Vec<usize>,
    /// Every directory node that checked its directory for this query
    /// (overlay arena indices; repeats allowed when several sub-queries
    /// hit the same node). Used by the query-load-balance experiment.
    pub probed: Vec<NodeIdx>,
}

/// Outcome of one query resolved under a [`FaultPlan`]: the plain
/// [`QueryOutcome`] plus degradation accounting.
///
/// Each sub-query ends in one of three states: *resolved* (lookup
/// succeeded and the directory walk ran to completion), *degraded*
/// (lookup succeeded but a fault truncated the walk, so the owner set
/// may be incomplete), or *failed* (the lookup never reached a
/// directory node within the retry budget). `subs_resolved` counts only
/// the first class; the query as a whole is complete when every
/// sub-query resolved and failed when none produced any answer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultyOutcome {
    /// The (possibly partial) query result. Costs include hops wasted
    /// on dropped or dead-ended attempts.
    pub outcome: QueryOutcome,
    /// Sub-queries that fully resolved (lookup ok, walk untruncated).
    pub subs_resolved: usize,
    /// Sub-queries whose lookup succeeded at all (resolved + degraded).
    pub subs_answered: usize,
    /// Total sub-queries in the query.
    pub subs_total: usize,
    /// Retries spent across all sub-query lookups.
    pub retries: u64,
    /// Messages lost in transit across all attempts.
    pub dropped_msgs: u64,
}

impl FaultyOutcome {
    /// Wrap a fault-free outcome: every sub-query fully resolved.
    pub fn complete(outcome: QueryOutcome, subs_total: usize) -> Self {
        Self {
            outcome,
            subs_resolved: subs_total,
            subs_answered: subs_total,
            subs_total,
            retries: 0,
            dropped_msgs: 0,
        }
    }

    /// Every sub-query fully resolved: the result is authoritative.
    pub fn is_complete(&self) -> bool {
        self.subs_resolved == self.subs_total
    }

    /// No sub-query produced any answer: the query failed outright.
    pub fn is_failed(&self) -> bool {
        self.subs_answered == 0 && self.subs_total > 0
    }

    /// Some but not all sub-queries resolved, or a walk was truncated:
    /// the owner set is usable but possibly incomplete.
    pub fn is_partial(&self) -> bool {
        !self.is_complete() && !self.is_failed()
    }
}

/// A multi-attribute range-capable resource discovery system under test.
pub trait ResourceDiscovery {
    /// Short system name used in reports ("LORM", "Mercury", …).
    fn name(&self) -> &'static str;

    /// Deep-copy this system behind a fresh box — the snapshot primitive
    /// of the bed cache. The clone carries *all* state (overlay links,
    /// directories, RNGs), so driving the clone and the original through
    /// identical operation sequences yields identical results, and
    /// mutating one never observably affects the other.
    fn clone_box(&self) -> Box<dyn ResourceDiscovery + Send + Sync>;

    /// Number of live physical nodes.
    fn num_physical(&self) -> usize;

    /// Is this physical node currently part of the system?
    fn is_live(&self, phys: usize) -> bool;

    /// Replace all stored directory state with ground-truth placement of
    /// `reports` — the steady state after every node's periodic
    /// `Insert(rescID, rescInfo)` report has been delivered.
    fn place_all(&mut self, reports: &[ResourceInfo]);

    /// Deliver one availability report through routed inserts from its
    /// owner, returning the routing cost. (The steady-state experiments
    /// use [`Self::place_all`]; this is the per-report path.)
    fn register(&mut self, info: ResourceInfo) -> Result<LookupTally, DhtError>;

    /// Resolve a multi-attribute query issued by physical node `phys`,
    /// counting every hop and visited directory node.
    fn query_from(&self, phys: usize, q: &Query) -> Result<QueryOutcome, DhtError>;

    /// Resolve a query through a [`RouteCache`]: identical results to
    /// [`Self::query_from`] — the cache memoizes routing over the current
    /// overlay epoch, and every mutating op invalidates — with the
    /// repeated O(log n) lookups of a static bed answered from memory.
    ///
    /// The default ignores the cache and delegates, which is always
    /// correct; systems override it to route their sub-query lookups and
    /// range walks through the cache.
    fn query_from_cached(
        &self,
        phys: usize,
        q: &Query,
        cache: &mut RouteCache,
    ) -> Result<QueryOutcome, DhtError> {
        let _ = cache;
        self.query_from(phys, q)
    }

    /// The per-attribute selectivity histograms maintained by this
    /// system, if it keeps any. The adaptive query plan consults this to
    /// order sub-queries most-selective-first; `None` (the default) makes
    /// [`QueryPlan::Adaptive`] degrade gracefully to document order.
    fn selectivity(&self) -> Option<&SelectivityEstimator> {
        None
    }

    /// Resolve `q` under an explicit [`QueryPlan`].
    ///
    /// `Parallel` delegates to [`Self::query_from`]; `Sequential` and
    /// `Adaptive` resolve sub-queries one at a time (ordered by
    /// [`planner::plan_order`]), threading the surviving candidate set
    /// and short-circuiting when it empties — remaining sub-queries are
    /// skipped entirely, their lookups never happen. All three plans
    /// return identical owner sets; tally semantics are documented in
    /// [`crate::planner`].
    fn query_planned(
        &self,
        phys: usize,
        q: &Query,
        plan: QueryPlan,
    ) -> Result<QueryOutcome, DhtError> {
        match plan {
            QueryPlan::Parallel => self.query_from(phys, q),
            QueryPlan::Sequential | QueryPlan::Adaptive => {
                let order = planner::plan_order(q, plan, self.selectivity());
                planner::resolve_in_order(q, &order, &mut |single| self.query_from(phys, single))
            }
        }
    }

    /// The cached twin of [`Self::query_planned`]: sub-query lookups and
    /// range walks flow through `cache` exactly as in
    /// [`Self::query_from_cached`]. Identical results to the uncached
    /// twin — plan ordering depends only on the (immutable during a
    /// query) selectivity histograms, never on cache state.
    fn query_planned_cached(
        &self,
        phys: usize,
        q: &Query,
        plan: QueryPlan,
        cache: &mut RouteCache,
    ) -> Result<QueryOutcome, DhtError> {
        match plan {
            QueryPlan::Parallel => self.query_from_cached(phys, q, cache),
            QueryPlan::Sequential | QueryPlan::Adaptive => {
                let order = planner::plan_order(q, plan, self.selectivity());
                planner::resolve_in_order(q, &order, &mut |single| {
                    self.query_from_cached(phys, single, cache)
                })
            }
        }
    }

    /// The cached twin of [`Self::query_from_faulty`]. Fault coins are
    /// drawn per message, so a faulted route is *not* a pure function of
    /// `(overlay, from, key)` — only the inert-plan fast path may consult
    /// the cache; everything else takes the uncached faulty path. Both
    /// branches are byte-identical to the uncached twin by construction.
    fn query_from_faulty_cached(
        &self,
        phys: usize,
        q: &Query,
        plan: &FaultPlan,
        msg_seed: u64,
        cache: &mut RouteCache,
    ) -> Result<FaultyOutcome, DhtError> {
        if plan.is_inert() {
            return Ok(FaultyOutcome::complete(self.query_from_cached(phys, q, cache)?, q.arity()));
        }
        self.query_from_faulty(phys, q, plan, msg_seed)
    }

    /// Resolve a query while `plan` injects message drops and routes
    /// around ungracefully failed nodes. `msg_seed` identifies the query
    /// in the fault coin stream: the same `(plan, msg_seed)` pair always
    /// draws the same faults regardless of sharding.
    ///
    /// The default is fault-unaware: it delegates to
    /// [`Self::query_from`] and reports a complete outcome, which is
    /// exactly right when `plan.is_inert()`. Systems override this to
    /// add bounded retry, alternate-probe fallback, and partial-result
    /// accounting.
    fn query_from_faulty(
        &self,
        phys: usize,
        q: &Query,
        plan: &FaultPlan,
        msg_seed: u64,
    ) -> Result<FaultyOutcome, DhtError> {
        let _ = (plan, msg_seed);
        Ok(FaultyOutcome::complete(self.query_from(phys, q)?, q.arity()))
    }

    /// Resource-information pieces currently stored per live physical node
    /// (the directory-size distribution of Figure 3(b–d)).
    fn directory_loads(&self) -> LoadDist;

    /// Total stored pieces across all directories (Theorem 4.2's metric:
    /// MAAN stores two pieces per report, everyone else one).
    fn total_pieces(&self) -> usize;

    /// Distinct overlay outlinks maintained per live physical node
    /// (the structure-maintenance metric of Figure 3(a); Mercury pays this
    /// once per attribute hub).
    fn outlinks_per_node(&self) -> LoadDist;

    /// A new physical node joins (churn). Returns its id.
    fn join_physical(&mut self, rng: &mut SmallRng) -> Result<usize, DhtError>;

    /// Physical node `phys` departs gracefully (churn).
    fn leave_physical(&mut self, phys: usize) -> Result<(), DhtError>;

    /// Physical node `phys` fails abruptly: no handoff, no notifications —
    /// its directory contents are lost until the next reporting round and
    /// neighbors' links stay stale until repair.
    fn fail_physical(&mut self, phys: usize) -> Result<(), DhtError>;

    /// Run one maintenance round (stabilization / link repair) across the
    /// system's overlay(s). When replication is enabled this also repairs
    /// replica placement: copies whose primary died are promoted to the
    /// new owner, and under-replicated pieces are re-copied to their
    /// current targets (bandwidth accounted in [`Self::repair_stats`]).
    fn stabilize(&mut self);

    /// Enable replication at degree `k`: each stored piece lives on its
    /// owner plus `k - 1` neighbor-set replicas, seeded immediately from
    /// the current directories (the seeding is initial placement, not
    /// repair, so it is *not* counted in [`Self::repair_stats`]).
    ///
    /// `k <= 1` (the default everywhere) disables replication entirely —
    /// no replica state, no repair work, byte-identical behaviour to a
    /// build without this layer. The default impl ignores the request,
    /// which is exactly that contract.
    fn set_replication(&mut self, k: usize) {
        let _ = k;
    }

    /// The configured replication degree (`1` = unreplicated).
    fn replication(&self) -> usize {
        1
    }

    /// Cumulative replica-repair bandwidth counters (zero while
    /// unreplicated).
    fn repair_stats(&self) -> RepairStats {
        RepairStats::default()
    }

    /// Append the [`PieceKey`] of every piece currently reachable on a
    /// *live* node — primaries and replicas both. The caller owns
    /// canonicalization (sort + dedup); duplicate registrations of one
    /// logical piece are expected and collapse there.
    fn surviving_pieces_into(&self, out: &mut Vec<PieceKey>);
}

impl Clone for Box<dyn ResourceDiscovery + Send + Sync> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The requester-side "database-like join on `ip_addr`": intersect the
/// per-sub-query owner sets, returning owners that satisfy every
/// constraint. Inputs are the matched owners of each sub-query.
pub fn join_owners(mut per_sub: Vec<Vec<usize>>) -> Vec<usize> {
    let Some(mut acc) = per_sub.pop() else {
        return Vec::new();
    };
    acc.sort_unstable();
    acc.dedup();
    for mut set in per_sub {
        set.sort_unstable();
        set.dedup();
        acc.retain(|o| set.binary_search(o).is_ok());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_of_nothing_is_empty() {
        assert!(join_owners(vec![]).is_empty());
    }

    #[test]
    fn join_single_set_dedupes() {
        assert_eq!(join_owners(vec![vec![3, 1, 3, 2]]), vec![1, 2, 3]);
    }

    #[test]
    fn join_intersects() {
        let r = join_owners(vec![vec![1, 2, 3, 4], vec![2, 4, 6], vec![4, 2, 0]]);
        assert_eq!(r, vec![2, 4]);
    }

    #[test]
    fn join_with_empty_set_is_empty() {
        let r = join_owners(vec![vec![1, 2], vec![]]);
        assert!(r.is_empty());
    }

    #[test]
    fn join_disjoint_is_empty() {
        let r = join_owners(vec![vec![1, 3], vec![2, 4]]);
        assert!(r.is_empty());
    }

    #[test]
    fn query_outcome_default_is_zero() {
        let o = QueryOutcome::default();
        assert_eq!(o.tally, LookupTally::default());
        assert!(o.owners.is_empty());
    }

    #[test]
    fn complete_faulty_outcome_classifies_as_complete() {
        let f = FaultyOutcome::complete(QueryOutcome::default(), 3);
        assert!(f.is_complete());
        assert!(!f.is_partial());
        assert!(!f.is_failed());
        assert_eq!(f.subs_resolved, 3);
        assert_eq!(f.subs_answered, 3);
        assert_eq!(f.retries, 0);
        assert_eq!(f.dropped_msgs, 0);
    }

    #[test]
    fn all_subs_failed_classifies_as_failed() {
        let f = FaultyOutcome { subs_total: 2, ..FaultyOutcome::default() };
        assert!(f.is_failed());
        assert!(!f.is_partial());
        assert!(!f.is_complete());
    }

    #[test]
    fn mixed_subs_classify_as_partial() {
        // One sub resolved, one failed.
        let f = FaultyOutcome {
            subs_resolved: 1,
            subs_answered: 1,
            subs_total: 2,
            ..FaultyOutcome::default()
        };
        assert!(f.is_partial());
        // All answered but one walk truncated: still partial.
        let g = FaultyOutcome {
            subs_resolved: 1,
            subs_answered: 2,
            subs_total: 2,
            ..FaultyOutcome::default()
        };
        assert!(g.is_partial());
        assert!(!g.is_failed());
    }
}
