//! The `ResourceDiscovery` interface the experiment engine drives.
//!
//! LORM (`lorm` crate) and the three baselines (`baselines` crate) all
//! implement this trait over a population of *physical nodes* — the grid
//! machines of the paper, identified by dense `usize` ids standing in for
//! IP addresses. Each system maps physical nodes onto its own overlay
//! node(s): one Cycloid node for LORM, one Chord node for SWORD/MAAN, and
//! `m` hub nodes for Mercury.

use crate::model::{Query, ResourceInfo};
use dht_core::{DhtError, LoadDist, LookupTally, NodeIdx};
use rand::rngs::SmallRng;

/// Result of resolving one multi-attribute query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOutcome {
    /// Aggregated cost over all sub-queries (hops, lookups, visited
    /// directory nodes, matched pieces).
    pub tally: LookupTally,
    /// Physical nodes that satisfy *every* sub-query — the result of the
    /// paper's database-like join on `ip_addr`.
    pub owners: Vec<usize>,
    /// Every directory node that checked its directory for this query
    /// (overlay arena indices; repeats allowed when several sub-queries
    /// hit the same node). Used by the query-load-balance experiment.
    pub probed: Vec<NodeIdx>,
}

/// A multi-attribute range-capable resource discovery system under test.
pub trait ResourceDiscovery {
    /// Short system name used in reports ("LORM", "Mercury", …).
    fn name(&self) -> &'static str;

    /// Number of live physical nodes.
    fn num_physical(&self) -> usize;

    /// Is this physical node currently part of the system?
    fn is_live(&self, phys: usize) -> bool;

    /// Replace all stored directory state with ground-truth placement of
    /// `reports` — the steady state after every node's periodic
    /// `Insert(rescID, rescInfo)` report has been delivered.
    fn place_all(&mut self, reports: &[ResourceInfo]);

    /// Deliver one availability report through routed inserts from its
    /// owner, returning the routing cost. (The steady-state experiments
    /// use [`Self::place_all`]; this is the per-report path.)
    fn register(&mut self, info: ResourceInfo) -> Result<LookupTally, DhtError>;

    /// Resolve a multi-attribute query issued by physical node `phys`,
    /// counting every hop and visited directory node.
    fn query_from(&self, phys: usize, q: &Query) -> Result<QueryOutcome, DhtError>;

    /// Resource-information pieces currently stored per live physical node
    /// (the directory-size distribution of Figure 3(b–d)).
    fn directory_loads(&self) -> LoadDist;

    /// Total stored pieces across all directories (Theorem 4.2's metric:
    /// MAAN stores two pieces per report, everyone else one).
    fn total_pieces(&self) -> usize;

    /// Distinct overlay outlinks maintained per live physical node
    /// (the structure-maintenance metric of Figure 3(a); Mercury pays this
    /// once per attribute hub).
    fn outlinks_per_node(&self) -> LoadDist;

    /// A new physical node joins (churn). Returns its id.
    fn join_physical(&mut self, rng: &mut SmallRng) -> Result<usize, DhtError>;

    /// Physical node `phys` departs gracefully (churn).
    fn leave_physical(&mut self, phys: usize) -> Result<(), DhtError>;

    /// Physical node `phys` fails abruptly: no handoff, no notifications —
    /// its directory contents are lost until the next reporting round and
    /// neighbors' links stay stale until repair.
    fn fail_physical(&mut self, phys: usize) -> Result<(), DhtError>;

    /// Run one maintenance round (stabilization / link repair) across the
    /// system's overlay(s).
    fn stabilize(&mut self);
}

/// The requester-side "database-like join on `ip_addr`": intersect the
/// per-sub-query owner sets, returning owners that satisfy every
/// constraint. Inputs are the matched owners of each sub-query.
pub fn join_owners(mut per_sub: Vec<Vec<usize>>) -> Vec<usize> {
    let Some(mut acc) = per_sub.pop() else {
        return Vec::new();
    };
    acc.sort_unstable();
    acc.dedup();
    for mut set in per_sub {
        set.sort_unstable();
        set.dedup();
        acc.retain(|o| set.binary_search(o).is_ok());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_of_nothing_is_empty() {
        assert!(join_owners(vec![]).is_empty());
    }

    #[test]
    fn join_single_set_dedupes() {
        assert_eq!(join_owners(vec![vec![3, 1, 3, 2]]), vec![1, 2, 3]);
    }

    #[test]
    fn join_intersects() {
        let r = join_owners(vec![vec![1, 2, 3, 4], vec![2, 4, 6], vec![4, 2, 0]]);
        assert_eq!(r, vec![2, 4]);
    }

    #[test]
    fn join_with_empty_set_is_empty() {
        let r = join_owners(vec![vec![1, 2], vec![]]);
        assert!(r.is_empty());
    }

    #[test]
    fn join_disjoint_is_empty() {
        let r = join_owners(vec![vec![1, 3], vec![2, 4]]);
        assert!(r.is_empty());
    }

    #[test]
    fn query_outcome_default_is_zero() {
        let o = QueryOutcome::default();
        assert_eq!(o.tally, LookupTally::default());
        assert!(o.owners.is_empty());
    }
}
