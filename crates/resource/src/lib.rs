//! # grid-resource — grid resource model, workloads and churn
//!
//! The vocabulary of the paper's evaluation (§V), shared by LORM and the
//! three baseline systems:
//!
//! * [`model`] — attributes with bounded value domains, resource
//!   information 3-tuples `⟨a, π_a, ip_addr⟩`, and multi-attribute
//!   point/range queries;
//! * [`workload`] — the synthetic workload of §V: `m = 200` attributes,
//!   `k = 500` values per attribute, values drawn Bounded-Pareto or
//!   uniformly, range queries whose expected walk covers a quarter of the
//!   value domain (the paper's average-case assumption in Theorem 4.9);
//! * [`churn`] — Poisson join/departure schedules with rate `R`
//!   (§V.C models churn "as in \[12\]", i.e. the Chord paper);
//! * [`discovery`] — the `ResourceDiscovery` trait: the narrow interface
//!   the experiment engine drives, implemented by `lorm` and by
//!   `baselines::{Mercury, Sword, Maan}`;
//! * [`planner`] — trait-level multi-attribute query plans
//!   (`Parallel | Sequential | Adaptive`) with candidate-set threading
//!   and a zero-allocation sorted-merge intersection;
//! * [`selectivity`] — deterministic per-attribute equi-width value
//!   histograms feeding the adaptive plan's most-selective-first order.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod directory;
pub mod discovery;
pub mod model;
pub mod planner;
pub mod replication;
pub mod selectivity;
pub mod workload;

pub use churn::{ChurnEvent, ChurnKind, ChurnSchedule};
pub use directory::Directory;
pub use discovery::{FaultyOutcome, QueryOutcome, ResourceDiscovery};
pub use model::{AttrId, AttributeSpace, Query, ResourceInfo, SubQuery, ValueTarget};
pub use planner::{intersect_sorted, QueryPlan};
pub use replication::{canonicalize_pieces, count_surviving, PieceKey, ReplicaEntry, ReplicaStore};
pub use selectivity::SelectivityEstimator;
pub use workload::{AttrPopularity, QueryMix, ValueDist, Workload, WorkloadConfig};
