//! Multi-attribute query planning — a trait-level capability of every
//! [`crate::ResourceDiscovery`] system.
//!
//! §III of the paper resolves the sub-queries of a multi-attribute query
//! **in parallel** and joins the full owner sets at the requester. That
//! minimizes latency but ships every sub-query's complete match list
//! back. The classic database alternative resolves sub-queries
//! **sequentially**, threading the surviving candidate set through:
//! after the first sub-query, each directory only returns owners that
//! are still candidates, so transfer volume collapses to roughly the
//! first attribute's match count. The **adaptive** plan goes one step
//! further: it orders sub-queries most-selective-first using the
//! per-attribute histograms of [`crate::SelectivityEstimator`], so the
//! candidate set is small from the very first step and empty
//! intersections short-circuit the remaining lookups entirely.
//!
//! ## Tally semantics under sequential/adaptive plans
//!
//! `matches` counts **pieces shipped to the requester**, the paper's
//! transfer-volume metric and the one the plans differ on:
//!
//! * the *first* resolved sub-query ships its full match list — the same
//!   pieces the parallel plan would count for that sub-query (duplicate
//!   owners included, one entry per piece), so an arity-1 query tallies
//!   identically under every plan;
//! * every *later* step ships one entry per **surviving** owner — the
//!   directory filters against the candidate set before answering;
//! * a step that empties the candidate set ends the query: remaining
//!   sub-queries are skipped and their lookups never happen.
//!
//! `owners.len()` is the final answer size; `matches >= owners.len()`
//! always holds. `probed` is deduplicated order-preservingly — a
//! directory node visited by several sequential steps appears once.

use crate::discovery::QueryOutcome;
use crate::model::Query;
use crate::selectivity::SelectivityEstimator;
use dht_core::{DhtError, LookupTally, NodeIdx};

/// How a multi-attribute query is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryPlan {
    /// All sub-queries in parallel; join at the requester (§III).
    #[default]
    Parallel,
    /// Sequential resolution in document order, threading the candidate
    /// set: each subsequent directory filters against the survivors of
    /// the previous step.
    Sequential,
    /// Sequential resolution ordered most-selective-first by the
    /// system's [`SelectivityEstimator`] histograms; falls back to
    /// document order when the estimator is absent or untrained.
    Adaptive,
}

impl QueryPlan {
    /// Every plan, in ablation-sweep order.
    pub const ALL: [QueryPlan; 3] =
        [QueryPlan::Parallel, QueryPlan::Sequential, QueryPlan::Adaptive];

    /// Lower-case name used in CLI flags, JSON and report labels.
    pub fn name(self) -> &'static str {
        match self {
            QueryPlan::Parallel => "parallel",
            QueryPlan::Sequential => "sequential",
            QueryPlan::Adaptive => "adaptive",
        }
    }

    /// Parse a CLI flag value (the inverse of [`Self::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "parallel" => Some(QueryPlan::Parallel),
            "sequential" => Some(QueryPlan::Sequential),
            "adaptive" => Some(QueryPlan::Adaptive),
            _ => None,
        }
    }
}

/// When one side is this many times longer than the other, the sorted
/// merge switches to galloping (exponential probe + binary search) over
/// the longer side.
const GALLOP_FACTOR: usize = 8;

/// Intersect two sorted, deduplicated owner sets **in place** on `acc`,
/// allocation-free: `acc` keeps exactly the elements also present in
/// `other`. The merge walks both sides linearly when they are comparable
/// in size and gallops through the longer side on an 8× or larger
/// size mismatch. Proven 0 allocs/call by the counting-global-allocator
/// harness (`crates/bench/tests/alloc_count_planner.rs`).
pub fn intersect_sorted(acc: &mut Vec<usize>, other: &[usize]) {
    let mut w = 0;
    if other.len() >= acc.len().saturating_mul(GALLOP_FACTOR) {
        // Few candidates, long answer: gallop through `other`.
        let mut j = 0;
        for i in 0..acc.len() {
            let x = acc[i];
            j += gallop_to(&other[j..], x);
            if j < other.len() && other[j] == x {
                acc[w] = x;
                w += 1;
                j += 1;
            }
        }
    } else if acc.len() >= other.len().saturating_mul(GALLOP_FACTOR) {
        // Long candidate list, few answers: gallop through `acc`.
        let mut i = 0;
        for &x in other {
            i += gallop_to(&acc[i..], x);
            if i < acc.len() && acc[i] == x {
                acc[w] = x;
                w += 1;
                i += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < acc.len() && j < other.len() {
            match acc[i].cmp(&other[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc[w] = acc[i];
                    w += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    acc.truncate(w);
}

/// Offset of the first element of sorted `s` that is `>= x`, found by
/// exponential probing then binary search within the bracketed window.
fn gallop_to(s: &[usize], x: usize) -> usize {
    let mut hi = 1;
    while hi < s.len() && s[hi - 1] < x {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(s.len());
    lo + s[lo..hi].partition_point(|&v| v < x)
}

/// Sub-query resolution order for `plan`. Returns indices into `q.subs`.
///
/// `Adaptive` sorts ascending by estimated match count with the original
/// index as a deterministic tie-break; `Sequential` (and an untrained or
/// absent estimator) keeps document order.
pub fn plan_order(q: &Query, plan: QueryPlan, sel: Option<&SelectivityEstimator>) -> Vec<usize> {
    let mut order: Vec<usize> = (0..q.subs.len()).collect();
    if plan == QueryPlan::Adaptive {
        if let Some(sel) = sel.filter(|s| s.is_trained()) {
            let est: Vec<f64> = q.subs.iter().map(|s| sel.estimate(s)).collect();
            // f64 comparison: estimates are finite sums of finite counts,
            // total_cmp keeps the sort deterministic regardless.
            order.sort_by(|&a, &b| est[a].total_cmp(&est[b]).then(a.cmp(&b)));
        }
    }
    order
}

/// Resolve `q` one sub-query at a time in `order`, threading the
/// surviving candidate set, with the tally semantics documented at the
/// module level. `resolve` answers a single-sub query (a borrowed scratch
/// query, rebuilt per step) — the trait layer binds it to `query_from`
/// or `query_from_cached`.
pub fn resolve_in_order(
    q: &Query,
    order: &[usize],
    resolve: &mut dyn FnMut(&Query) -> Result<QueryOutcome, DhtError>,
) -> Result<QueryOutcome, DhtError> {
    let mut tally = LookupTally::default();
    let mut probed_all: Vec<NodeIdx> = Vec::new();
    let mut survivors: Vec<usize> = Vec::new();
    let mut first = true;
    // One single-sub scratch query reused across the sequential steps.
    let mut single = Query { subs: Vec::with_capacity(1) };
    for &idx in order {
        if !first && survivors.is_empty() {
            break; // short-circuit: nothing can match anymore
        }
        single.subs.clear();
        single.subs.push(q.subs[idx]);
        let out = resolve(&single)?;
        tally.hops += out.tally.hops;
        tally.lookups += out.tally.lookups;
        tally.visited += out.tally.visited;
        // Order-preserving dedup: a directory visited twice probes once.
        for p in out.probed {
            if !probed_all.contains(&p) {
                probed_all.push(p);
            }
        }
        let mut found = out.owners;
        if first {
            // First step ships its full match list (one entry per piece,
            // duplicates included) — identical to the parallel tally for
            // this sub-query.
            tally.matches += out.tally.matches;
            found.sort_unstable();
            found.dedup();
            survivors = found;
            first = false;
        } else {
            found.sort_unstable();
            found.dedup();
            intersect_sorted(&mut survivors, &found);
            // Later steps ship one entry per surviving owner.
            tally.matches += survivors.len();
        }
    }
    Ok(QueryOutcome { tally, owners: survivors, probed: probed_all })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttrId, SubQuery, ValueTarget};

    #[test]
    fn plan_names_round_trip() {
        for plan in QueryPlan::ALL {
            assert_eq!(QueryPlan::parse(plan.name()), Some(plan));
        }
        assert_eq!(QueryPlan::parse("bogus"), None);
    }

    #[test]
    fn default_plan_is_parallel() {
        assert_eq!(QueryPlan::default(), QueryPlan::Parallel);
    }

    fn check_intersect(a: &[usize], b: &[usize]) {
        let mut acc = a.to_vec();
        intersect_sorted(&mut acc, b);
        let want: Vec<usize> = a.iter().copied().filter(|x| b.binary_search(x).is_ok()).collect();
        assert_eq!(acc, want, "a={a:?} b={b:?}");
    }

    #[test]
    fn intersect_matches_reference_on_comparable_sizes() {
        check_intersect(&[1, 3, 5, 7, 9], &[2, 3, 4, 7, 10]);
        check_intersect(&[], &[1, 2, 3]);
        check_intersect(&[1, 2, 3], &[]);
        check_intersect(&[4, 5, 6], &[4, 5, 6]);
        check_intersect(&[1, 2], &[3, 4]);
    }

    #[test]
    fn intersect_gallops_when_other_is_long() {
        let long: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        check_intersect(&[9, 10, 300, 2997], &long);
        check_intersect(&[0], &long);
        check_intersect(&[2998], &long);
    }

    #[test]
    fn intersect_gallops_when_acc_is_long() {
        let long: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        check_intersect(&long, &[0, 7, 500, 1998]);
        check_intersect(&long, &[1999]);
    }

    #[test]
    fn intersect_never_allocates_scratch() {
        // Capacity is preserved: the merge writes in place and truncates.
        let mut acc: Vec<usize> = (0..100).collect();
        let cap = acc.capacity();
        intersect_sorted(&mut acc, &[5, 50, 99]);
        assert_eq!(acc, vec![5, 50, 99]);
        assert_eq!(acc.capacity(), cap);
    }

    #[test]
    fn gallop_to_finds_lower_bound() {
        let s = [2, 4, 6, 8, 10];
        assert_eq!(gallop_to(&s, 1), 0);
        assert_eq!(gallop_to(&s, 2), 0);
        assert_eq!(gallop_to(&s, 5), 2);
        assert_eq!(gallop_to(&s, 10), 4);
        assert_eq!(gallop_to(&s, 11), 5);
        assert_eq!(gallop_to(&[], 3), 0);
    }

    fn sub(attr: u32, low: f64, high: f64) -> SubQuery {
        SubQuery { attr: AttrId(attr), target: ValueTarget::Range { low, high } }
    }

    #[test]
    fn untrained_estimator_keeps_document_order() {
        let space = crate::AttributeSpace::synthetic(3, 0.0, 10.0).unwrap();
        let sel = SelectivityEstimator::new(&space);
        let q = Query { subs: vec![sub(2, 0.0, 10.0), sub(0, 0.0, 1.0), sub(1, 0.0, 5.0)] };
        assert_eq!(plan_order(&q, QueryPlan::Adaptive, Some(&sel)), vec![0, 1, 2]);
        assert_eq!(plan_order(&q, QueryPlan::Sequential, Some(&sel)), vec![0, 1, 2]);
        assert_eq!(plan_order(&q, QueryPlan::Adaptive, None), vec![0, 1, 2]);
    }

    #[test]
    fn adaptive_orders_most_selective_first() {
        let space = crate::AttributeSpace::synthetic(3, 0.0, 10.0).unwrap();
        let mut sel = SelectivityEstimator::new(&space);
        for a in 0..3u32 {
            for v in 0..10 {
                sel.record(&crate::ResourceInfo { attr: AttrId(a), value: v as f64, owner: 0 });
            }
        }
        // narrow range on attr 2, medium on attr 1, full on attr 0
        let q = Query { subs: vec![sub(0, 0.0, 10.0), sub(1, 0.0, 5.0), sub(2, 0.0, 1.0)] };
        assert_eq!(plan_order(&q, QueryPlan::Adaptive, Some(&sel)), vec![2, 1, 0]);
    }

    #[test]
    fn resolve_in_order_threads_candidates_and_short_circuits() {
        // Synthetic resolver: attr 0 matches owners {1,2,3} (4 pieces:
        // owner 1 twice), attr 1 matches {2,3}, attr 2 matches nothing.
        let answers = |attr: u32| -> Vec<usize> {
            match attr {
                0 => vec![1, 1, 2, 3],
                1 => vec![2, 3],
                _ => vec![],
            }
        };
        let mut calls = 0usize;
        let mut resolve = |single: &Query| {
            calls += 1;
            let owners = answers(single.subs[0].attr.0);
            let tally = LookupTally { hops: 2, lookups: 1, visited: 1, matches: owners.len() };
            Ok(QueryOutcome { tally, owners, probed: vec![NodeIdx(7)] })
        };
        let q = Query { subs: vec![sub(0, 0.0, 1.0), sub(1, 0.0, 1.0), sub(2, 0.0, 1.0)] };

        let out = resolve_in_order(&q, &[0, 1, 2], &mut resolve).unwrap();
        assert_eq!(out.owners, vec![]);
        // 4 pieces from step one + 2 survivors + 0 survivors
        assert_eq!(out.tally.matches, 6);
        assert_eq!(out.tally.lookups, 3);
        // probed dedups the repeated directory node
        assert_eq!(out.probed, vec![NodeIdx(7)]);
        assert_eq!(calls, 3);

        // Most-selective-first: attr 2 empties the set immediately and
        // the other lookups never happen.
        calls = 0;
        let mut resolve2 = |single: &Query| {
            calls += 1;
            let owners = answers(single.subs[0].attr.0);
            let tally = LookupTally { hops: 2, lookups: 1, visited: 1, matches: owners.len() };
            Ok(QueryOutcome { tally, owners, probed: vec![NodeIdx(7)] })
        };
        let out = resolve_in_order(&q, &[2, 1, 0], &mut resolve2).unwrap();
        assert!(out.owners.is_empty());
        assert_eq!(out.tally.lookups, 1);
        assert_eq!(out.tally.matches, 0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn matches_never_below_final_owner_count() {
        // First step ships pieces (>= distinct owners); later steps ship
        // survivor sets that only shrink — matches >= owners.len().
        let mut resolve = |single: &Query| {
            let owners = vec![1, 2, 5, 5];
            let _ = single;
            Ok(QueryOutcome {
                tally: LookupTally { hops: 0, lookups: 1, visited: 1, matches: owners.len() },
                owners,
                probed: vec![],
            })
        };
        let q = Query { subs: vec![sub(0, 0.0, 1.0), sub(1, 0.0, 1.0)] };
        let out = resolve_in_order(&q, &[0, 1], &mut resolve).unwrap();
        assert_eq!(out.owners, vec![1, 2, 5]);
        assert_eq!(out.tally.matches, 4 + 3);
        assert!(out.tally.matches >= out.owners.len());
    }

    #[test]
    fn arity_one_sequential_matches_equal_parallel_pieces() {
        // Satellite pin: with a single sub-query the sequential tally is
        // the piece count, not the deduped owner count.
        let mut resolve = |_: &Query| {
            Ok(QueryOutcome {
                tally: LookupTally { hops: 1, lookups: 1, visited: 1, matches: 5 },
                owners: vec![9, 9, 9, 4, 4],
                probed: vec![NodeIdx(1)],
            })
        };
        let q = Query { subs: vec![sub(0, 0.0, 1.0)] };
        let out = resolve_in_order(&q, &[0], &mut resolve).unwrap();
        assert_eq!(out.tally.matches, 5, "pieces shipped, not deduped owners");
        assert_eq!(out.owners, vec![4, 9]);
    }
}
