//! # analysis — closed-form models of Theorems 4.1–4.10
//!
//! The paper's contribution is *analytical*: ten theorems comparing LORM
//! with Mercury, SWORD and MAAN on maintenance overhead and search
//! efficiency, each validated against simulation. This crate is the
//! theorem side of that comparison: pure closed-form functions of the
//! system parameters `(n, m, k, d)`, used by every figure to draw the
//! "Analysis-…" curves next to the measured ones.
//!
//! Notation (paper §IV–V):
//! * `n` — number of nodes (2048 in the evaluation),
//! * `m` — number of resource attributes (200),
//! * `k` — pieces of resource information per attribute (500),
//! * `d` — Cycloid dimension (8); Chord's "dimension" is `log2 n` (11).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The parameter tuple every theorem is a function of.
///
/// ```
/// use analysis::{range_visited, Params, System};
///
/// let p = Params::paper(); // n = 2048, m = 200, k = 500, d = 8
/// // Theorem 4.9's §V.B numbers: 513m / 514m / 3m / m visited nodes
/// assert_eq!(range_visited(&p, 1, System::Mercury), 513.0);
/// assert_eq!(range_visited(&p, 1, System::Maan), 514.0);
/// assert_eq!(range_visited(&p, 1, System::Lorm), 3.0);
/// assert_eq!(range_visited(&p, 1, System::Sword), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Number of nodes `n`.
    pub n: usize,
    /// Number of attributes `m`.
    pub m: usize,
    /// Pieces of resource information per attribute `k`.
    pub k: usize,
    /// Cycloid dimension `d`.
    pub d: u8,
}

impl Params {
    /// The paper's evaluation setting: `n = 2048`, `m = 200`, `k = 500`,
    /// `d = 8` (so `log2 n = 11`).
    pub fn paper() -> Self {
        Self { n: 2048, m: 200, k: 500, d: 8 }
    }

    /// `log2 n` — Chord's lookup exponent (11 for the paper's 2048 nodes).
    pub fn log2_n(&self) -> f64 {
        (self.n as f64).log2()
    }
}

// ---------------------------------------------------------------------
// Maintenance overhead (Theorems 4.1 – 4.6)
// ---------------------------------------------------------------------

/// Theorem 4.1 — structure maintenance. LORM improves the outlink count
/// of multi-DHT methods by no less than `m` times. Returns that factor.
pub fn t41_structure_factor(p: &Params) -> f64 {
    p.m as f64
}

/// Expected distinct outlinks per node in one Chord ring (`log2 n`).
pub fn chord_outlinks(p: &Params) -> f64 {
    p.log2_n()
}

/// Expected outlinks per physical node in Mercury: one Chord per
/// attribute, `m · log2 n` links.
pub fn mercury_outlinks(p: &Params) -> f64 {
    p.m as f64 * p.log2_n()
}

/// Expected outlinks per node in LORM/Cycloid: constant (≤ 8 — the seven
/// links of the paper's Cycloid plus the cached cluster primary).
pub fn lorm_outlinks(_p: &Params) -> f64 {
    7.0
}

/// The "Analysis>LORM" curve of Figure 3(a): Mercury's measured overhead
/// divided by `m` — Theorem 4.1 predicts LORM is at or below this line.
pub fn t41_analysis_lorm(mercury_measured: f64, p: &Params) -> f64 {
    mercury_measured / p.m as f64
}

/// Theorem 4.2 — total resource information. MAAN stores twice as many
/// pieces as LORM/SWORD/Mercury. Returns the MAAN multiplier.
pub fn t42_maan_total_factor() -> f64 {
    2.0
}

/// Theorem 4.3 — directory-size reduction of LORM over MAAN (applies to
/// the distribution percentiles): `d · (1 + m/n)`.
pub fn t43_maan_over_lorm(p: &Params) -> f64 {
    p.d as f64 * (1.0 + p.m as f64 / p.n as f64)
}

/// Theorem 4.4 — directory-size reduction of LORM over SWORD: `d`.
pub fn t44_sword_over_lorm(p: &Params) -> f64 {
    p.d as f64
}

/// Theorem 4.5 — balance advantage of Mercury over LORM: `n / (d·m)`.
pub fn t45_mercury_balance_factor(p: &Params) -> f64 {
    p.n as f64 / (p.d as f64 * p.m as f64)
}

/// Average directory size per node when every report is stored once:
/// `m·k / n` (LORM, SWORD, Mercury — Theorem 4.2 makes MAAN twice this).
pub fn avg_directory_size(p: &Params) -> f64 {
    p.m as f64 * p.k as f64 / p.n as f64
}

// ---------------------------------------------------------------------
// Search efficiency (Theorems 4.7 – 4.10)
// ---------------------------------------------------------------------

/// Average lookup hops in Chord: `(1/2)·log2 n` (Chord paper).
pub fn chord_lookup_hops(p: &Params) -> f64 {
    p.log2_n() / 2.0
}

/// Average lookup hops in Cycloid: `d` (Cycloid paper, as used by
/// Theorem 4.7).
pub fn cycloid_lookup_hops(p: &Params) -> f64 {
    p.d as f64
}

/// Theorem 4.7 — for an `m_q`-attribute non-range query, LORM reduces
/// MAAN's contacted nodes by `log2 n / d` times. Returns that factor.
pub fn t47_maan_over_lorm_hops(p: &Params) -> f64 {
    p.log2_n() / p.d as f64
}

/// Theorem 4.8 — Mercury/SWORD reduce MAAN's contacted nodes by 2×.
pub fn t48_maan_over_single_lookup() -> f64 {
    2.0
}

/// Expected total hops of an `arity`-attribute non-range query, per system.
///
/// MAAN: `2 · arity · (log2 n)/2`; Mercury/SWORD: `arity · (log2 n)/2`;
/// LORM: `arity · d`.
pub fn nonrange_hops(p: &Params, arity: usize, system: System) -> f64 {
    let a = arity as f64;
    match system {
        System::Maan => 2.0 * a * chord_lookup_hops(p),
        System::Mercury | System::Sword => a * chord_lookup_hops(p),
        System::Lorm => a * cycloid_lookup_hops(p),
    }
}

/// Theorem 4.9 — average visited nodes for an `arity`-attribute *range*
/// query: `m(1 + n/4)` Mercury, `m(2 + n/4)` MAAN, `m(1 + d/4)` LORM,
/// `m` SWORD.
pub fn range_visited(p: &Params, arity: usize, system: System) -> f64 {
    let a = arity as f64;
    match system {
        System::Mercury => a * (1.0 + p.n as f64 / 4.0),
        System::Maan => a * (2.0 + p.n as f64 / 4.0),
        System::Lorm => a * (1.0 + p.d as f64 / 4.0),
        System::Sword => a,
    }
}

/// Theorem 4.9's two headline reductions: visited nodes LORM saves over a
/// system-wide method, and visited nodes SWORD saves over LORM.
pub fn t49_reductions(p: &Params, arity: usize) -> (f64, f64) {
    let a = arity as f64;
    (a * (p.n as f64 - p.d as f64) / 4.0, a * p.d as f64 / 4.0)
}

/// Theorem 4.10 — worst-case contacted nodes for an `arity`-attribute
/// range query.
pub fn worstcase_range_contacted(p: &Params, arity: usize, system: System) -> f64 {
    let a = arity as f64;
    match system {
        System::Mercury => a * (p.log2_n() + p.n as f64),
        System::Maan => a * (2.0 * p.log2_n() + p.n as f64),
        System::Lorm => a * p.d as f64,
        System::Sword => a * p.log2_n(),
    }
}

/// Theorem 4.10's guaranteed saving of LORM over system-wide methods
/// (`≥ m·n` contacted nodes).
pub fn t410_min_saving(p: &Params, arity: usize) -> f64 {
    (arity * p.n) as f64
}

/// The four systems under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// LORM on Cycloid (the paper's contribution).
    Lorm,
    /// Mercury: multi-DHT, one Chord hub per attribute.
    Mercury,
    /// SWORD: single DHT, centralized per attribute.
    Sword,
    /// MAAN: single DHT, attribute and value registered separately.
    Maan,
}

impl System {
    /// All four systems, in the paper's presentation order.
    pub const ALL: [System; 4] = [System::Lorm, System::Mercury, System::Sword, System::Maan];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            System::Lorm => "LORM",
            System::Mercury => "Mercury",
            System::Sword => "SWORD",
            System::Maan => "MAAN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::paper()
    }

    #[test]
    fn paper_constants() {
        let p = p();
        assert_eq!(p.log2_n(), 11.0);
        assert_eq!(chord_lookup_hops(&p), 5.5);
        assert_eq!(cycloid_lookup_hops(&p), 8.0);
    }

    #[test]
    fn t41_factor_is_m() {
        assert_eq!(t41_structure_factor(&p()), 200.0);
        assert_eq!(mercury_outlinks(&p()), 200.0 * 11.0);
        assert_eq!(t41_analysis_lorm(2200.0, &p()), 11.0);
        assert!(lorm_outlinks(&p()) < t41_analysis_lorm(2200.0, &p()));
    }

    #[test]
    fn t43_matches_papers_878() {
        // §V.A: d(1 + m/n) = 8 × (1 + 200/2048) = 8.78
        let f = t43_maan_over_lorm(&p());
        assert!((f - 8.78).abs() < 0.005, "{f}");
    }

    #[test]
    fn t44_is_d() {
        assert_eq!(t44_sword_over_lorm(&p()), 8.0);
    }

    #[test]
    fn t45_matches_papers_128() {
        // §V.A: n/(d·m) = 2048/(8×200) = 1.28
        let f = t45_mercury_balance_factor(&p());
        assert!((f - 1.28).abs() < 1e-9, "{f}");
    }

    #[test]
    fn avg_directory_is_mk_over_n() {
        let a = avg_directory_size(&p());
        assert!((a - 48.828).abs() < 0.001, "{a}");
    }

    #[test]
    fn t47_matches_papers_11_8() {
        assert!((t47_maan_over_lorm_hops(&p()) - 11.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn nonrange_hops_ordering() {
        // MAAN (11/attr) > LORM (8/attr) > Mercury=SWORD (5.5/attr)
        for arity in 1..=10 {
            let maan = nonrange_hops(&p(), arity, System::Maan);
            let lorm = nonrange_hops(&p(), arity, System::Lorm);
            let merc = nonrange_hops(&p(), arity, System::Mercury);
            let sword = nonrange_hops(&p(), arity, System::Sword);
            assert_eq!(merc, sword);
            assert!(maan > lorm && lorm > merc);
            assert_eq!(maan, 2.0 * merc);
        }
    }

    #[test]
    fn t49_visited_matches_papers_numbers() {
        // §V.B: 513m Mercury, 514m MAAN, 3m LORM, m SWORD
        let p = p();
        assert_eq!(range_visited(&p, 1, System::Mercury), 513.0);
        assert_eq!(range_visited(&p, 1, System::Maan), 514.0);
        assert_eq!(range_visited(&p, 1, System::Lorm), 3.0);
        assert_eq!(range_visited(&p, 1, System::Sword), 1.0);
        // scaling in arity is linear
        assert_eq!(range_visited(&p, 7, System::Lorm), 21.0);
    }

    #[test]
    fn t49_reduction_terms() {
        let (lorm_saves, sword_saves) = t49_reductions(&p(), 1);
        assert_eq!(lorm_saves, (2048.0 - 8.0) / 4.0);
        assert_eq!(sword_saves, 2.0);
    }

    #[test]
    fn t410_worst_case_ordering_and_saving() {
        let p = p();
        let merc = worstcase_range_contacted(&p, 1, System::Mercury);
        let maan = worstcase_range_contacted(&p, 1, System::Maan);
        let lorm = worstcase_range_contacted(&p, 1, System::Lorm);
        assert!(maan > merc, "MAAN adds an extra log n");
        assert_eq!(lorm, 8.0);
        // Theorem 4.10: saving >= m·n
        assert!(merc - lorm >= t410_min_saving(&p, 1));
    }

    #[test]
    fn system_names() {
        assert_eq!(System::ALL.map(|s| s.name()), ["LORM", "Mercury", "SWORD", "MAAN"]);
    }

    #[test]
    fn factors_scale_sensibly_with_n() {
        let small = Params { n: 512, ..p() };
        let large = Params { n: 8192, ..p() };
        // more nodes: bigger gap to system-wide probing
        assert!(
            range_visited(&large, 1, System::Mercury) > range_visited(&small, 1, System::Mercury)
        );
        // LORM's range cost is independent of n
        assert_eq!(range_visited(&large, 1, System::Lorm), range_visited(&small, 1, System::Lorm));
        // Chord hops grow logarithmically
        assert!(chord_lookup_hops(&large) > chord_lookup_hops(&small));
        assert!(chord_lookup_hops(&large) < 2.0 * chord_lookup_hops(&small));
        // Mercury's balance advantage over LORM grows with n (T4.5)
        assert!(t45_mercury_balance_factor(&large) > t45_mercury_balance_factor(&small));
    }

    #[test]
    fn factors_scale_sensibly_with_d() {
        let small = Params { d: 4, ..p() };
        let large = Params { d: 12, ..p() };
        // bigger clusters: more balanced than SWORD by more (T4.4)…
        assert!(t44_sword_over_lorm(&large) > t44_sword_over_lorm(&small));
        // …but more range probes (T4.9) and more lookup hops
        assert!(range_visited(&large, 1, System::Lorm) > range_visited(&small, 1, System::Lorm));
        assert!(cycloid_lookup_hops(&large) > cycloid_lookup_hops(&small));
        // and a smaller hop advantage over MAAN (T4.7)
        assert!(t47_maan_over_lorm_hops(&large) < t47_maan_over_lorm_hops(&small));
    }

    #[test]
    fn mercury_outlinks_formula() {
        let p = p();
        assert_eq!(mercury_outlinks(&p), chord_outlinks(&p) * 200.0);
        assert!(lorm_outlinks(&p) < chord_outlinks(&p));
    }

    #[test]
    fn worst_case_grows_linearly_in_arity() {
        let p = p();
        for s in System::ALL {
            let one = worstcase_range_contacted(&p, 1, s);
            let five = worstcase_range_contacted(&p, 5, s);
            assert!((five - 5.0 * one).abs() < 1e-9, "{}", s.name());
        }
        assert_eq!(t410_min_saving(&p, 3), 3.0 * 2048.0);
    }
}
