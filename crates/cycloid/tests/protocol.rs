//! Protocol-level integration tests for Cycloid: grow networks one join
//! at a time, churn them, and check the structural invariants the LORM
//! layer depends on (cluster rings, primaries, constant degree, exact
//! routing).

use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::{Overlay, Summary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_key(rng: &mut SmallRng, d: u8) -> CycloidId {
    CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d)
}

fn assert_structural_invariants(net: &Cycloid) {
    let d = net.dimension();
    for &cub in net.occupied_clusters() {
        let members = net.cluster_members(cub);
        assert!(!members.is_empty() && members.len() <= d as usize);
        // sorted by cyclic, unique
        for w in members.windows(2) {
            assert!(
                net.id_of(w[0]).unwrap().cyclic < net.id_of(w[1]).unwrap().cyclic,
                "cluster {cub} unsorted"
            );
        }
        // primary cache agrees with membership
        let primary = net.primary_of(cub).unwrap();
        for &m in members {
            assert_eq!(net.node(m).unwrap().primary(), Some(primary));
            assert!(net.outlinks(m).unwrap() <= 8, "degree bound violated");
        }
        // inside ring is circular over exactly the members
        if members.len() > 1 {
            let mut cur = members[0];
            for _ in 0..members.len() {
                cur = net.cluster_successor(cur).unwrap().unwrap();
            }
            assert_eq!(cur, members[0], "inside ring of cluster {cub} is not circular");
        }
    }
}

#[test]
fn network_grown_purely_by_joins_routes_exactly() {
    let d = 6u8;
    let mut net = Cycloid::new(CycloidConfig { dimension: d, seed: 0xA1 });
    let mut rng = SmallRng::seed_from_u64(0xA2);
    // join 150 of 384 slots one at a time (local repair only)
    for _ in 0..150 {
        let slot = net.random_free_slot(&mut rng).unwrap();
        net.join_with_id(slot).unwrap();
    }
    assert_eq!(net.len(), 150);
    assert_structural_invariants(&net);
    // joins repair their neighborhood; distant jump links may be stale,
    // so run one maintenance round before demanding exactness
    net.rebuild_all_links();
    for _ in 0..400 {
        let from = net.random_node(&mut rng).unwrap();
        let key = random_key(&mut rng, d);
        assert!(net.route(from, key).unwrap().exact);
    }
}

#[test]
fn join_only_growth_keeps_queries_routable_without_global_repair() {
    let d = 6u8;
    let mut net = Cycloid::new(CycloidConfig { dimension: d, seed: 0xB1 });
    let mut rng = SmallRng::seed_from_u64(0xB2);
    let mut exact = 0usize;
    let mut total = 0usize;
    for i in 0..120 {
        let slot = net.random_free_slot(&mut rng).unwrap();
        net.join_with_id(slot).unwrap();
        if i >= 5 {
            let from = net.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, d);
            if let Ok(r) = net.route(from, key) {
                total += 1;
                exact += usize::from(r.exact);
            }
        }
    }
    // local-only repair: the overwhelming majority still routes exactly
    assert!(total >= 110, "completed {total}");
    assert!(exact * 10 >= total * 9, "exact {exact}/{total}");
}

#[test]
fn churn_cycles_preserve_invariants_and_exactness() {
    let d = 7u8;
    let mut net = Cycloid::build(500, CycloidConfig { dimension: d, seed: 0xC1 });
    let mut rng = SmallRng::seed_from_u64(0xC2);
    for round in 0..10 {
        for _ in 0..15 {
            if rng.gen_bool(0.5) {
                if let Some(slot) = net.random_free_slot(&mut rng) {
                    net.join_with_id(slot).unwrap();
                }
            } else if net.len() > 2 {
                let v = net.random_node(&mut rng).unwrap();
                net.leave(v).unwrap();
            }
        }
        assert_structural_invariants(&net);
        net.rebuild_all_links();
        for _ in 0..50 {
            let from = net.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, d);
            assert!(net.route(from, key).unwrap().exact, "round {round}");
        }
    }
}

#[test]
fn hops_stay_linear_in_d_through_protocol_growth() {
    let d = 7u8;
    let mut net = Cycloid::new(CycloidConfig { dimension: d, seed: 0xD1 });
    let mut rng = SmallRng::seed_from_u64(0xD2);
    for _ in 0..net.capacity() {
        let slot = net.random_free_slot(&mut rng).unwrap();
        net.join_with_id(slot).unwrap();
    }
    assert_eq!(net.len(), net.capacity());
    net.rebuild_all_links();
    let mut s = Summary::new();
    for _ in 0..500 {
        let from = net.random_node(&mut rng).unwrap();
        let key = random_key(&mut rng, d);
        s.record(net.route(from, key).unwrap().hops() as f64);
    }
    assert!(s.mean() < 1.8 * d as f64, "avg hops {} for d={d}", s.mean());
}

#[test]
fn cluster_drain_and_refill() {
    // Empty an entire cluster, verify keys fall to the nearest cluster,
    // then refill and verify they return.
    let d = 6u8;
    let mut net = Cycloid::build(net_cap(d), CycloidConfig { dimension: d, seed: 0xE1 });
    let cub = 17u32;
    let members = net.cluster_members(cub).to_vec();
    for m in members {
        net.leave(m).unwrap();
    }
    assert!(net.cluster_members(cub).is_empty());
    let key = CycloidId::new(2, cub, d);
    let owner = net.owner_of(key).unwrap();
    assert_ne!(net.id_of(owner).unwrap().cubical, cub);
    // routing agrees with ownership even for the emptied cluster
    let mut rng = SmallRng::seed_from_u64(0xE2);
    let from = net.random_node(&mut rng).unwrap();
    assert_eq!(net.route(from, key).unwrap().terminal, owner);
    // refill one slot; the key comes home
    let idx = net.join_with_id(CycloidId::new(3, cub, d)).unwrap();
    assert_eq!(net.owner_of(key).unwrap(), idx);
}

fn net_cap(d: u8) -> usize {
    d as usize * (1usize << d)
}
