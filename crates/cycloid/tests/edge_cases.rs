//! Edge cases of the Cycloid simulator: minimal dimensions, degenerate
//! clusters, capacity boundaries.

use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::{DhtError, Overlay};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn dimension_one_works() {
    // d = 1: two clusters of one slot each.
    let net = Cycloid::build(2, CycloidConfig { dimension: 1, seed: 1 });
    assert_eq!(net.capacity(), 2);
    assert_eq!(net.len(), 2);
    for cub in 0..2u32 {
        for cyc in 0..1u8 {
            let key = CycloidId::new(cyc, cub, 1);
            let owner = net.owner_of(key).unwrap();
            for &idx in net.live_nodes() {
                let r = net.route(idx, key).unwrap();
                assert_eq!(r.terminal, owner);
            }
        }
    }
}

#[test]
fn dimension_two_full_population() {
    // d = 2: 4 clusters × 2 slots = 8 nodes.
    let net = Cycloid::build(8, CycloidConfig { dimension: 2, seed: 2 });
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..100 {
        let key = CycloidId::new(
            rand::Rng::gen_range(&mut rng, 0..2),
            rand::Rng::gen_range(&mut rng, 0..4),
            2,
        );
        let from = net.random_node(&mut rng).unwrap();
        assert!(net.route(from, key).unwrap().exact);
    }
}

#[test]
fn single_member_clusters_have_no_inside_ring() {
    let mut net = Cycloid::new(CycloidConfig { dimension: 5, seed: 4 });
    let a = net.join_with_id(CycloidId::new(2, 7, 5)).unwrap();
    let _b = net.join_with_id(CycloidId::new(0, 20, 5)).unwrap();
    assert!(net.cluster_successor(a).unwrap().is_none());
    assert!(net.cluster_predecessor(a).unwrap().is_none());
    // but outside leafs connect the two clusters
    let (op, os) = net.node(a).unwrap().outside_leaf();
    assert!(op.is_some() && os.is_some());
}

#[test]
fn two_member_cluster_ring_is_mutual() {
    let mut net = Cycloid::new(CycloidConfig { dimension: 6, seed: 5 });
    let a = net.join_with_id(CycloidId::new(1, 9, 6)).unwrap();
    let b = net.join_with_id(CycloidId::new(4, 9, 6)).unwrap();
    assert_eq!(net.cluster_successor(a).unwrap(), Some(b));
    assert_eq!(net.cluster_successor(b).unwrap(), Some(a));
    assert_eq!(net.cluster_predecessor(a).unwrap(), Some(b));
    assert_eq!(net.primary_of(9), Some(b), "cyclic 4 > cyclic 1");
}

#[test]
fn join_all_slots_then_one_more_fails() {
    let d = 3u8;
    let mut net = Cycloid::new(CycloidConfig { dimension: d, seed: 6 });
    for slot in 0..net.capacity() {
        net.join_with_id(CycloidId::from_slot(slot, d)).unwrap();
    }
    assert_eq!(net.len(), net.capacity());
    assert_eq!(net.join_random().unwrap_err(), DhtError::IdSpaceExhausted);
}

#[test]
fn out_of_range_ids_are_rejected() {
    let mut net = Cycloid::new(CycloidConfig { dimension: 4, seed: 7 });
    // cyclic index beyond d
    assert!(matches!(
        net.join_with_id(CycloidId { cyclic: 4, cubical: 0 }),
        Err(DhtError::InvalidParameter { .. })
    ));
    // cubical index beyond 2^d
    assert!(matches!(
        net.join_with_id(CycloidId { cyclic: 0, cubical: 16 }),
        Err(DhtError::InvalidParameter { .. })
    ));
}

#[test]
fn empty_overlay_has_no_owner() {
    let net = Cycloid::new(CycloidConfig { dimension: 4, seed: 8 });
    assert!(net.is_empty());
    assert!(net.owner_of(CycloidId::new(0, 0, 4)).is_err());
    assert!(net.occupied_clusters().is_empty());
}

#[test]
fn route_between_the_only_two_nodes() {
    let mut net = Cycloid::new(CycloidConfig { dimension: 8, seed: 9 });
    let a = net.join_with_id(CycloidId::new(0, 0, 8)).unwrap();
    let b = net.join_with_id(CycloidId::new(7, 255, 8)).unwrap();
    // every key resolves to one of the two, and routing agrees
    let mut rng = SmallRng::seed_from_u64(10);
    for _ in 0..60 {
        let key = CycloidId::new(
            rand::Rng::gen_range(&mut rng, 0..8),
            rand::Rng::gen_range(&mut rng, 0..256),
            8,
        );
        let owner = net.owner_of(key).unwrap();
        assert!(owner == a || owner == b);
        assert_eq!(net.route(a, key).unwrap().terminal, owner);
        assert_eq!(net.route(b, key).unwrap().terminal, owner);
    }
}

#[test]
fn leave_until_one_node_remains() {
    let mut net = Cycloid::build(40, CycloidConfig { dimension: 5, seed: 11 });
    let mut rng = SmallRng::seed_from_u64(12);
    while net.len() > 1 {
        let v = net.random_node(&mut rng).unwrap();
        net.leave(v).unwrap();
    }
    let survivor = net.live_nodes()[0];
    let key = CycloidId::new(3, 17, 5);
    assert_eq!(net.owner_of(key).unwrap(), survivor);
    assert_eq!(net.route(survivor, key).unwrap().hops(), 0);
    // and the survivor has no dangling links
    assert_eq!(net.outlinks(survivor).unwrap(), 0);
}

#[test]
fn arena_len_grows_monotonically_and_survives_tombstones() {
    let mut net = Cycloid::build(10, CycloidConfig { dimension: 4, seed: 13 });
    let before = net.arena_len();
    let v = net.live_nodes()[0];
    net.leave(v).unwrap();
    assert_eq!(net.arena_len(), before, "tombstoned slots are kept");
    let _ = net.join_random().unwrap();
    assert_eq!(net.arena_len(), before + 1, "new joins append");
}

#[test]
fn cluster_collapse_to_single_live_member_stays_routable() {
    // Regression for the abrupt-failure path: a ChurnKind::Fail burst
    // collapses one cluster down to a single live member. The inside
    // ring must vanish cleanly and every key of the cluster must still
    // resolve to the survivor from anywhere in the network.
    let d = 8u8;
    let mut net = Cycloid::build(2048, CycloidConfig { dimension: d, seed: 0xC0 });
    let cub = 7u32;
    let members = net.cluster_members(cub).to_vec();
    assert!(members.len() > 1, "need a populated cluster to collapse");
    let survivor = *members.last().unwrap();
    for &m in &members[..members.len() - 1] {
        net.fail(m).unwrap();
    }
    net.rebuild_all_links();
    // collapsed: no inside ring left around the survivor
    assert!(net.cluster_successor(survivor).unwrap().is_none());
    assert!(net.cluster_predecessor(survivor).unwrap().is_none());
    assert_eq!(net.cluster_members(cub), &[survivor]);
    // every key of the collapsed cluster resolves to the survivor
    let mut rng = SmallRng::seed_from_u64(0xC1);
    for cyc in 0..d {
        let key = CycloidId::new(cyc, cub, d);
        assert_eq!(net.owner_of(key).unwrap(), survivor, "cyc {cyc}");
        let from = net.random_node(&mut rng).unwrap();
        let r = net.route(from, key).unwrap();
        assert_eq!(r.terminal, survivor, "cyc {cyc}");
    }
}
