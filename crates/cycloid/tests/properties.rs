//! Property-based tests of the Cycloid simulator.

use cycloid::{Cycloid, CycloidConfig, CycloidId};
use dht_core::Overlay;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routing lands on the consistent-hashing owner for any population
    /// density and any key.
    #[test]
    fn lookups_are_exact(d in 3u8..9, frac in 0.02f64..1.0, seed: u64,
                         cyc: u8, cub: u32) {
        let cap = d as usize * (1usize << d);
        let n = ((cap as f64 * frac) as usize).clamp(1, cap);
        let net = Cycloid::build(n, CycloidConfig { dimension: d, seed });
        let key = CycloidId::new(cyc % d, cub % (1u32 << d), d);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xCC);
        let from = net.random_node(&mut rng).unwrap();
        let r = net.route(from, key).unwrap();
        prop_assert!(r.exact);
    }

    /// The owner of a key is never farther (cluster-wise) than any other
    /// live node — `owner_of` really is the nearest-cluster assignment.
    #[test]
    fn owner_is_nearest_cluster(d in 3u8..8, frac in 0.05f64..1.0, seed: u64, cub: u32) {
        let cap = d as usize * (1usize << d);
        let n = ((cap as f64 * frac) as usize).clamp(1, cap);
        let net = Cycloid::build(n, CycloidConfig { dimension: d, seed });
        let b = cub % (1u32 << d);
        let key = CycloidId::new(0, b, d);
        let owner = net.owner_of(key).unwrap();
        let oc = net.id_of(owner).unwrap().cubical;
        let od = CycloidId::cluster_dist(oc, b, d);
        for &idx in net.live_nodes().iter().take(40) {
            let c = net.id_of(idx).unwrap().cubical;
            prop_assert!(CycloidId::cluster_dist(c, b, d) >= od);
        }
    }

    /// Degree never exceeds the constant bound, at any density.
    #[test]
    fn constant_degree(d in 3u8..10, frac in 0.02f64..1.0, seed: u64) {
        let cap = d as usize * (1usize << d);
        let n = ((cap as f64 * frac) as usize).clamp(1, cap);
        let net = Cycloid::build(n, CycloidConfig { dimension: d, seed });
        for &idx in net.live_nodes().iter().take(30) {
            prop_assert!(net.outlinks(idx).unwrap() <= 8);
        }
    }

    /// Hop counts respect the routing budget with room to spare: paths are
    /// O(d), not O(n).
    #[test]
    fn path_length_linear_in_d(d in 4u8..9, seed: u64, cyc: u8, cub: u32) {
        let cap = d as usize * (1usize << d);
        let net = Cycloid::build(cap, CycloidConfig { dimension: d, seed });
        let key = CycloidId::new(cyc % d, cub % (1u32 << d), d);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xCD);
        let from = net.random_node(&mut rng).unwrap();
        let r = net.route(from, key).unwrap();
        prop_assert!(r.hops() <= 3 * d as usize + 4, "hops {} for d={}", r.hops(), d);
    }

    /// Slot round trips: every live node is found where its id says.
    #[test]
    fn slots_agree_with_ids(d in 3u8..8, frac in 0.1f64..1.0, seed: u64) {
        let cap = d as usize * (1usize << d);
        let n = ((cap as f64 * frac) as usize).clamp(1, cap);
        let net = Cycloid::build(n, CycloidConfig { dimension: d, seed });
        for &idx in net.live_nodes().iter().take(50) {
            let id = net.id_of(idx).unwrap();
            prop_assert!(net.cluster_members(id.cubical).contains(&idx));
            prop_assert_eq!(net.owner_of(id).unwrap(), idx);
        }
    }

    /// The zero-allocation fast path is observationally identical to the
    /// traced route in every network state: freshly built, after
    /// unrepaired churn (leaves and abrupt failures), and after repair.
    #[test]
    fn route_stats_equals_traced_route(d in 4u8..8, frac in 0.3f64..1.0, seed: u64,
                                       leaves in 0usize..6, fails in 0usize..6) {
        let cap = d as usize * (1usize << d);
        let n = ((cap as f64 * frac) as usize).clamp(8, cap);
        let mut net = Cycloid::build(n, CycloidConfig { dimension: d, seed });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xCF);
        let check = |net: &Cycloid, rng: &mut SmallRng| -> Result<(), TestCaseError> {
            for _ in 0..12 {
                let from = net.random_node(rng).unwrap();
                let key = CycloidId::new(
                    rand::Rng::gen_range(rng, 0..d),
                    rand::Rng::gen_range(rng, 0..(1u32 << d)),
                    d,
                );
                match (net.route(from, key), net.route_stats(from, key)) {
                    (Ok(t), Ok(s)) => {
                        prop_assert_eq!(t.hops(), s.hops);
                        prop_assert_eq!(t.terminal, s.terminal);
                        prop_assert_eq!(t.exact, s.exact);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    (t, s) => prop_assert!(false, "diverged: traced {t:?} vs stats {s:?}"),
                }
            }
            Ok(())
        };
        check(&net, &mut rng)?; // freshly built
        for _ in 0..leaves.min(net.len() / 4) {
            let v = net.random_node(&mut rng).unwrap();
            net.leave(v).unwrap();
        }
        for _ in 0..fails.min(net.len() / 4) {
            let v = net.random_node(&mut rng).unwrap();
            net.fail(v).unwrap();
        }
        check(&net, &mut rng)?; // post-churn, unrepaired
        net.rebuild_all_links();
        check(&net, &mut rng)?; // post-repair
    }

    /// Leaving any subset keeps the structure sound.
    #[test]
    fn leaves_preserve_structure(d in 4u8..7, seed: u64, leaves in 1usize..20) {
        let cap = d as usize * (1usize << d);
        let mut net = Cycloid::build(cap / 2, CycloidConfig { dimension: d, seed });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xCE);
        for _ in 0..leaves.min(net.len() - 1) {
            let v = net.random_node(&mut rng).unwrap();
            net.leave(v).unwrap();
        }
        // every remaining cluster's primary cache is coherent
        for &cub in net.occupied_clusters() {
            let primary = net.primary_of(cub).unwrap();
            for &m in net.cluster_members(cub) {
                prop_assert_eq!(net.node(m).unwrap().primary(), Some(primary));
            }
        }
        // and routing still lands on owners
        let key = CycloidId::new(0, 1, d);
        let from = net.random_node(&mut rng).unwrap();
        prop_assert!(net.route(from, key).unwrap().exact);
    }

    /// Every successful mutating op strictly increases the epoch — the
    /// invariant the route cache's staleness check rests on (a cache
    /// entry stamped before a join / leave / fail / repair can never hit
    /// after it).
    #[test]
    fn mutating_op_sequences_strictly_increase_epoch(
        d in 4u8..7,
        seed: u64,
        ops in prop::collection::vec(0u8..4, 1..24),
    ) {
        let cap = d as usize * (1usize << d);
        let mut net = Cycloid::build(cap / 2, CycloidConfig { dimension: d, seed });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xEA);
        for kind in ops {
            let before = net.epoch();
            let mutated = match kind {
                0 => net.join_random().is_ok(),
                1 if net.len() > 2 => {
                    let v = net.random_node(&mut rng).unwrap();
                    net.leave(v).is_ok()
                }
                2 if net.len() > 2 => {
                    let v = net.random_node(&mut rng).unwrap();
                    net.fail(v).is_ok()
                }
                3 => {
                    net.rebuild_all_links();
                    true
                }
                _ => false,
            };
            if mutated {
                prop_assert!(
                    net.epoch() > before,
                    "op {kind} left epoch at {before}"
                );
            }
        }
    }
}
