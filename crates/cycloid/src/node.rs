//! Per-node Cycloid state: the constant-degree routing table.

use crate::id::CycloidId;
use dht_core::NodeIdx;

/// The complete local state of one Cycloid node.
///
/// All links may be `None` in degenerate networks (single node, single
/// cluster) and may be stale after churn until repair runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycloidNode {
    pub(crate) id: CycloidId,
    pub(crate) alive: bool,
    /// Inside leaf set: predecessor in the cluster ring (next smaller
    /// cyclic index, wrapping).
    pub(crate) inside_pred: Option<NodeIdx>,
    /// Inside leaf set: successor in the cluster ring.
    pub(crate) inside_succ: Option<NodeIdx>,
    /// Outside leaf set: primary of the preceding occupied cluster.
    pub(crate) outside_pred: Option<NodeIdx>,
    /// Outside leaf set: primary of the succeeding occupied cluster.
    pub(crate) outside_succ: Option<NodeIdx>,
    /// Node nearest `(k-1, a XOR 2^k)`.
    pub(crate) cubical_nbr: Option<NodeIdx>,
    /// Nodes nearest `(k-1, a - 2^k)` and `(k-1, a + 2^k)`.
    pub(crate) cyclic_nbrs: [Option<NodeIdx>; 2],
    /// Cached primary (largest cyclic index) of the own cluster.
    pub(crate) primary: Option<NodeIdx>,
}

impl CycloidNode {
    pub(crate) fn new(id: CycloidId) -> Self {
        Self {
            id,
            alive: true,
            inside_pred: None,
            inside_succ: None,
            outside_pred: None,
            outside_succ: None,
            cubical_nbr: None,
            cyclic_nbrs: [None, None],
            primary: None,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> CycloidId {
        self.id
    }

    /// Is the node currently part of the overlay?
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Inside-leaf-set successor (next larger cyclic index in the cluster).
    pub fn inside_succ(&self) -> Option<NodeIdx> {
        self.inside_succ
    }

    /// Inside-leaf-set predecessor.
    pub fn inside_pred(&self) -> Option<NodeIdx> {
        self.inside_pred
    }

    /// Outside-leaf-set links `(preceding, succeeding)` cluster primaries.
    pub fn outside_leaf(&self) -> (Option<NodeIdx>, Option<NodeIdx>) {
        (self.outside_pred, self.outside_succ)
    }

    /// The cubical neighbor.
    pub fn cubical_neighbor(&self) -> Option<NodeIdx> {
        self.cubical_nbr
    }

    /// The two cyclic neighbors `(minus, plus)`.
    pub fn cyclic_neighbors(&self) -> [Option<NodeIdx>; 2] {
        self.cyclic_nbrs
    }

    /// Cached primary node of the own cluster.
    pub fn primary(&self) -> Option<NodeIdx> {
        self.primary
    }

    /// All links, deduplicated, excluding self-references.
    pub(crate) fn distinct_neighbors(&self, me: NodeIdx) -> Vec<NodeIdx> {
        let mut v: Vec<NodeIdx> = [
            self.inside_pred,
            self.inside_succ,
            self.outside_pred,
            self.outside_succ,
            self.cubical_nbr,
            self.cyclic_nbrs[0],
            self.cyclic_nbrs[1],
            self.primary,
        ]
        .into_iter()
        .flatten()
        .filter(|&x| x != me)
        .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterator over every present link (used by routing's greedy fallback).
    pub(crate) fn all_links(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        [
            self.inside_pred,
            self.inside_succ,
            self.outside_pred,
            self.outside_succ,
            self.cubical_nbr,
            self.cyclic_nbrs[0],
            self.cyclic_nbrs[1],
            self.primary,
        ]
        .into_iter()
        .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_linkless() {
        let n = CycloidNode::new(CycloidId { cyclic: 0, cubical: 0 });
        assert!(n.is_alive());
        assert!(n.distinct_neighbors(NodeIdx(0)).is_empty());
        assert_eq!(n.all_links().count(), 0);
    }

    #[test]
    fn distinct_neighbors_excludes_self_and_dupes() {
        let mut n = CycloidNode::new(CycloidId { cyclic: 1, cubical: 2 });
        n.inside_pred = Some(NodeIdx(5));
        n.inside_succ = Some(NodeIdx(5));
        n.primary = Some(NodeIdx(0)); // self
        n.cubical_nbr = Some(NodeIdx(9));
        assert_eq!(n.distinct_neighbors(NodeIdx(0)), vec![NodeIdx(5), NodeIdx(9)]);
    }
}
