//! Three-phase Cycloid routing, generic over the hop observer.
//!
//! From a node `(k, a)` towards a key `(l, b)`, let `D` be the minimal
//! large-cycle distance from `a` to `b` and `j = msb(D)`:
//!
//! 1. **Ascend** — when `k < j` the node's jumps (length `2^k`) are too
//!    short; forward to the cached cluster primary, which holds the
//!    longest jumps in the cluster.
//! 2. **Descend** — when `k > j` the jump would overshoot; step down one
//!    cyclic level through the inside leaf set (`(k, a) → (k-1, a)`, the
//!    cube-connected-cycles descent). When `k == j` take the cyclic
//!    neighbor in the direction of `b` (`a ± 2^k`), halving `D`. The
//!    cubical neighbor (`a XOR 2^k`) and outside leaf set participate as
//!    greedy shortcuts; in sparse networks, where links resolve to the
//!    nearest existing node, the greedy fallback keeps making progress.
//! 3. **Traverse** — inside the destination cluster, walk the inside leaf
//!    set to the node supervising cyclic position `l`.
//!
//! Termination is by local minimum with a single deterministic clockwise
//! tie-break matching the ownership rule, so routing stops exactly at the
//! key's root when links are fresh, and at the nearest reachable node
//! otherwise.
//!
//! As in `chord::routing`, one loop serves both public variants: the
//! traced [`Overlay::route`] records the path into a `Vec<NodeIdx>`, the
//! zero-allocation [`Overlay::route_stats`] drives the same loop with a
//! bare [`HopCount`]. Divergence is impossible by construction (and
//! proptests assert it).

use crate::id::CycloidId;
use crate::network::Cycloid;
use dht_core::fault::{check_forward, FaultPlan, FaultSink, MsgId};
use dht_core::{DhtError, HopCount, NodeIdx, Overlay, RouteResult, RouteSink, RouteStats};

/// A routing decision: forward normally, or forward while committing to
/// the final intra-cluster traverse (no further cluster-level moves).
enum Hop {
    Forward(NodeIdx),
    Stuck(NodeIdx),
}

impl Cycloid {
    pub(crate) fn route_from(
        &self,
        from: NodeIdx,
        key: CycloidId,
    ) -> Result<RouteResult, DhtError> {
        // Sized to the routing budget (8d+32, +1 for the hop recorded on
        // the budget check) so a traced route is exactly one allocation —
        // pinned by crates/bench/tests/alloc_count.rs.
        let mut path: Vec<NodeIdx> = Vec::with_capacity(8 * self.dimension() as usize + 33);
        let (terminal, exact) = self.route_inner(from, key, &mut path)?;
        Ok(RouteResult { path, terminal, exact })
    }

    /// The allocation-free twin of [`Cycloid::route_from`]: identical
    /// routing decisions, but only `(hops, terminal, exact)` come back.
    pub(crate) fn route_stats_from(
        &self,
        from: NodeIdx,
        key: CycloidId,
    ) -> Result<RouteStats, DhtError> {
        let mut hops = HopCount::default();
        let (terminal, exact) = self.route_inner(from, key, &mut hops)?;
        Ok(RouteStats { hops: hops.get(), terminal, exact })
    }

    /// The fault-injecting variant: the same routing loop driven through a
    /// [`FaultSink`], so per-message drop coins and the plan's failed-node
    /// set can cut a lookup short with [`DhtError::MessageDropped`] /
    /// [`DhtError::DeadHop`].
    pub(crate) fn route_stats_faulty_from(
        &self,
        from: NodeIdx,
        key: CycloidId,
        plan: &FaultPlan,
        msg: MsgId,
    ) -> Result<RouteStats, DhtError> {
        let mut hops = HopCount::default();
        let (terminal, exact) = {
            let mut sink = FaultSink::new(&mut hops, plan, msg);
            self.route_inner(from, key, &mut sink)?
        };
        Ok(RouteStats { hops: hops.get(), terminal, exact })
    }

    fn route_inner<S: RouteSink>(
        &self,
        from: NodeIdx,
        key: CycloidId,
        sink: &mut S,
    ) -> Result<(NodeIdx, bool), DhtError> {
        self.live_node(from)?;
        let d = self.dimension();
        let budget = 8 * d as usize + 32;
        let mut cur = from;
        // Allow the "stuck, retry from the primary" ascent at most once per
        // cluster-distance value, so ascend/traverse cannot ping-pong.
        let mut last_ascend_cd: Option<u32> = None;
        // Once cluster-level progress stops (sparse network: the key's
        // cluster is unoccupied and we sit in the nearest one), commit to
        // the intra-cluster traverse so descent cannot re-trigger.
        let mut traverse_only = false;
        loop {
            if sink.hops() > budget {
                return Err(DhtError::RoutingLoop { hops: sink.hops() });
            }
            let step = if traverse_only {
                self.traverse_step(cur, key.cyclic).map(Hop::Forward)
            } else {
                self.next_hop(cur, key, &mut last_ascend_cd)
            };
            match step {
                Some(Hop::Forward(n)) => {
                    check_forward(sink, n)?;
                    sink.visit(n);
                    cur = n;
                }
                Some(Hop::Stuck(n)) => {
                    check_forward(sink, n)?;
                    traverse_only = true;
                    sink.visit(n);
                    cur = n;
                }
                None => break,
            }
        }
        let exact = self.owner_of(key)? == cur;
        Ok((cur, exact))
    }

    /// Decide the next hop from `cur` towards `key` using only `cur`'s
    /// local state. `None` means `cur` keeps the message (it is the local
    /// minimum, i.e. the root when links are fresh).
    fn next_hop(
        &self,
        cur: NodeIdx,
        key: CycloidId,
        last_ascend_cd: &mut Option<u32>,
    ) -> Option<Hop> {
        let d = self.dimension();
        let n = &self.nodes[cur.0];
        let my_cd = CycloidId::cluster_dist(n.id.cubical, key.cubical, d);
        if my_cd == 0 {
            return self.traverse_step(cur, key.cyclic).map(Hop::Forward);
        }

        // One fused pass over the (constant-degree, <= 8) link set computes
        // each link's cluster distance exactly once and extracts both
        // extrema rules 1 and 4 need. Strict `<` comparisons reproduce the
        // first-minimum tie-break of `Iterator::min_by_key` over the same
        // link order, so decisions are bit-identical to the two-scan form.
        let mut best_zero: Option<(u8, NodeIdx)> = None; // rule 1: cd == 0
        let mut best_lt: Option<(u32, NodeIdx)> = None; // rule 4: cd < my_cd
        for x in n.all_links() {
            let xn = &self.nodes[x.0];
            if !xn.alive || x == cur {
                continue;
            }
            let cd = CycloidId::cluster_dist(xn.id.cubical, key.cubical, d);
            if cd == 0 {
                let cyc = CycloidId::cyclic_dist(xn.id.cyclic, key.cyclic, d);
                if best_zero.is_none_or(|(bc, _)| cyc < bc) {
                    best_zero = Some((cyc, x));
                }
            } else if cd < my_cd && best_lt.is_none_or(|(bc, _)| cd < bc) {
                best_lt = Some((cd, x));
            }
        }

        // Rule 1: any link landing in the target cluster wins outright;
        // among several, pick the one closest to the key's cyclic position
        // to shorten the final traverse.
        if let Some((_, hit)) = best_zero {
            return Some(Hop::Forward(hit));
        }

        let alive = |x: &NodeIdx| self.nodes[x.0].alive && *x != cur;
        let k = n.id.cyclic;
        let cw = CycloidId::cw_cluster_dist(n.id.cubical, key.cubical, d);
        let ccw = CycloidId::cw_cluster_dist(key.cubical, n.id.cubical, d);
        let j = 31 - my_cd.leading_zeros() as u8; // msb of D >= 1

        // Rule 2: jump level too high — CCC descent through the inside
        // leaf set (same cluster, lower cyclic index, same distance).
        if k > j {
            if let Some(p) = n.inside_pred.filter(alive) {
                let pn = &self.nodes[p.0];
                if pn.id.cyclic < k {
                    return Some(Hop::Forward(p));
                }
            }
        }

        // Rule 3: aligned jump — the cyclic neighbor in the direction of
        // the key (a ± 2^k), provided it actually gets closer (in sparse
        // networks the link points to the nearest existing node).
        if k <= j {
            let dir_link = if cw <= ccw { n.cyclic_nbrs[1] } else { n.cyclic_nbrs[0] };
            if let Some(x) = dir_link.filter(alive) {
                let cd = CycloidId::cluster_dist(self.nodes[x.0].id.cubical, key.cubical, d);
                if cd < my_cd {
                    return Some(Hop::Forward(x));
                }
            }
        }

        // Rule 4: greedy — the link with the smallest resulting distance
        // (already extracted by the fused scan above).
        if let Some((_, x)) = best_lt {
            return Some(Hop::Forward(x));
        }

        // Rule 5: stuck — retry once from the cluster primary, whose jumps
        // are the longest available here.
        if *last_ascend_cd != Some(my_cd) {
            if let Some(p) = n.primary.filter(alive) {
                *last_ascend_cd = Some(my_cd);
                return Some(Hop::Forward(p));
            }
        }

        // Rule 6: clockwise tie-break. If we sit counter-clockwise of the
        // key and the equidistant clockwise-side cluster is our outside
        // successor, ownership prefers it.
        if cw == my_cd {
            if let Some(os) = n.outside_succ.filter(alive) {
                let os_cub = self.nodes[os.0].id.cubical;
                let os_cd = CycloidId::cluster_dist(os_cub, key.cubical, d);
                if os_cd == my_cd && CycloidId::cw_cluster_dist(key.cubical, os_cub, d) == os_cd {
                    // entering the preferred cluster: commit to traverse
                    return Some(Hop::Stuck(os));
                }
            }
        }

        // Rule 7: local minimum at cluster level — this is the nearest
        // reachable cluster; finish with the intra-cluster traverse.
        self.traverse_step(cur, key.cyclic).map(Hop::Stuck)
    }

    /// One step of the intra-cluster traverse towards cyclic position `l`:
    /// the inside-leaf neighbor strictly closer to `l`, or the clockwise
    /// tie-break neighbor, or `None` when `cur` supervises `l`.
    fn traverse_step(&self, cur: NodeIdx, l: u8) -> Option<NodeIdx> {
        let d = self.dimension();
        let n = &self.nodes[cur.0];
        let my = CycloidId::cyclic_dist(n.id.cyclic, l, d);
        let mut best: Option<(u8, NodeIdx)> = None;
        for cand in [n.inside_pred, n.inside_succ].into_iter().flatten() {
            if cand == cur || !self.nodes[cand.0].alive {
                continue;
            }
            let k = self.nodes[cand.0].id.cyclic;
            let dist = CycloidId::cyclic_dist(k, l, d);
            if dist < my && best.is_none_or(|(bd, _)| dist < bd) {
                best = Some((dist, cand));
            } else if dist == my
                && my > 0
                && CycloidId::cw_cyclic_dist(l, k, d) == dist
                && CycloidId::cw_cyclic_dist(l, n.id.cyclic, d) != my
                && best.is_none()
            {
                // equidistant, but the candidate is the clockwise-side node
                // that ownership prefers
                best = Some((dist, cand));
            }
        }
        best.map(|(_, idx)| idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CycloidConfig;
    use dht_core::Summary;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn net(n: usize, d: u8) -> Cycloid {
        Cycloid::build(n, CycloidConfig { dimension: d, seed: 11 })
    }

    fn random_key<R: Rng>(rng: &mut R, d: u8) -> CycloidId {
        CycloidId::new(rng.gen_range(0..d), rng.gen_range(0..(1u32 << d)), d)
    }

    #[test]
    fn inert_fault_plan_routes_identically() {
        let c = net(512, 7);
        let plan = FaultPlan::none();
        let mut rng = SmallRng::seed_from_u64(31);
        for i in 0..300u64 {
            let from = c.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, 7);
            let plain = c.route_stats(from, key).unwrap();
            let faulty = c.route_stats_faulty(from, key, &plan, MsgId::first(i)).unwrap();
            assert_eq!(plain, faulty, "inert plan must not perturb routing");
        }
    }

    #[test]
    fn full_drop_rate_kills_every_multi_hop_lookup() {
        let c = net(512, 7);
        let plan = FaultPlan::new(1, 1.0, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(32);
        let mut dropped = 0;
        for i in 0..200u64 {
            let from = c.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, 7);
            match c.route_stats_faulty(from, key, &plan, MsgId::first(i)) {
                Ok(r) => assert_eq!(r.hops, 0, "only 0-hop local lookups can survive"),
                Err(DhtError::MessageDropped { hops }) => {
                    assert_eq!(hops, 0, "the very first forwarding must drop");
                    dropped += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(dropped > 140, "most lookups are multi-hop: {dropped}");
    }

    #[test]
    fn faulty_routing_is_deterministic() {
        let c = net(640, 7);
        let plan = FaultPlan::new(5, 0.15, 0.1).unwrap();
        let mut rng = SmallRng::seed_from_u64(33);
        let probes: Vec<(NodeIdx, CycloidId)> =
            (0..200).map(|_| (c.random_node(&mut rng).unwrap(), random_key(&mut rng, 7))).collect();
        for (i, &(from, key)) in probes.iter().enumerate() {
            let a = c.route_stats_faulty(from, key, &plan, MsgId::first(i as u64));
            let b = c.route_stats_faulty(from, key, &plan, MsgId::first(i as u64));
            assert_eq!(a, b, "same plan + message identity must replay identically");
        }
    }

    #[test]
    fn route_is_exact_in_full_network() {
        let c = net(2048, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let from = c.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, 8);
            let r = c.route(from, key).unwrap();
            assert!(r.exact, "route from {from} to {key} landed on wrong node");
            assert_eq!(r.terminal, c.owner_of(key).unwrap());
        }
    }

    #[test]
    fn route_is_exact_in_sparse_network() {
        for &n in &[50usize, 300, 1200] {
            let c = net(n, 8);
            let mut rng = SmallRng::seed_from_u64(n as u64);
            for _ in 0..500 {
                let from = c.random_node(&mut rng).unwrap();
                let key = random_key(&mut rng, 8);
                let r = c.route(from, key).unwrap();
                assert!(
                    r.exact,
                    "n={n}: route to {key} ended at {} not owner {}",
                    c.id_of(r.terminal).unwrap(),
                    c.id_of(c.owner_of(key).unwrap()).unwrap()
                );
            }
        }
    }

    #[test]
    fn route_to_own_key_is_local() {
        let c = net(512, 8);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let idx = c.random_node(&mut rng).unwrap();
            let r = c.route(idx, c.id_of(idx).unwrap()).unwrap();
            assert_eq!(r.hops(), 0);
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let mut c = Cycloid::new(CycloidConfig { dimension: 6, seed: 0 });
        let only = c.join_with_id(CycloidId::new(3, 17, 6)).unwrap();
        let r = c.route(only, CycloidId::new(0, 60, 6)).unwrap();
        assert_eq!(r.terminal, only);
        assert_eq!(r.hops(), 0);
        assert!(r.exact);
        let s = c.route_stats(only, CycloidId::new(0, 60, 6)).unwrap();
        assert_eq!(s, RouteStats::local(only));
    }

    #[test]
    fn route_stats_matches_traced_route_when_stabilized() {
        let c = net(1500, 8);
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..500 {
            let from = c.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, 8);
            let traced = c.route(from, key).unwrap();
            let fast = c.route_stats(from, key).unwrap();
            assert_eq!(fast.hops, traced.hops());
            assert_eq!(fast.terminal, traced.terminal);
            assert_eq!(fast.exact, traced.exact);
        }
    }

    #[test]
    fn route_stats_matches_traced_route_under_failures() {
        let mut c = net(1024, 8);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..60 {
            if let Some(v) = c.random_node(&mut rng) {
                let _ = c.fail(v);
            }
        }
        for _ in 0..400 {
            let from = c.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, 8);
            let traced = c.route(from, key);
            let fast = c.route_stats(from, key);
            match (traced, fast) {
                (Ok(t), Ok(f)) => {
                    assert_eq!((f.hops, f.terminal, f.exact), (t.hops(), t.terminal, t.exact));
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (t, f) => panic!("variants diverged: {t:?} vs {f:?}"),
            }
        }
    }

    #[test]
    fn average_hops_near_dimension() {
        // Theorem 4.7 of the paper uses "d hops in Cycloid" as the average
        // lookup cost. Accept a band around d for the full 2048-node net.
        let c = net(2048, 8);
        let mut rng = SmallRng::seed_from_u64(77);
        let mut s = Summary::new();
        for _ in 0..3000 {
            let from = c.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, 8);
            s.record(c.route(from, key).unwrap().hops() as f64);
        }
        let mean = s.mean();
        assert!((6.0..11.5).contains(&mean), "Cycloid avg hops {mean} outside [6, 11.5]");
    }

    #[test]
    fn hops_scale_linearly_with_dimension_not_size() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mean_hops = |d: u8, rng: &mut SmallRng| {
            let n = d as usize * (1usize << d);
            let c = net(n, d);
            let mut s = Summary::new();
            for _ in 0..800 {
                let from = c.random_node(rng).unwrap();
                let key = random_key(rng, d);
                s.record(c.route(from, key).unwrap().hops() as f64);
            }
            s.mean()
        };
        let h6 = mean_hops(6, &mut rng); // n = 384
        let h9 = mean_hops(9, &mut rng); // n = 4608 (12x larger)
        assert!(h9 > h6, "{h6} -> {h9}");
        assert!(h9 - h6 < 6.0, "constant-degree scaling: {h6} -> {h9}");
    }

    #[test]
    fn routes_survive_failures_without_repair() {
        let mut c = net(2048, 8);
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..100 {
            let v = c.random_node(&mut rng).unwrap();
            c.fail(v).unwrap();
        }
        let mut done = 0;
        let mut exact = 0;
        for _ in 0..400 {
            let from = c.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, 8);
            if let Ok(r) = c.route(from, key) {
                done += 1;
                if r.exact {
                    exact += 1;
                }
            }
        }
        assert!(done >= 390, "completed {done}/400 under 5% failures");
        assert!(exact * 10 >= done * 7, "exact {exact}/{done}");
    }

    #[test]
    fn routes_exact_again_after_rebuild() {
        let mut c = net(2048, 8);
        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..100 {
            let v = c.random_node(&mut rng).unwrap();
            c.fail(v).unwrap();
        }
        c.rebuild_all_links();
        for _ in 0..400 {
            let from = c.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, 8);
            let r = c.route(from, key).unwrap();
            assert!(r.exact);
        }
    }

    #[test]
    fn route_from_dead_node_errors() {
        let mut c = net(64, 5);
        let v = c.live_nodes()[0];
        c.fail(v).unwrap();
        assert!(c.route(v, CycloidId::new(0, 0, 5)).is_err());
        assert!(c.route_stats(v, CycloidId::new(0, 0, 5)).is_err());
    }

    #[test]
    fn path_never_revisits_a_node() {
        let c = net(1500, 8);
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..500 {
            let from = c.random_node(&mut rng).unwrap();
            let key = random_key(&mut rng, 8);
            let r = c.route(from, key).unwrap();
            let mut p = r.path.clone();
            p.sort_unstable();
            p.dedup();
            assert_eq!(p.len(), r.path.len(), "revisit in route to {key}");
        }
    }
}
