//! Cycloid identifiers: (cyclic index, cubical index) pairs.

/// A Cycloid identifier `(k, a_{d-1}…a_0)`.
///
/// * `cyclic` (`k`) is the position within a cluster, `0 ≤ k < d`;
/// * `cubical` (`a`) names the cluster, `0 ≤ a < 2^d`.
///
/// Both node identifiers and resource keys live in this space. LORM sets
/// `cubical = H(attribute) mod 2^d` and `cyclic = ℋ(value)` with the
/// locality-preserving hash spanning `[0, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CycloidId {
    /// Cluster name (`a`), `0 ≤ cubical < 2^d`. Ordering of the struct is
    /// lexicographic (cubical first), matching the large-cycle order.
    pub cubical: u32,
    /// Position within the cluster (`k`), `0 ≤ cyclic < d`.
    pub cyclic: u8,
}

impl CycloidId {
    /// Construct an identifier, asserting it fits dimension `d`.
    pub fn new(cyclic: u8, cubical: u32, d: u8) -> Self {
        debug_assert!(cyclic < d, "cyclic index {cyclic} out of range for d={d}");
        debug_assert!((cubical as u64) < (1u64 << d), "cubical index {cubical} out of range");
        Self { cyclic, cubical }
    }

    /// Linearized slot number `a·d + k` in `[0, d·2^d)`.
    pub fn slot(self, d: u8) -> usize {
        self.cubical as usize * d as usize + self.cyclic as usize
    }

    /// Inverse of [`Self::slot`].
    pub fn from_slot(slot: usize, d: u8) -> Self {
        Self { cubical: (slot / d as usize) as u32, cyclic: (slot % d as usize) as u8 }
    }

    /// Clockwise distance from cluster `a` to cluster `b` on the large
    /// cycle of `2^d` clusters.
    pub fn cw_cluster_dist(a: u32, b: u32, d: u8) -> u32 {
        let m = (1u64 << d) as u32;
        b.wrapping_sub(a) & (m.wrapping_sub(1))
    }

    /// Minimal ring distance between clusters `a` and `b`.
    pub fn cluster_dist(a: u32, b: u32, d: u8) -> u32 {
        let cw = Self::cw_cluster_dist(a, b, d);
        let ccw = Self::cw_cluster_dist(b, a, d);
        cw.min(ccw)
    }

    /// Clockwise distance from cyclic index `a` to `b` on a cluster ring of
    /// circumference `d`.
    pub fn cw_cyclic_dist(a: u8, b: u8, d: u8) -> u8 {
        (b + d - a) % d
    }

    /// Minimal cyclic ring distance.
    pub fn cyclic_dist(a: u8, b: u8, d: u8) -> u8 {
        let cw = Self::cw_cyclic_dist(a, b, d);
        let ccw = Self::cw_cyclic_dist(b, a, d);
        cw.min(ccw)
    }
}

impl std::fmt::Display for CycloidId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {:b})", self.cyclic, self.cubical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        let d = 8;
        for cub in [0u32, 1, 100, 255] {
            for cyc in 0..d {
                let id = CycloidId::new(cyc, cub, d);
                assert_eq!(CycloidId::from_slot(id.slot(d), d), id);
            }
        }
    }

    #[test]
    fn slot_is_dense_and_ordered() {
        let d = 3;
        let mut slots: Vec<usize> = Vec::new();
        for cub in 0..8u32 {
            for cyc in 0..3u8 {
                slots.push(CycloidId::new(cyc, cub, d).slot(d));
            }
        }
        assert_eq!(slots, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn ordering_is_cubical_major() {
        let a = CycloidId { cyclic: 7, cubical: 3 };
        let b = CycloidId { cyclic: 0, cubical: 4 };
        assert!(a < b);
    }

    #[test]
    fn cluster_distance_wraps() {
        let d = 8;
        assert_eq!(CycloidId::cw_cluster_dist(250, 5, d), 11);
        assert_eq!(CycloidId::cluster_dist(250, 5, d), 11);
        assert_eq!(CycloidId::cluster_dist(5, 250, d), 11);
        assert_eq!(CycloidId::cluster_dist(0, 128, d), 128);
        assert_eq!(CycloidId::cluster_dist(10, 10, d), 0);
    }

    #[test]
    fn cyclic_distance_wraps() {
        let d = 8;
        assert_eq!(CycloidId::cw_cyclic_dist(6, 1, d), 3);
        assert_eq!(CycloidId::cyclic_dist(6, 1, d), 3);
        assert_eq!(CycloidId::cyclic_dist(1, 6, d), 3);
        assert_eq!(CycloidId::cyclic_dist(4, 4, d), 0);
    }

    #[test]
    fn display_format() {
        let id = CycloidId { cyclic: 2, cubical: 5 };
        assert_eq!(id.to_string(), "(2, 101)");
    }
}
