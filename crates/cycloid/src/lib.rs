//! # cycloid — a constant-degree hierarchical DHT overlay simulator
//!
//! Implements the Cycloid overlay of Shen, Xu & Chen (*Performance
//! Evaluation* 2006): `n = d·2^d` identifier slots arranged as `2^d`
//! **clusters** (small cycles of up to `d` nodes ordered by *cyclic index*)
//! that are themselves ordered by *cubical index* on one **large cycle** —
//! the cube-connected-cycles topology turned into a DHT.
//!
//! Each node keeps a constant number of links regardless of network size:
//!
//! * **inside leaf set** (2): predecessor and successor within its cluster,
//! * **outside leaf set** (2): the primary node of the preceding and the
//!   succeeding occupied cluster on the large cycle,
//! * **cubical neighbor** (1): the node nearest `(k-1, a XOR 2^k)` — one
//!   hypercube-bit repair per descending step,
//! * **cyclic neighbors** (2): the nodes nearest `(k-1, a ± 2^k)` —
//!   arithmetic jumps that halve large-cycle distance while descending,
//! * **primary link** (1): the current primary (largest cyclic index) of
//!   its own cluster, the entry point of the descending phase. (The
//!   original paper reaches the primary by walking the inside leaf set;
//!   caching it keeps the degree constant at 8 and matches the O(1)
//!   maintenance cost the paper assumes.)
//!
//! Routing is the protocol's three-phase scheme — *ascend* to the cluster
//! primary, *descend* resolving the cubical index with exponentially
//! shrinking jumps, then *traverse* inside the target cluster — with every
//! decision made from node-local state only and every hop traced.
//!
//! LORM (crate `lorm`) builds on the cluster structure: one cluster per
//! resource attribute, the intra-cluster ring partitioned into value
//! sectors by the locality-preserving hash.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod id;
mod network;
mod node;
mod routing;

pub use id::CycloidId;
pub use network::{Cycloid, CycloidConfig};
pub use node::CycloidNode;
