//! The Cycloid network: slot arena, cluster bookkeeping, churn, repair.

use crate::id::CycloidId;
use crate::node::CycloidNode;
use dht_core::{BuildMode, DhtError, NodeIdx, Overlay, RouteResult, RouteStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Construction parameters for a [`Cycloid`] overlay.
#[derive(Debug, Clone, Copy)]
pub struct CycloidConfig {
    /// Dimension `d`: clusters hold up to `d` nodes, there are `2^d`
    /// clusters, and the identifier space holds `d·2^d` slots. The paper's
    /// evaluation uses `d = 8` (2048 slots).
    pub dimension: u8,
    /// Seed for slot assignment.
    pub seed: u64,
}

impl Default for CycloidConfig {
    fn default() -> Self {
        Self { dimension: 8, seed: 0x0C1C101D }
    }
}

/// A Cycloid overlay network.
///
/// Nodes live in an arena; departed nodes are tomb-stoned. Ground-truth
/// occupancy tables (`slots`, `clusters`) are used for construction,
/// repair and `owner_of` assertions — never by routing, which reads only
/// the local state of the node holding the message.
///
/// ```
/// use cycloid::{Cycloid, CycloidConfig, CycloidId};
/// use dht_core::Overlay;
///
/// // a full d = 5 Cycloid: 5·2^5 = 160 nodes in 32 clusters of 5
/// let net = Cycloid::build(160, CycloidConfig { dimension: 5, seed: 1 });
/// assert_eq!(net.occupied_clusters().len(), 32);
///
/// let key = CycloidId::new(2, 17, 5); // (cyclic, cubical)
/// let from = net.live_nodes()[0];
/// let route = net.route(from, key).unwrap();
/// assert!(route.exact);
/// assert!(route.hops() <= 3 * 5, "paths are O(d)");
/// ```
#[derive(Debug, Clone)]
pub struct Cycloid {
    pub(crate) nodes: Vec<CycloidNode>,
    cfg: CycloidConfig,
    /// Slot -> node, ground truth. Length `d·2^d`.
    slots: Vec<Option<NodeIdx>>,
    /// Sorted cubical indices of non-empty clusters.
    occupied: Vec<u32>,
    /// Per-cluster member lists in one flat array, strided `d` per cluster
    /// (a cluster holds at most `d` nodes); `cluster_slots[c*d..]` holds
    /// `cluster_lens[c]` members sorted by cyclic index. One contiguous
    /// allocation instead of `2^d` boxed `Vec`s — cluster edits shift at
    /// most `d` entries in place, and cloning the overlay is a `memcpy`.
    cluster_slots: Vec<NodeIdx>,
    /// Member count per cluster. Length `2^d`.
    cluster_lens: Vec<u8>,
    /// Arena indices of all live nodes, ascending. Maintained
    /// incrementally (arena indices grow monotonically, so `occupy`
    /// appends and `vacate` binary-searches) so [`Overlay::live_nodes`]
    /// is a borrow, not a full-arena scan-and-collect.
    live_sorted: Vec<NodeIdx>,
    live: usize,
    rng: SmallRng,
    /// Mutation epoch: strictly increases on every write to routing state
    /// (membership tables, cluster lists, per-node links). The route
    /// cache stamps entries with it; see [`Overlay::epoch`]. Starts at 1
    /// so the cache can use 0 as its empty-slot sentinel. A cache must
    /// serve a single overlay instance — two clones that diverge after
    /// copying the same epoch must not share one.
    epoch: u64,
}

impl Cycloid {
    /// An empty overlay of the given dimension.
    pub fn new(cfg: CycloidConfig) -> Self {
        let cap = cfg.dimension as usize * (1usize << cfg.dimension);
        Self {
            nodes: Vec::new(),
            cfg,
            slots: vec![None; cap],
            occupied: Vec::new(),
            cluster_slots: vec![NodeIdx(usize::MAX); cap],
            cluster_lens: vec![0; 1usize << cfg.dimension],
            live_sorted: Vec::new(),
            live: 0,
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xCAB005E),
            epoch: 1,
        }
    }

    /// Advance the mutation epoch. Every function that writes routing
    /// state calls this (the `epoch-bump` lint enforces it); redundant
    /// bumps along one public operation are harmless — only strict
    /// increase matters.
    #[inline]
    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Bulk-construct a fully repaired network of `n ≤ d·2^d` nodes on
    /// uniformly random distinct slots (all slots when `n` equals the
    /// capacity, as in the paper's 2048-node setup with `d = 8`).
    /// Equivalent to `build_with_mode(n, cfg, BuildMode::Bulk)`.
    ///
    /// # Panics
    /// Panics if `n` exceeds the identifier-space capacity.
    pub fn build(n: usize, cfg: CycloidConfig) -> Self {
        Self::build_with_mode(n, cfg, BuildMode::Bulk)
    }

    /// Construct a fully repaired network with an explicit build mode.
    /// Both modes draw the same slot sample and produce byte-identical
    /// overlays; `Incremental` occupies one slot at a time (each insert
    /// shifting the sorted `occupied` list — O(n·2^d) aggregate) and is
    /// kept as the reference path for validating the bulk constructor.
    ///
    /// # Panics
    /// Panics if `n` exceeds the identifier-space capacity.
    pub fn build_with_mode(n: usize, cfg: CycloidConfig, mode: BuildMode) -> Self {
        let mut net = Self::new(cfg);
        let cap = net.capacity();
        assert!(n <= cap, "cannot place {n} nodes in {cap} Cycloid slots");
        // Partial Fisher-Yates over slot numbers for a uniform sample.
        let mut slots: Vec<usize> = (0..cap).collect();
        for i in 0..n {
            let j = net.rng.gen_range(i..cap);
            slots.swap(i, j);
        }
        match mode {
            BuildMode::Bulk => net.bulk_occupy(&slots[..n]),
            BuildMode::Incremental => {
                for &s in &slots[..n] {
                    net.occupy(CycloidId::from_slot(s, cfg.dimension));
                }
            }
        }
        net.rebuild_all_links();
        net
    }

    /// Assemble the membership tables in one sorted pass: push the arena
    /// rows in draw order (matching the incremental path), then derive the
    /// cluster member lists and the `occupied` list from one sort of
    /// `(cubical, cyclic, idx)` triples — O(n log n) total where per-slot
    /// `occupy` calls shift the sorted occupied list on every first member.
    fn bulk_occupy(&mut self, draw: &[usize]) {
        self.bump_epoch();
        let d = self.cfg.dimension;
        self.nodes.reserve(draw.len());
        self.live_sorted.reserve(draw.len());
        let mut triples: Vec<(u32, u8, NodeIdx)> = Vec::with_capacity(draw.len());
        for &s in draw {
            let id = CycloidId::from_slot(s, d);
            debug_assert!(self.slots[s].is_none());
            let idx = NodeIdx(self.nodes.len());
            self.nodes.push(CycloidNode::new(id));
            self.slots[s] = Some(idx);
            self.live_sorted.push(idx);
            triples.push((id.cubical, id.cyclic, idx));
        }
        self.live = draw.len();
        triples.sort_unstable();
        let stride = d as usize;
        for &(cubical, _, idx) in &triples {
            let c = cubical as usize;
            let len = self.cluster_lens[c] as usize;
            if len == 0 {
                self.occupied.push(cubical);
            }
            self.cluster_slots[c * stride + len] = idx;
            self.cluster_lens[c] = (len + 1) as u8;
        }
        debug_assert!(self.occupied.windows(2).all(|w| w[0] < w[1]));
    }

    /// Total number of identifier slots (`d·2^d`).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Size of the node arena (live + tomb-stoned slots). Directory
    /// bookkeeping in higher layers indexes by arena slot.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// The dimension `d`.
    pub fn dimension(&self) -> u8 {
        self.cfg.dimension
    }

    /// Configuration the network was built with.
    pub fn config(&self) -> &CycloidConfig {
        &self.cfg
    }

    fn occupy(&mut self, id: CycloidId) -> NodeIdx {
        self.bump_epoch();
        let d = self.cfg.dimension;
        debug_assert!(self.slots[id.slot(d)].is_none());
        let idx = NodeIdx(self.nodes.len());
        self.nodes.push(CycloidNode::new(id));
        self.slots[id.slot(d)] = Some(idx);
        let stride = d as usize;
        let base = id.cubical as usize * stride;
        let len = self.cluster_lens[id.cubical as usize] as usize;
        debug_assert!(len < stride, "cluster already full");
        let pos = self.cluster_slots[base..base + len]
            .partition_point(|&m| self.nodes[m.0].id.cyclic < id.cyclic);
        // In-stride ordered insert: at most `d` entries shift.
        self.cluster_slots.copy_within(base + pos..base + len, base + pos + 1);
        self.cluster_slots[base + pos] = idx;
        self.cluster_lens[id.cubical as usize] = (len + 1) as u8;
        debug_assert!(
            self.cluster_members(id.cubical)
                .windows(2)
                .all(|w| self.nodes[w[0].0].id.cyclic < self.nodes[w[1].0].id.cyclic),
            "cluster members must stay sorted by cyclic index"
        );
        if len == 0 {
            let cpos = self.occupied.partition_point(|&c| c < id.cubical);
            self.occupied.insert(cpos, id.cubical);
        }
        debug_assert!(
            self.occupied.windows(2).all(|w| w[0] < w[1]),
            "occupied cluster list must stay strictly sorted"
        );
        // Arena indices only grow, so appending keeps the list sorted.
        self.live_sorted.push(idx);
        self.live += 1;
        idx
    }

    fn vacate(&mut self, idx: NodeIdx) {
        self.bump_epoch();
        let id = self.nodes[idx.0].id;
        let d = self.cfg.dimension;
        self.nodes[idx.0].alive = false;
        self.slots[id.slot(d)] = None;
        let stride = d as usize;
        let base = id.cubical as usize * stride;
        let len = self.cluster_lens[id.cubical as usize] as usize;
        if let Some(pos) = self.cluster_slots[base..base + len].iter().position(|&m| m == idx) {
            self.cluster_slots.copy_within(base + pos + 1..base + len, base + pos);
            self.cluster_lens[id.cubical as usize] = (len - 1) as u8;
        }
        if self.cluster_lens[id.cubical as usize] == 0 {
            if let Ok(p) = self.occupied.binary_search(&id.cubical) {
                self.occupied.remove(p);
            }
        }
        if let Ok(p) = self.live_sorted.binary_search(&idx) {
            self.live_sorted.remove(p);
        }
        self.live -= 1;
    }

    /// Borrow a node's state.
    pub fn node(&self, idx: NodeIdx) -> Result<&CycloidNode, DhtError> {
        self.nodes.get(idx.0).ok_or(DhtError::NodeNotFound { index: idx.0 })
    }

    pub(crate) fn live_node(&self, idx: NodeIdx) -> Result<&CycloidNode, DhtError> {
        let n = self.node(idx)?;
        if n.alive {
            Ok(n)
        } else {
            Err(DhtError::NodeNotFound { index: idx.0 })
        }
    }

    /// Identifier of `idx`.
    pub fn id_of(&self, idx: NodeIdx) -> Result<CycloidId, DhtError> {
        Ok(self.node(idx)?.id)
    }

    /// Members of cluster `cubical`, sorted by cyclic index (ground truth;
    /// used by tests and by the experiment harness, not by routing). A
    /// borrow of the flat strided member table.
    pub fn cluster_members(&self, cubical: u32) -> &[NodeIdx] {
        let stride = self.cfg.dimension as usize;
        let base = cubical as usize * stride;
        &self.cluster_slots[base..base + self.cluster_lens[cubical as usize] as usize]
    }

    /// Cubical indices of all non-empty clusters, sorted.
    pub fn occupied_clusters(&self) -> &[u32] {
        &self.occupied
    }

    /// Current primary (largest cyclic index) of cluster `cubical`.
    pub fn primary_of(&self, cubical: u32) -> Option<NodeIdx> {
        self.cluster_members(cubical).last().copied()
    }

    /// Intra-cluster successor via the node-local inside leaf set.
    /// This is the link LORM's range forwarding walks.
    pub fn cluster_successor(&self, idx: NodeIdx) -> Result<Option<NodeIdx>, DhtError> {
        let n = self.live_node(idx)?;
        Ok(n.inside_succ.filter(|&s| self.nodes[s.0].alive))
    }

    /// Intra-cluster predecessor via the node-local inside leaf set.
    pub fn cluster_predecessor(&self, idx: NodeIdx) -> Result<Option<NodeIdx>, DhtError> {
        let n = self.live_node(idx)?;
        Ok(n.inside_pred.filter(|&s| self.nodes[s.0].alive))
    }

    /// Append up to `k - 1` replica targets for live node `idx`: the next
    /// members of its own cluster in cyclic order (leaf-set placement),
    /// wrapping around, never `idx` itself. A cluster smaller than `k`
    /// caps the target set at its size — replication is best-effort
    /// within the leaf set, exactly like a short successor list.
    ///
    /// The result at degree `k` is a prefix of the result at `k + 1`
    /// ([`dht_core::replica_targets`] is a prefix rule), which makes
    /// piece survival monotone in the replication degree.
    pub fn replica_targets_into(
        &self,
        idx: NodeIdx,
        k: usize,
        out: &mut Vec<NodeIdx>,
    ) -> Result<(), DhtError> {
        let id = self.live_node(idx)?.id;
        let members = self.cluster_members(id.cubical);
        let Some(pos) = members.iter().position(|&m| m == idx) else {
            return Err(DhtError::NodeNotFound { index: idx.0 });
        };
        dht_core::replica_targets(members, pos, k, out);
        Ok(())
    }

    /// Pick a uniformly random live node.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeIdx> {
        if self.live == 0 {
            return None;
        }
        loop {
            let i = rng.gen_range(0..self.nodes.len());
            if self.nodes[i].alive {
                return Some(NodeIdx(i));
            }
        }
    }

    /// Pick a uniformly random *free* slot, if any.
    pub fn random_free_slot<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<CycloidId> {
        if self.live == self.capacity() {
            return None;
        }
        loop {
            let s = rng.gen_range(0..self.slots.len());
            if self.slots[s].is_none() {
                return Some(CycloidId::from_slot(s, self.cfg.dimension));
            }
        }
    }

    // ------------------------------------------------------------------
    // Ground-truth ownership (consistent-hashing assignment)
    // ------------------------------------------------------------------

    /// The occupied cluster nearest to `b` on the large cycle; ties broken
    /// towards the cluster reached *clockwise* from `b`.
    pub fn nearest_occupied_cluster(&self, b: u32) -> Result<u32, DhtError> {
        if self.occupied.is_empty() {
            return Err(DhtError::EmptyOverlay);
        }
        let d = self.cfg.dimension;
        let n = self.occupied.len();
        let pos = self.occupied.partition_point(|&c| c < b);
        let next = self.occupied[pos % n]; // first >= b (wrapping)
        let prev = self.occupied[(pos + n - 1) % n]; // last < b (wrapping)
        let dn = CycloidId::cluster_dist(b, next, d);
        let dp = CycloidId::cluster_dist(b, prev, d);
        if dn <= dp {
            // covers the tie: `next` is the clockwise-side cluster
            Ok(next)
        } else {
            Ok(prev)
        }
    }

    /// The member of cluster `c` nearest to cyclic position `l`; ties
    /// broken towards the node reached clockwise from `l`.
    pub fn nearest_in_cluster(&self, c: u32, l: u8) -> Option<NodeIdx> {
        let d = self.cfg.dimension;
        let members = self.cluster_members(c);
        members.iter().copied().min_by_key(|&m| {
            let k = self.nodes[m.0].id.cyclic;
            let dist = CycloidId::cyclic_dist(k, l, d);
            // among equal distances prefer the clockwise-side node
            let cw_tie = u8::from(CycloidId::cw_cyclic_dist(l, k, d) != dist);
            (dist, cw_tie)
        })
    }

    // ------------------------------------------------------------------
    // Link construction / repair
    // ------------------------------------------------------------------

    /// Resolve the node nearest an ideal identifier (link maintenance).
    fn resolve(&self, ideal: CycloidId) -> Option<NodeIdx> {
        let c = self.nearest_occupied_cluster(ideal.cubical).ok()?;
        self.nearest_in_cluster(c, ideal.cyclic)
    }

    /// Recompute the full routing state of every live node from ground
    /// truth — the simulator's "perfect stabilization" tick, also used by
    /// `build`.
    pub fn rebuild_all_links(&mut self) {
        // Owned snapshot: rebuilding mutates node state while iterating.
        let indices = self.live_sorted.clone();
        for idx in indices {
            self.rebuild_links_of(idx);
        }
    }

    /// Recompute one node's links from ground truth (the effect of that
    /// node running its own maintenance round).
    pub fn rebuild_links_of(&mut self, idx: NodeIdx) {
        self.bump_epoch();
        let d = self.cfg.dimension;
        let id = self.nodes[idx.0].id;
        let members = self.cluster_members(id.cubical);
        let mpos = members
            .iter()
            .position(|&m| m == idx)
            // lint:allow(panic-hygiene): occupy() inserts every live node
            // into clusters[id.cubical]; leave()/fail() remove it — a live
            // node is always a member of its own cluster.
            .expect("member of own cluster");
        let mlen = members.len();
        let inside_succ = if mlen > 1 { Some(members[(mpos + 1) % mlen]) } else { None };
        let inside_pred = if mlen > 1 { Some(members[(mpos + mlen - 1) % mlen]) } else { None };
        let primary = Some(members[mlen - 1]);

        // Outside leaf set: primaries of adjacent occupied clusters.
        let (outside_pred, outside_succ) = {
            let occ = &self.occupied;
            let n = occ.len();
            if n <= 1 {
                (None, None)
            } else {
                let p = occ
                    .binary_search(&id.cubical)
                    // lint:allow(panic-hygiene): this node is alive in its
                    // cluster, so occupy() has listed the cluster in
                    // `occupied` (removed only when the last member goes).
                    .expect("own cluster occupied");
                let succ_c = occ[(p + 1) % n];
                let pred_c = occ[(p + n - 1) % n];
                (self.primary_of(pred_c), self.primary_of(succ_c))
            }
        };

        let k = id.cyclic;
        let down = (k + d - 1) % d;
        let mask = ((1u64 << d) - 1) as u32;
        let jump = 1u32 << k;
        let cubical_target = CycloidId { cyclic: down, cubical: id.cubical ^ jump };
        let cyc_minus = CycloidId { cyclic: down, cubical: id.cubical.wrapping_sub(jump) & mask };
        let cyc_plus = CycloidId { cyclic: down, cubical: id.cubical.wrapping_add(jump) & mask };
        let cubical_nbr = self.resolve(cubical_target).filter(|&x| x != idx);
        let cyclic_nbrs = [
            self.resolve(cyc_minus).filter(|&x| x != idx),
            self.resolve(cyc_plus).filter(|&x| x != idx),
        ];

        let node = &mut self.nodes[idx.0];
        node.inside_pred = inside_pred;
        node.inside_succ = inside_succ;
        node.outside_pred = outside_pred;
        node.outside_succ = outside_succ;
        node.cubical_nbr = cubical_nbr;
        node.cyclic_nbrs = cyclic_nbrs;
        node.primary = primary;
    }

    /// Repair the *local neighborhood* of cluster `c`: inside leaf sets and
    /// primary caches of its members, plus the outside leaf sets of the two
    /// adjacent occupied clusters. This is the bounded self-organization a
    /// join/leave triggers in the real protocol.
    fn repair_cluster_neighborhood(&mut self, c: u32) {
        let members: Vec<NodeIdx> = self.cluster_members(c).to_vec();
        for idx in members {
            self.rebuild_links_of(idx);
        }
        let occ = self.occupied.clone();
        let n = occ.len();
        if n > 1 {
            let p = match occ.binary_search(&c) {
                Ok(p) | Err(p) => p % n,
            };
            for adj in [occ[(p + 1) % n], occ[(p + n - 1) % n]] {
                let adj_members: Vec<NodeIdx> = self.cluster_members(adj).to_vec();
                for idx in adj_members {
                    self.rebuild_links_of(idx);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Churn
    // ------------------------------------------------------------------

    /// Join a new node on a uniformly random free slot.
    ///
    /// # Errors
    /// [`DhtError::IdSpaceExhausted`] when every slot is occupied.
    pub fn join_random(&mut self) -> Result<NodeIdx, DhtError> {
        let mut rng = self.rng.clone();
        let id = self.random_free_slot(&mut rng).ok_or(DhtError::IdSpaceExhausted)?;
        self.rng = rng;
        self.join_with_id(id)
    }

    /// Join a new node on an explicit free slot.
    pub fn join_with_id(&mut self, id: CycloidId) -> Result<NodeIdx, DhtError> {
        let d = self.cfg.dimension;
        if id.cyclic >= d || (id.cubical as u64) >= (1u64 << d) {
            return Err(DhtError::InvalidParameter {
                what: "CycloidId out of range for dimension",
            });
        }
        if self.slots[id.slot(d)].is_some() {
            return Err(DhtError::IdSpaceExhausted);
        }
        let idx = self.occupy(id);
        self.repair_cluster_neighborhood(id.cubical);
        Ok(idx)
    }

    /// Graceful departure: the node hands off, its cluster neighborhood
    /// repairs immediately, and — as in Cycloid's self-organization — it
    /// notifies every node holding a link to it so they re-resolve.
    pub fn leave(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        self.live_node(idx)?;
        let c = self.nodes[idx.0].id.cubical;
        self.vacate(idx);
        self.repair_cluster_neighborhood(c);
        // Notify in-neighbors (the departing node knows them in the real
        // protocol; the simulator finds them by scanning the live list).
        let in_neighbors: Vec<NodeIdx> = self
            .live_sorted
            .iter()
            .copied()
            .filter(|&j| self.nodes[j.0].all_links().any(|l| l == idx))
            .collect();
        for j in in_neighbors {
            self.rebuild_links_of(j);
        }
        Ok(())
    }

    /// Abrupt failure: the node vanishes; neighbors' links stay stale until
    /// the next repair round.
    pub fn fail(&mut self, idx: NodeIdx) -> Result<(), DhtError> {
        self.live_node(idx)?;
        self.vacate(idx);
        Ok(())
    }
}

impl Overlay for Cycloid {
    type Key = CycloidId;

    fn len(&self) -> usize {
        self.live
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn key_bits(&self, key: CycloidId) -> u64 {
        // injective pack of the (cyclic, cubical) pair
        (u64::from(key.cyclic) << 32) | u64::from(key.cubical)
    }

    fn live_nodes(&self) -> &[NodeIdx] {
        &self.live_sorted
    }

    fn owner_of(&self, key: CycloidId) -> Result<NodeIdx, DhtError> {
        let c = self.nearest_occupied_cluster(key.cubical)?;
        self.nearest_in_cluster(c, key.cyclic).ok_or(DhtError::EmptyOverlay)
    }

    fn route(&self, from: NodeIdx, key: CycloidId) -> Result<RouteResult, DhtError> {
        self.route_from(from, key)
    }

    fn route_stats(&self, from: NodeIdx, key: CycloidId) -> Result<RouteStats, DhtError> {
        self.route_stats_from(from, key)
    }

    fn route_stats_faulty(
        &self,
        from: NodeIdx,
        key: CycloidId,
        plan: &dht_core::FaultPlan,
        msg: dht_core::MsgId,
    ) -> Result<RouteStats, DhtError> {
        // Inert plans take the plain fast path: zero-fault runs must be
        // byte-identical to fault-free runs.
        if plan.is_inert() {
            return self.route_stats_from(from, key);
        }
        self.route_stats_faulty_from(from, key, plan, msg)
    }

    fn outlinks(&self, node: NodeIdx) -> Result<usize, DhtError> {
        let n = self.live_node(node)?;
        Ok(n.distinct_neighbors(node).iter().filter(|&&x| self.nodes[x.0].alive).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize, d: u8) -> Cycloid {
        Cycloid::build(n, CycloidConfig { dimension: d, seed: 7 })
    }

    #[test]
    fn full_build_occupies_every_slot() {
        let c = net(2048, 8);
        assert_eq!(c.len(), 2048);
        assert_eq!(c.capacity(), 2048);
        assert_eq!(c.occupied_clusters().len(), 256);
        for cub in 0..256u32 {
            assert_eq!(c.cluster_members(cub).len(), 8);
        }
    }

    #[test]
    fn bulk_and_incremental_builds_are_identical() {
        for (n, d) in [(1usize, 4u8), (13, 4), (500, 8), (2048, 8)] {
            let cfg = CycloidConfig { dimension: d, seed: 7 };
            let bulk = Cycloid::build_with_mode(n, cfg, BuildMode::Bulk);
            let inc = Cycloid::build_with_mode(n, cfg, BuildMode::Incremental);
            assert_eq!(bulk.nodes, inc.nodes, "arena diverged at n={n} d={d}");
            assert_eq!(bulk.slots, inc.slots);
            assert_eq!(bulk.occupied, inc.occupied);
            assert_eq!(bulk.cluster_slots, inc.cluster_slots);
            assert_eq!(bulk.cluster_lens, inc.cluster_lens);
            assert_eq!(bulk.live_sorted, inc.live_sorted);
        }
    }

    #[test]
    fn sparse_build_has_requested_size() {
        let c = net(500, 8);
        assert_eq!(c.len(), 500);
        let total: usize = (0..256u32).map(|cub| c.cluster_members(cub).len()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn overfull_build_panics() {
        let _ = net(2049, 8);
    }

    #[test]
    fn outlinks_are_constant_degree() {
        for &n in &[256usize, 1024, 2048] {
            let c = net(n, 8);
            for &idx in c.live_nodes().iter().take(50) {
                let links = c.outlinks(idx).unwrap();
                assert!(links <= 8, "degree {links} exceeds constant bound");
            }
        }
    }

    #[test]
    fn outlinks_do_not_grow_with_network_size() {
        let avg = |c: &Cycloid| {
            let nodes = c.live_nodes();
            nodes.iter().map(|&i| c.outlinks(i).unwrap()).sum::<usize>() as f64 / nodes.len() as f64
        };
        let small = net(5 * 32, 5); // d=5
        let large = net(2048, 8); // d=8
        let (a, b) = (avg(&small), avg(&large));
        assert!((a - b).abs() < 2.0, "constant degree: {a} vs {b}");
    }

    #[test]
    fn inside_ring_is_cyclic_order() {
        let c = net(2048, 8);
        for cub in [0u32, 17, 255] {
            let members = c.cluster_members(cub);
            for (i, &m) in members.iter().enumerate() {
                let succ = c.node(m).unwrap().inside_succ().unwrap();
                assert_eq!(succ, members[(i + 1) % members.len()]);
                let pred = c.node(m).unwrap().inside_pred().unwrap();
                assert_eq!(pred, members[(i + members.len() - 1) % members.len()]);
            }
        }
    }

    #[test]
    fn primary_is_max_cyclic_member() {
        let c = net(1500, 8);
        for &cub in c.occupied_clusters() {
            let members = c.cluster_members(cub);
            let primary = c.primary_of(cub).unwrap();
            let max_cyc = members.iter().map(|&m| c.id_of(m).unwrap().cyclic).max().unwrap();
            assert_eq!(c.id_of(primary).unwrap().cyclic, max_cyc);
            for &m in members {
                assert_eq!(c.node(m).unwrap().primary(), Some(primary));
            }
        }
    }

    #[test]
    fn outside_leafs_point_to_adjacent_occupied_primaries() {
        let c = net(700, 8);
        let occ = c.occupied_clusters().to_vec();
        for (p, &cub) in occ.iter().enumerate() {
            let succ_c = occ[(p + 1) % occ.len()];
            let pred_c = occ[(p + occ.len() - 1) % occ.len()];
            for &m in c.cluster_members(cub) {
                let (op, os) = c.node(m).unwrap().outside_leaf();
                assert_eq!(os, c.primary_of(succ_c));
                assert_eq!(op, c.primary_of(pred_c));
            }
        }
    }

    #[test]
    fn owner_of_own_id_is_self() {
        let c = net(900, 8);
        for &idx in c.live_nodes().iter().take(100) {
            let id = c.id_of(idx).unwrap();
            assert_eq!(c.owner_of(id).unwrap(), idx);
        }
    }

    #[test]
    fn owner_of_empty_cluster_goes_to_nearest() {
        let mut c = Cycloid::new(CycloidConfig { dimension: 4, seed: 1 });
        // occupy only cluster 3 (cyclic 0) and cluster 10 (cyclic 2)
        let a = c.join_with_id(CycloidId::new(0, 3, 4)).unwrap();
        let b = c.join_with_id(CycloidId::new(2, 10, 4)).unwrap();
        // cluster 4 is distance 1 from 3, distance 6 from 10
        let key = CycloidId::new(1, 4, 4);
        assert_eq!(c.owner_of(key).unwrap(), a);
        // cluster 8 is distance 5 from 3 (cw 5... ccw 11), distance 2 from 10
        let key = CycloidId::new(1, 8, 4);
        assert_eq!(c.owner_of(key).unwrap(), b);
    }

    #[test]
    fn owner_tie_breaks_clockwise() {
        let mut c = Cycloid::new(CycloidConfig { dimension: 4, seed: 1 });
        let _a = c.join_with_id(CycloidId::new(0, 2, 4)).unwrap();
        let b = c.join_with_id(CycloidId::new(0, 6, 4)).unwrap();
        // key cluster 4 is equidistant (2) from clusters 2 and 6; clockwise
        // from 4 reaches 6 first.
        let key = CycloidId::new(0, 4, 4);
        assert_eq!(c.owner_of(key).unwrap(), b);
    }

    #[test]
    fn cyclic_tie_breaks_clockwise_within_cluster() {
        let mut c = Cycloid::new(CycloidConfig { dimension: 8, seed: 1 });
        let _a = c.join_with_id(CycloidId::new(1, 0, 8)).unwrap();
        let b = c.join_with_id(CycloidId::new(5, 0, 8)).unwrap();
        // key cyclic 3 is equidistant (2) from cyclic 1 and 5; clockwise
        // from 3 reaches 5 first.
        let key = CycloidId::new(3, 0, 8);
        assert_eq!(c.owner_of(key).unwrap(), b);
    }

    #[test]
    fn join_then_leave_restores_ring() {
        let mut c = net(2040, 8);
        let id = {
            let mut r = SmallRng::seed_from_u64(5);
            c.random_free_slot(&mut r).unwrap()
        };
        let idx = c.join_with_id(id).unwrap();
        assert_eq!(c.len(), 2041);
        assert_eq!(c.owner_of(id).unwrap(), idx);
        // new node is spliced into its cluster ring
        let members = c.cluster_members(id.cubical);
        assert!(members.contains(&idx));
        c.leave(idx).unwrap();
        assert_eq!(c.len(), 2040);
        assert!(!c.cluster_members(id.cubical).contains(&idx));
    }

    #[test]
    fn join_duplicate_slot_rejected() {
        let mut c = net(100, 8);
        let idx = c.live_nodes()[0];
        let id = c.id_of(idx).unwrap();
        assert_eq!(c.join_with_id(id), Err(DhtError::IdSpaceExhausted));
    }

    #[test]
    fn join_random_fails_when_full() {
        let mut c = net(2048, 8);
        assert_eq!(c.join_random().unwrap_err(), DhtError::IdSpaceExhausted);
    }

    #[test]
    fn leave_repairs_primary_cache() {
        let mut c = net(2048, 8);
        let cub = 42u32;
        let primary = c.primary_of(cub).unwrap();
        c.leave(primary).unwrap();
        let new_primary = c.primary_of(cub).unwrap();
        assert_ne!(new_primary, primary);
        for &m in c.cluster_members(cub) {
            assert_eq!(c.node(m).unwrap().primary(), Some(new_primary));
        }
    }

    #[test]
    fn fail_leaves_stale_links_until_rebuild() {
        let mut c = net(2048, 8);
        let cub = 7u32;
        let members = c.cluster_members(cub).to_vec();
        let victim = members[0];
        let succ_of_victim = c.node(victim).unwrap().inside_succ().unwrap();
        c.fail(victim).unwrap();
        // stale: the successor still lists the dead victim as pred
        assert_eq!(c.node(succ_of_victim).unwrap().inside_pred(), Some(victim));
        c.rebuild_all_links();
        assert_ne!(c.node(succ_of_victim).unwrap().inside_pred(), Some(victim));
    }

    #[test]
    fn live_list_tracks_churn_in_arena_order() {
        let mut c = net(300, 8);
        let mut r = SmallRng::seed_from_u64(6);
        for _ in 0..40 {
            let v = c.random_node(&mut r).unwrap();
            if r.gen_bool(0.5) {
                c.leave(v).unwrap();
            } else {
                c.fail(v).unwrap();
            }
            let _ = c.join_random();
        }
        let live = c.live_nodes();
        assert_eq!(live.len(), c.len());
        assert!(live.windows(2).all(|w| w[0] < w[1]), "live list must stay ascending");
        for &i in live {
            assert!(c.node(i).unwrap().is_alive());
        }
        assert_eq!(c.live_nodes_cloned(), live.to_vec());
    }

    #[test]
    fn leave_keeps_cluster_members_unique() {
        // Audit for the Chord `leave` dedup bug: Cycloid's departure path
        // rebuilds membership via `retain` on ground-truth cluster lists,
        // so duplicates cannot arise — pin that with a churn storm.
        let mut c = net(2048, 8);
        let mut r = SmallRng::seed_from_u64(12);
        for _ in 0..100 {
            let v = c.random_node(&mut r).unwrap();
            c.leave(v).unwrap();
        }
        for cub in 0..256u32 {
            let members = c.cluster_members(cub);
            let mut seen = members.to_vec();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), members.len(), "duplicate member in cluster {cub}");
        }
    }

    #[test]
    fn mutating_ops_strictly_increase_epoch() {
        let mut c = net(64, 5);
        assert!(c.epoch() > 0, "epochs start nonzero (cache empty-slot sentinel)");
        let mut last = c.epoch();
        let mut advanced = |c: &Cycloid, op: &str| {
            assert!(c.epoch() > last, "{op} must bump the epoch");
            last = c.epoch();
        };
        let j = c.join_random().unwrap();
        advanced(&c, "join_random");
        c.leave(j).unwrap();
        advanced(&c, "leave");
        let v = c.live_nodes()[0];
        c.fail(v).unwrap();
        advanced(&c, "fail");
        let m = c.live_nodes()[0];
        c.rebuild_links_of(m);
        advanced(&c, "rebuild_links_of");
        c.rebuild_all_links();
        advanced(&c, "rebuild_all_links");
    }

    #[test]
    fn random_node_is_always_alive() {
        let mut c = net(64, 5);
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10 {
            let v = c.random_node(&mut r).unwrap();
            c.fail(v).unwrap();
        }
        for _ in 0..100 {
            let v = c.random_node(&mut r).unwrap();
            assert!(c.node(v).unwrap().is_alive());
        }
    }
}
